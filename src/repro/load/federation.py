"""Federation A/B under standing load: 1 cluster vs 3 with one killed.

The BENCH file's ``federation`` section answers the tentpole's isolation
claim with numbers: replay the same per-cluster request mix against

* **baseline** — a federation of one healthy cluster, and
* **federated** — three clusters with one killed mid-run (hard outage
  on every service from the halfway tick),

both over real HTTP through :class:`~repro.web.server.DashboardServer`.
The claims the record carries:

* **zero unexpected 5xx** — the dead cluster degrades its own slots;
  deliberate backpressure (429/503/504 on the dead member's direct
  ``?cluster=`` routes) is shed, never a federated-page failure;
* **healthy hit rates undisturbed** — each surviving member's cache hit
  rate stays within noise of the single-cluster baseline, because
  members share nothing a dead sibling could poison.

Everything here runs on the shared sim clock (the tick barrier drains
every request before the clock moves), so reruns are reproducible.
"""

from __future__ import annotations

import json
import math
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults import FaultPlan
from repro.federation import build_demo_federation
from repro.web.server import DashboardServer

from .generator import SHED_STATUSES, TRANSPORT_ERROR_STATUS

#: the federated pages every tick exercises for every user
FEDERATED_PATHS = (
    "/api/v1/federation/cluster_status",
    "/api/v1/federation/my_jobs",
    "/",
)

#: per-member widget each tick hits through the ``?cluster=`` selector
MEMBER_WIDGET = "/api/v1/widgets/recent_jobs"


def _fire(url: str, path: str, user: str, timeout_s: float) -> Tuple[int, bytes]:
    req = urllib.request.Request(
        url + path, headers={"X-Remote-User": user}
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()
    except (urllib.error.URLError, OSError):
        return TRANSPORT_ERROR_STATUS, b""


def _member_cache_totals(registry) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for member in registry:
        reg = member.ctx.obs.registry
        out[member.name] = {
            "lookups": reg.total("repro_cache_requests_total"),
            "hits": reg.total("repro_cache_requests_total", result="hit"),
        }
    return out


def run_federation_side(
    names: Sequence[str],
    *,
    faulted: Optional[str] = None,
    ticks: int,
    tick_s: float,
    user_count: int,
    seed: int = 2025,
    duration_hours: float = 0.5,
    request_timeout_s: float = 30.0,
) -> Dict[str, Any]:
    """Replay the federation mix against one stack; returns its record.

    ``faulted`` names the member killed at the halfway tick (hard outage
    on every service, never lifted).  The request mix per tick is the
    same regardless of cluster count: every user fetches each federated
    page, then each member's widget through ``?cluster=`` — so member
    hit rates are comparable across sides.
    """
    fed, registry = build_demo_federation(
        names=tuple(names), seed=seed, duration_hours=duration_hours
    )
    users = [u.username for u in registry.default.directory.users()[:user_count]]
    kill_tick = ticks // 2 if faulted else None

    statuses: Dict[str, int] = {}
    degraded_responses = 0
    requests = 0
    cache_before = _member_cache_totals(registry)

    wall_start = time.perf_counter()
    with DashboardServer(fed) as server:
        for tick in range(ticks):
            if kill_tick is not None and tick == kill_tick:
                plan = FaultPlan(seed=seed)
                plan.schedule_outage(
                    "*", start=fed.clock.now(), end=math.inf
                )
                fed.inject_faults(faulted, plan)
            for user in users:
                paths = list(FEDERATED_PATHS) + [
                    f"{MEMBER_WIDGET}?cluster={name}" for name in names
                ]
                for path in paths:
                    status, body = _fire(
                        server.url, path, user, request_timeout_s
                    )
                    requests += 1
                    key = str(status)
                    statuses[key] = statuses.get(key, 0) + 1
                    if status == 200 and path.startswith("/api/v1/federation/"):
                        payload = json.loads(body)
                        if payload.get("clusters_degraded"):
                            degraded_responses += 1
            # tick barrier: the clock only moves between drained ticks
            registry.advance(tick_s)
    wall_s = time.perf_counter() - wall_start

    cache_after = _member_cache_totals(registry)
    member_cache: Dict[str, Dict[str, float]] = {}
    for name in registry.names:
        lookups = cache_after[name]["lookups"] - cache_before[name]["lookups"]
        hits = cache_after[name]["hits"] - cache_before[name]["hits"]
        member_cache[name] = {
            "lookups": lookups,
            "hits": hits,
            "hit_rate": round(hits / lookups if lookups else 0.0, 4),
        }

    unexpected_5xx = sum(
        n for code, n in statuses.items()
        if code.startswith("5")
        and int(code) not in SHED_STATUSES
        and int(code) != TRANSPORT_ERROR_STATUS
    )
    shed = sum(statuses.get(str(code), 0) for code in SHED_STATUSES)
    return {
        "clusters": list(names),
        "faulted_cluster": faulted,
        "kill_tick": kill_tick,
        "requests": requests,
        "statuses": dict(sorted(statuses.items())),
        "unexpected_5xx": unexpected_5xx,
        "shed_responses": shed,
        "degraded_responses": degraded_responses,
        "member_cache": member_cache,
        "wall_s": round(wall_s, 3),
    }


def federation_ab(
    *,
    smoke: bool = False,
    seed: int = 2025,
    names: Sequence[str] = ("anvil", "bell", "negishi"),
    faulted: str = "bell",
) -> Dict[str, Any]:
    """The BENCH file's ``federation`` section: baseline vs killed-member
    federation, plus the derived isolation verdicts."""
    ticks = 6 if smoke else 16
    tick_s = 30.0
    user_count = 2 if smoke else 4
    duration_hours = 0.25 if smoke else 0.5

    baseline = run_federation_side(
        names[:1],
        ticks=ticks,
        tick_s=tick_s,
        user_count=user_count,
        seed=seed,
        duration_hours=duration_hours,
    )
    federated = run_federation_side(
        names,
        faulted=faulted,
        ticks=ticks,
        tick_s=tick_s,
        user_count=user_count,
        seed=seed,
        duration_hours=duration_hours,
    )

    base_rate = baseline["member_cache"][names[0]]["hit_rate"]
    healthy = [n for n in names if n != faulted]
    healthy_delta = max(
        abs(federated["member_cache"][n]["hit_rate"] - base_rate)
        for n in healthy
    )
    return {
        "smoke": bool(smoke),
        "seed": seed,
        "ticks": ticks,
        "tick_s": tick_s,
        "users": user_count,
        "faulted_cluster": faulted,
        "baseline": baseline,
        "federated": federated,
        "healthy_clusters": healthy,
        "healthy_hit_rate_delta": round(healthy_delta, 4),
        "zero_unexpected_5xx": (
            baseline["unexpected_5xx"] == 0
            and federated["unexpected_5xx"] == 0
        ),
        "degraded_detail_served": federated["degraded_responses"] > 0,
    }
