"""Declarative load scenarios and deterministic trace construction.

A :class:`Scenario` describes a user population and traffic mix in the
terms the paper's deployment sees them: a Zipf-skewed set of users (a
few heavy users, a long tail — the same skew
:func:`repro.sim.rng.zipf_weights` gives synthetic job counts), a
weighted mix of page and widget routes, Poisson arrivals on the sim
clock, and optional burst windows and fault windows.

:func:`build_trace` expands a scenario into a concrete, ordered list of
:class:`PlannedRequest` — every draw comes from named
:class:`~repro.sim.rng.RandomStreams`, so the same seed always yields
the *identical* trace (same users, same routes, same per-tick counts).
Latency observed when the trace is replayed is wall-clock and may vary;
the trace itself never does.  :func:`trace_digest` hashes the trace so
reports can prove two runs replayed the same traffic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.sim.rng import RandomStreams, zipf_weights

#: the homepage is served as HTML at "/"; everything else is JSON API
HOMEPAGE = "/"

#: route mix mirroring the paper's pages: the homepage dominates (it is
#: the landing page every session opens), followed by My Jobs, then the
#: cluster-wide views, then direct widget fetches (client refreshes)
DEFAULT_ROUTE_MIX: Tuple[Tuple[str, float], ...] = (
    (HOMEPAGE, 0.35),
    ("/api/v1/my_jobs", 0.20),
    ("/api/v1/node_overview", 0.10),
    ("/api/v1/job_overview", 0.10),
    ("/api/v1/cluster_status", 0.10),
    ("/api/v1/widgets/recent_jobs", 0.05),
    ("/api/v1/widgets/system_status", 0.05),
    ("/api/v1/widgets/accounts", 0.03),
    ("/api/v1/widgets/storage", 0.02),
)


@dataclass(frozen=True)
class RouteWeight:
    """One entry of a scenario's traffic mix."""

    path: str
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"negative route weight: {self}")


@dataclass(frozen=True)
class Burst:
    """An arrival-rate spike: multiply the Poisson rate during a window
    of simulated time (thundering herd after a maintenance email)."""

    start_s: float
    end_s: float
    multiplier: float = 5.0

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError(f"burst ends before it starts: {self}")
        if self.multiplier < 0:
            raise ValueError(f"negative burst multiplier: {self}")

    def active(self, at_s: float) -> bool:
        return self.start_s <= at_s < self.end_s


@dataclass(frozen=True)
class FaultSpec:
    """A fault window expressed in scenario-relative seconds; the
    harness converts it onto absolute sim time when the run starts."""

    service: str
    start_s: float
    end_s: float
    kind: str = "outage"  # outage | slow | flaky
    extra_latency_s: float = 0.0
    error_rate: float = 0.0


@dataclass(frozen=True)
class Scenario:
    """A complete load-scenario description (all times in seconds).

    ``mode`` selects the client model when the trace is replayed:
    ``"open"`` fires every arrival regardless of completions (arrival
    rate is external, like real web traffic); ``"closed"`` bounds
    in-flight requests at ``clients`` (think-time users) — both replay
    the *same* planned trace, the mode only changes concurrency.
    """

    name: str
    seed: int = 0
    duration_s: float = 60.0
    tick_s: float = 1.0
    users: int = 50
    rps: float = 10.0
    zipf_s: float = 1.2
    mode: str = "open"
    clients: int = 8
    routes: Tuple[RouteWeight, ...] = tuple(
        RouteWeight(path, weight) for path, weight in DEFAULT_ROUTE_MIX
    )
    bursts: Tuple[Burst, ...] = ()
    faults: Tuple[FaultSpec, ...] = ()
    cache_shards: int = 1
    #: override every cache TTL (seconds); None keeps the paper's
    #: per-source policy.  Fault scenarios shrink it so entries expire
    #: *during* the outage and the serve-stale path actually exercises.
    cache_ttl_s: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError(f"unknown client mode {self.mode!r}")
        if self.tick_s <= 0 or self.duration_s <= 0:
            raise ValueError("duration_s and tick_s must be positive")
        if self.users <= 0 or self.clients <= 0:
            raise ValueError("users and clients must be positive")
        if not self.routes:
            raise ValueError("scenario needs at least one route")
        if not any(r.weight > 0 for r in self.routes):
            raise ValueError("route mix has zero total weight")

    @property
    def ticks(self) -> int:
        return max(1, round(self.duration_s / self.tick_s))

    def rate_multiplier(self, at_s: float) -> float:
        """Combined burst multiplier at scenario-relative time."""
        mult = 1.0
        for burst in self.bursts:
            if burst.active(at_s):
                mult *= burst.multiplier
        return mult


@dataclass(frozen=True)
class PlannedRequest:
    """One concrete request of a trace, fully determined by the seed."""

    tick: int
    at_s: float  # scenario-relative arrival time
    user: str
    path: str
    query: str = ""

    @property
    def url_path(self) -> str:
        """Path plus query string, ready to append to a base URL."""
        return f"{self.path}?{self.query}" if self.query else self.path

    def to_tuple(self) -> Tuple[int, float, str, str, str]:
        return (self.tick, self.at_s, self.user, self.path, self.query)


def user_population(scenario: Scenario) -> List[str]:
    """Synthetic usernames for the scenario's population.

    Users are generated (``load_user_000`` …) rather than taken from
    the demo directory so a scenario can model populations far larger
    than the 12 seeded accounts; unknown users authenticate fine via
    ``X-Remote-User`` and exercise the per-user cache keying the same
    way real ones do.
    """
    return [f"load_user_{i:03d}" for i in range(scenario.users)]


#: one catalog option: a query string, optionally with a user override
#: (a job's detail page is visited by the job's owner, whoever the
#: Zipf draw picked)
CatalogOption = Union[str, Tuple[str, str]]


def build_trace(
    scenario: Scenario,
    catalog: Optional[Dict[str, Sequence[CatalogOption]]] = None,
) -> List[PlannedRequest]:
    """Expand a scenario into its deterministic request trace.

    Independent named streams keep each concern's draws stable as
    scenarios evolve: changing the route mix does not reshuffle which
    user arrives when.

    ``catalog`` maps a route path to candidate query strings for routes
    with required parameters (``node_overview`` needs a node name,
    ``job_overview`` a job id); the pick per request comes from its own
    stream.  The harness derives the catalog from the seeded cluster,
    so it — and therefore the full trace — is reproducible.
    """
    streams = RandomStreams(seed=scenario.seed).fork(scenario.name)
    arrivals = streams.stream("arrivals")
    offsets = streams.stream("offsets")
    user_pick = streams.stream("users")
    route_pick = streams.stream("routes")
    param_pick = streams.stream("params")
    catalog = catalog or {}

    users = user_population(scenario)
    user_w = zipf_weights(len(users), s=scenario.zipf_s)
    paths = [r.path for r in scenario.routes]
    weights = [r.weight for r in scenario.routes]
    total_w = sum(weights)
    route_w = [w / total_w for w in weights]

    trace: List[PlannedRequest] = []
    for tick in range(scenario.ticks):
        tick_start = tick * scenario.tick_s
        lam = scenario.rps * scenario.tick_s * scenario.rate_multiplier(tick_start)
        count = int(arrivals.poisson(lam))
        if count == 0:
            continue
        tick_offsets = sorted(
            float(o) for o in offsets.uniform(0.0, scenario.tick_s, count)
        )
        tick_users = user_pick.choice(len(users), size=count, p=user_w)
        tick_routes = route_pick.choice(len(paths), size=count, p=route_w)
        for off, u, r in zip(tick_offsets, tick_users, tick_routes):
            path = paths[int(r)]
            options = catalog.get(path)
            query = ""
            user = users[int(u)]
            if options:
                picked = options[int(param_pick.integers(0, len(options)))]
                if isinstance(picked, tuple):
                    query, user = picked
                else:
                    query = picked
            trace.append(
                PlannedRequest(
                    tick=tick,
                    at_s=tick_start + off,
                    user=user,
                    path=path,
                    query=query,
                )
            )
    return trace


def trace_digest(trace: Sequence[PlannedRequest]) -> str:
    """Stable hash of a trace — two same-seed runs must agree on it."""
    payload = json.dumps(
        [req.to_tuple() for req in trace], separators=(",", ":")
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def trace_summary(trace: Sequence[PlannedRequest]) -> Dict[str, object]:
    """Counts a report records alongside the digest (human-checkable)."""
    by_route: Dict[str, int] = {}
    users = set()
    for req in trace:
        by_route[req.path] = by_route.get(req.path, 0) + 1
        users.add(req.user)
    return {
        "requests": len(trace),
        "distinct_users": len(users),
        "by_route": dict(sorted(by_route.items())),
    }


def default_scenarios(smoke: bool = False) -> List[Scenario]:
    """The standing benchmark suite: steady state, burst, fault window.

    ``smoke=True`` shrinks every population and duration so the suite
    finishes in seconds on CI while exercising every code path.
    """
    scale = 0.2 if smoke else 1.0
    duration = 12.0 if smoke else 60.0
    steady = Scenario(
        name="steady_state",
        seed=101,
        duration_s=duration,
        users=max(8, int(50 * scale)),
        rps=max(4.0, 12.0 * scale),
        mode="open",
        description="Nominal traffic: Zipf users browsing the default mix.",
    )
    burst = Scenario(
        name="burst",
        seed=202,
        duration_s=duration,
        users=max(8, int(50 * scale)),
        rps=max(3.0, 8.0 * scale),
        mode="open",
        bursts=(
            Burst(
                start_s=duration * 0.4,
                end_s=duration * 0.6,
                multiplier=6.0,
            ),
        ),
        description=(
            "Thundering herd: a 6x arrival spike mid-run (maintenance "
            "email lands, everyone opens the dashboard)."
        ),
    )
    fault_window = Scenario(
        name="fault_window",
        seed=303,
        duration_s=duration,
        users=max(8, int(40 * scale)),
        rps=max(3.0, 8.0 * scale),
        mode="closed",
        clients=6,
        faults=(
            FaultSpec(
                service="slurmctld",
                start_s=duration * 0.33,
                end_s=duration * 0.66,
                kind="outage",
            ),
        ),
        # TTLs shorter than the outage: cached entries expire while the
        # daemon is down, so recovery must come from serve-stale
        cache_ttl_s=max(1.0, duration * 0.08),
        description=(
            "ctld outage mid-run: the dashboard must degrade to stale "
            "cache serves, not 500s (closed-loop clients keep retrying)."
        ),
    )
    return [steady, burst, fault_window]
