"""BENCH_load.json: schema, validation, summaries, trajectory diffs.

The harness emits one JSON document per run.  The schema is enforced
with a small hand-rolled validator (the container has no jsonschema
package, and the checks we need — required keys, types, non-empty
scenario list — fit in a page).  ``diff`` compares two BENCH documents
scenario by scenario so the repo can track a *trajectory*: commit the
current ``BENCH_load.json``, rerun after a change, and the diff shows
which scenario's p95 / hit rate / shed rate moved and by how much.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union

Number = (int, float)

#: every scenario record must carry these (field -> expected type)
SCENARIO_FIELDS: Dict[str, Union[type, Tuple[type, ...]]] = {
    "name": str,
    "seed": int,
    "mode": str,
    "cache_shards": int,
    "duration_s": Number,
    "users": int,
    "trace": dict,
    "latency_ms": dict,
    "rps": dict,
    "requests": dict,
    "statuses": dict,
    "ctld_rpcs": Number,
    "ctld_rpcs_per_request": Number,
    "cache": dict,
    "shed": dict,
    "admission_tiers": list,
    "lock": dict,
}

LATENCY_FIELDS = ("p50", "p95", "p99", "mean", "max")
CACHE_FIELDS = ("lookups", "hits", "hit_rate", "stale_served")
SHED_FIELDS = ("admission_rejected", "http_429_503_504", "http_5xx", "rate")
TRACE_FIELDS = ("digest", "requests", "distinct_users", "by_route")
RPS_FIELDS = ("offered_sim", "achieved_wall")


def validate_bench(doc: Any) -> List[str]:
    """Return a list of schema violations (empty means valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("kind") != "repro-load-bench":
        errors.append("kind must be 'repro-load-bench'")
    if not isinstance(doc.get("schema_version"), int):
        errors.append("schema_version must be an integer")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        errors.append("scenarios must be a non-empty array")
        return errors
    for i, rec in enumerate(scenarios):
        where = f"scenarios[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where} is not an object")
            continue
        label = rec.get("name", where)
        for field, expected in SCENARIO_FIELDS.items():
            if field not in rec:
                errors.append(f"{label}: missing field {field!r}")
            elif not isinstance(rec[field], expected):
                errors.append(
                    f"{label}: field {field!r} has type "
                    f"{type(rec[field]).__name__}"
                )
        for field in LATENCY_FIELDS:
            if field not in rec.get("latency_ms", {}):
                errors.append(f"{label}: latency_ms missing {field!r}")
        for field in CACHE_FIELDS:
            if field not in rec.get("cache", {}):
                errors.append(f"{label}: cache missing {field!r}")
        for field in SHED_FIELDS:
            if field not in rec.get("shed", {}):
                errors.append(f"{label}: shed missing {field!r}")
        for field in TRACE_FIELDS:
            if field not in rec.get("trace", {}):
                errors.append(f"{label}: trace missing {field!r}")
        for field in RPS_FIELDS:
            if field not in rec.get("rps", {}):
                errors.append(f"{label}: rps missing {field!r}")
    sharding = doc.get("sharding")
    if sharding is not None:
        if not isinstance(sharding, dict):
            errors.append("sharding must be an object")
        else:
            for field in ("shard_counts", "stampede", "contended_reduction",
                          "responses_identical"):
                if field not in sharding:
                    errors.append(f"sharding: missing field {field!r}")
    delivery = doc.get("delivery")
    if delivery is not None:
        if not isinstance(delivery, dict):
            errors.append("delivery must be an object")
        else:
            for field in ("not_modified", "gzip",
                          "streamed_homepage_identical", "decoded_identical"):
                if field not in delivery:
                    errors.append(f"delivery: missing field {field!r}")
            for field in ("full_body_bytes", "bytes_saved",
                          "render_calls_during_304"):
                if field not in delivery.get("not_modified", {}):
                    errors.append(f"delivery: not_modified missing {field!r}")
            if "savings_ratio" not in delivery.get("gzip", {}):
                errors.append("delivery: gzip missing 'savings_ratio'")
    federation = doc.get("federation")
    if federation is not None:
        if not isinstance(federation, dict):
            errors.append("federation must be an object")
        else:
            for field in ("faulted_cluster", "baseline", "federated",
                          "healthy_clusters", "healthy_hit_rate_delta",
                          "zero_unexpected_5xx", "degraded_detail_served"):
                if field not in federation:
                    errors.append(f"federation: missing field {field!r}")
            for side in ("baseline", "federated"):
                for field in ("clusters", "requests", "statuses",
                              "unexpected_5xx", "shed_responses",
                              "degraded_responses", "member_cache"):
                    if field not in federation.get(side, {}):
                        errors.append(f"federation: {side} missing {field!r}")
    views = doc.get("views")
    if views is not None:
        if not isinstance(views, dict):
            errors.append("views must be an object")
        else:
            for field in ("routes", "poll", "event", "responses_identical",
                          "reflects_event_without_ttl", "delta"):
                if field not in views:
                    errors.append(f"views: missing field {field!r}")
            for mode in ("poll", "event"):
                for field in ("on_request_rpcs", "rpcs_per_request"):
                    if field not in views.get(mode, {}):
                        errors.append(f"views: {mode} missing {field!r}")
            for field in ("full_bytes", "delta_bytes", "bytes_saved",
                          "records_changed"):
                if field not in views.get("delta", {}):
                    errors.append(f"views: delta missing {field!r}")
    scaleout = doc.get("scaleout")
    if scaleout is not None:
        if not isinstance(scaleout, dict):
            errors.append("scaleout must be an object")
        else:
            for field in ("workers", "environment", "trace", "baseline",
                          "affinity", "round_robin", "affinity_kill",
                          "transparency", "speedup_wall", "p95_improved",
                          "bodies_identical", "body_mismatches",
                          "hit_rate_advantage", "kill_zero_unexpected_5xx",
                          "kill_rerouted"):
                if field not in scaleout:
                    errors.append(f"scaleout: missing field {field!r}")
            for field in ("python", "cpus", "workers"):
                if field not in scaleout.get("environment", {}):
                    errors.append(f"scaleout: environment missing {field!r}")
            for side in ("baseline", "affinity", "round_robin",
                         "affinity_kill"):
                for field in ("workers", "routing", "requests", "statuses",
                              "unexpected_5xx", "latency_ms", "rps",
                              "fleet_cache", "balancer",
                              "workers_alive_at_end", "body_digest"):
                    if field not in scaleout.get(side, {}):
                        errors.append(f"scaleout: {side} missing {field!r}")
            for field in ("requests", "bodies_identical", "body_mismatches"):
                if field not in scaleout.get("transparency", {}):
                    errors.append(
                        f"scaleout: transparency missing {field!r}"
                    )
    return errors


def load_bench(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Read and parse a BENCH file (no validation)."""
    return json.loads(pathlib.Path(path).read_text())


def summarize(doc: Dict[str, Any]) -> str:
    """Human-readable table of one BENCH document."""
    lines: List[str] = []
    mode = "smoke" if doc.get("smoke") else "full"
    lines.append(f"repro-load-bench (schema v{doc.get('schema_version')}, {mode})")
    lines.append("")
    header = (
        f"{'scenario':<14} {'mode':<6} {'reqs':>5} {'p50ms':>7} {'p95ms':>7} "
        f"{'p99ms':>7} {'hit%':>6} {'stale':>6} {'shed%':>6} {'rpc/rq':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for rec in doc.get("scenarios", []):
        lat = rec["latency_ms"]
        lines.append(
            f"{rec['name']:<14} {rec['mode']:<6} "
            f"{rec['requests']['completed']:>5} "
            f"{lat['p50']:>7.1f} {lat['p95']:>7.1f} {lat['p99']:>7.1f} "
            f"{rec['cache']['hit_rate'] * 100:>5.1f}% "
            f"{rec['cache']['stale_served']:>6.0f} "
            f"{rec['shed']['rate'] * 100:>5.1f}% "
            f"{rec['ctld_rpcs_per_request']:>7.2f}"
        )
        tiers = rec.get("admission_tiers", [])
        degraded = [t for t in tiers if t[1] != "normal"]
        if degraded:
            timeline = " -> ".join(f"{t[1]}@{t[0]:.0f}s" for t in tiers)
            lines.append(f"{'':<14} admission: {timeline}")
    sharding = doc.get("sharding")
    if sharding:
        lines.append("")
        lines.append("hot-key stampede (lock contention by shard count):")
        for count in sharding["shard_counts"]:
            run = sharding["stampede"][str(count)]
            lock = run["lock"]
            lines.append(
                f"  shards={count:<3} contended={lock['contended']:>8.0f} "
                f"wait={lock['wait_s'] * 1000:>8.1f}ms "
                f"wall={run['wall_s'] * 1000:>8.1f}ms"
            )
        lines.append(
            f"  contention reduction: "
            f"{sharding['contended_reduction'] * 100:.1f}%  "
            f"responses identical: {sharding['responses_identical']}"
        )
    delivery = doc.get("delivery")
    if delivery:
        nm = delivery["not_modified"]
        gz = delivery["gzip"]
        lines.append("")
        lines.append("HTTP delivery (conditional GET / gzip / streaming):")
        lines.append(
            f"  304 revalidation: {nm['full_body_bytes']} -> "
            f"{nm['revalidation_body_bytes']} body bytes "
            f"(saved {nm['bytes_saved']}), "
            f"renders during 304: {nm['render_calls_during_304']:.0f}"
        )
        lines.append(
            f"  gzip savings: {gz['savings_ratio'] * 100:.1f}%  "
            f"streamed homepage identical: "
            f"{delivery['streamed_homepage_identical']}  "
            f"decoded identical: {delivery['decoded_identical']}"
        )
    federation = doc.get("federation")
    if federation:
        fd = federation["federated"]
        lines.append("")
        lines.append(
            f"federation A/B (1 vs {len(fd['clusters'])} clusters, "
            f"{federation['faulted_cluster']} killed mid-run):"
        )
        for name, cache in fd["member_cache"].items():
            marker = " (killed)" if name == federation["faulted_cluster"] else ""
            lines.append(
                f"  {name:<10} hit_rate={cache['hit_rate'] * 100:>5.1f}% "
                f"lookups={cache['lookups']:.0f}{marker}"
            )
        lines.append(
            f"  unexpected 5xx: {fd['unexpected_5xx']}  "
            f"shed: {fd['shed_responses']}  "
            f"degraded-detail 200s: {fd['degraded_responses']}  "
            f"healthy hit-rate delta vs baseline: "
            f"{federation['healthy_hit_rate_delta'] * 100:.1f}pp"
        )
    views = doc.get("views")
    if views:
        delta = views["delta"]
        lines.append("")
        lines.append("event-driven views (TTL-poll vs event-invalidation):")
        lines.append(
            f"  rpc/rq poll={views['poll']['rpcs_per_request']:.2f} "
            f"event={views['event']['rpcs_per_request']:.2f}  "
            f"responses identical: {views['responses_identical']}  "
            f"reflects event pre-TTL: {views['reflects_event_without_ttl']}"
        )
        lines.append(
            f"  ?since= delta: {delta['full_bytes']} -> "
            f"{delta['delta_bytes']} bytes "
            f"(saved {delta['bytes_saved']}, "
            f"{delta['records_changed']} records changed)"
        )
    scaleout = doc.get("scaleout")
    if scaleout:
        env = scaleout.get("environment", {})
        lines.append("")
        lines.append(
            f"scale-out A/B (1 worker vs {scaleout['workers']}, "
            f"{scaleout['affinity_kill'].get('killed_worker')} killed "
            f"mid-run; py{env.get('python')}, {env.get('cpus')} cpus):"
        )
        for side in ("baseline", "affinity", "round_robin"):
            rec = scaleout[side]
            lines.append(
                f"  {side:<12} workers={rec['workers']} "
                f"wall_rps={rec['rps']['achieved_wall']:>7.1f} "
                f"p95={rec['latency_ms']['p95']:>7.1f}ms "
                f"hit_rate={rec['fleet_cache']['hit_rate'] * 100:>5.1f}%"
            )
        kill = scaleout["affinity_kill"]
        lines.append(
            f"  {'kill run':<12} unexpected 5xx: {kill['unexpected_5xx']}  "
            f"rerouted: {kill['balancer']['rerouted']:.0f}  "
            f"alive at end: {len(kill['workers_alive_at_end'])}"
            f"/{kill['workers']}"
        )
        lines.append(
            f"  speedup vs 1 worker: {scaleout['speedup_wall']:.2f}x "
            f"(achieved wall RPS)  p95 improved: "
            f"{scaleout['p95_improved']}  bodies identical "
            f"(cache-off transparency, "
            f"{scaleout['transparency']['requests']} reqs): "
            f"{scaleout['bodies_identical']}"
        )
    return "\n".join(lines)


def _pct_delta(old: float, new: float) -> str:
    if old == 0:
        return "n/a" if new == 0 else "+inf"
    return f"{(new - old) / old * 100:+.1f}%"


def diff(old: Dict[str, Any], new: Dict[str, Any]) -> str:
    """Trajectory diff between two BENCH documents.

    Deterministic fields (trace digest, request counts) are checked for
    *equality* — a changed digest means the traffic changed, so latency
    comparisons would be apples to oranges.  Wall-clock fields (latency,
    achieved RPS) are reported as percentage deltas.
    """
    lines: List[str] = []
    old_by_name = {r["name"]: r for r in old.get("scenarios", [])}
    for rec in new.get("scenarios", []):
        name = rec["name"]
        prev = old_by_name.pop(name, None)
        if prev is None:
            lines.append(f"{name}: new scenario (no baseline)")
            continue
        notes: List[str] = []
        if prev["trace"]["digest"] != rec["trace"]["digest"]:
            notes.append(
                "TRACE CHANGED (digest differs — latency deltas not "
                "comparable)"
            )
        elif prev["trace"]["requests"] != rec["trace"]["requests"]:
            notes.append("request count changed with same digest (bug?)")
        for q in ("p50", "p95", "p99"):
            notes.append(
                f"{q} {prev['latency_ms'][q]:.1f} -> "
                f"{rec['latency_ms'][q]:.1f}ms "
                f"({_pct_delta(prev['latency_ms'][q], rec['latency_ms'][q])})"
            )
        notes.append(
            f"hit_rate {prev['cache']['hit_rate']:.3f} -> "
            f"{rec['cache']['hit_rate']:.3f}"
        )
        notes.append(
            f"shed_rate {prev['shed']['rate']:.3f} -> {rec['shed']['rate']:.3f}"
        )
        notes.append(
            f"rpc/rq {prev['ctld_rpcs_per_request']:.2f} -> "
            f"{rec['ctld_rpcs_per_request']:.2f}"
        )
        lines.append(f"{name}:")
        lines.extend(f"  {note}" for note in notes)
    for name in old_by_name:
        lines.append(f"{name}: removed (present in baseline only)")

    old_sh = old.get("sharding")
    new_sh = new.get("sharding")
    if old_sh and new_sh:
        lines.append(
            f"sharding contention reduction: "
            f"{old_sh['contended_reduction']:.3f} -> "
            f"{new_sh['contended_reduction']:.3f}"
        )
    old_dl = old.get("delivery")
    new_dl = new.get("delivery")
    if old_dl and new_dl:
        lines.append(
            f"delivery 304 bytes saved: "
            f"{old_dl['not_modified']['bytes_saved']} -> "
            f"{new_dl['not_modified']['bytes_saved']}, gzip savings: "
            f"{old_dl['gzip']['savings_ratio']:.3f} -> "
            f"{new_dl['gzip']['savings_ratio']:.3f}"
        )
    old_fd = old.get("federation")
    new_fd = new.get("federation")
    if old_fd and new_fd:
        lines.append(
            f"federation healthy hit-rate delta: "
            f"{old_fd['healthy_hit_rate_delta']:.3f} -> "
            f"{new_fd['healthy_hit_rate_delta']:.3f}, unexpected 5xx: "
            f"{old_fd['federated']['unexpected_5xx']} -> "
            f"{new_fd['federated']['unexpected_5xx']}"
        )
    old_vw = old.get("views")
    new_vw = new.get("views")
    if old_vw and new_vw:
        lines.append(
            f"views event rpc/rq: "
            f"{old_vw['event']['rpcs_per_request']:.2f} -> "
            f"{new_vw['event']['rpcs_per_request']:.2f}, "
            f"delta bytes saved: {old_vw['delta']['bytes_saved']} -> "
            f"{new_vw['delta']['bytes_saved']}"
        )
    old_so = old.get("scaleout")
    new_so = new.get("scaleout")
    if old_so and new_so:
        old_env = old_so.get("environment", {})
        new_env = new_so.get("environment", {})
        if old_env != new_env:
            changed = sorted(
                k for k in set(old_env) | set(new_env)
                if old_env.get(k) != new_env.get(k)
            )
            detail = ", ".join(
                f"{k} {old_env.get(k)} -> {new_env.get(k)}" for k in changed
            )
            lines.append(
                f"scaleout: ENVIRONMENT CHANGED ({detail}) — achieved-wall "
                "speedups not comparable across environments"
            )
        else:
            lines.append(
                f"scaleout speedup: {old_so['speedup_wall']:.2f}x -> "
                f"{new_so['speedup_wall']:.2f}x, hit-rate advantage vs "
                f"round-robin: {old_so['hit_rate_advantage']:.3f} -> "
                f"{new_so['hit_rate_advantage']:.3f}, kill unexpected 5xx: "
                f"{old_so['affinity_kill']['unexpected_5xx']} -> "
                f"{new_so['affinity_kill']['unexpected_5xx']}"
            )
    return "\n".join(lines) if lines else "(no scenarios to compare)"


def write_bench(
    doc: Dict[str, Any], path: Union[str, pathlib.Path],
    generated_at: Optional[str] = None,
) -> pathlib.Path:
    """Validate then write a BENCH document (raises on schema errors)."""
    errors = validate_bench(doc)
    if errors:
        raise ValueError(
            "refusing to write invalid BENCH document:\n  "
            + "\n  ".join(errors)
        )
    if generated_at is not None:
        doc = {**doc, "generated_at": generated_at}
    out = pathlib.Path(path)
    out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return out
