"""Deterministic load harness for the dashboard (standing benchmarks).

``repro.load`` replays realistic user populations against the real HTTP
server on the sim clock: Zipf-skewed users, a weighted route mix over
the paper's pages, Poisson arrivals with optional burst windows, and
scheduled fault windows — all drawn from seeded streams so the same
seed always produces the identical traffic trace.  Results land in a
schema'd ``BENCH_load.json`` (see :mod:`repro.load.report`) that
``tools/bench_report.py`` runs, validates, summarizes, and diffs.
"""

from .federation import federation_ab, run_federation_side
from .generator import (
    RequestOutcome,
    bench_environment,
    compare_sharding,
    delivery_ab,
    percentile,
    responses_identical,
    run_scenario,
    run_suite,
    stampede_contention,
    views_ab,
)
from .report import diff, load_bench, summarize, validate_bench, write_bench
from .scaleout import run_fleet_side, scaleout_ab, transparency_check
from .scenarios import (
    Burst,
    FaultSpec,
    PlannedRequest,
    RouteWeight,
    Scenario,
    build_trace,
    default_scenarios,
    trace_digest,
    trace_summary,
    user_population,
)

__all__ = [
    "Burst",
    "FaultSpec",
    "PlannedRequest",
    "RequestOutcome",
    "RouteWeight",
    "Scenario",
    "bench_environment",
    "build_trace",
    "compare_sharding",
    "default_scenarios",
    "delivery_ab",
    "diff",
    "federation_ab",
    "load_bench",
    "percentile",
    "responses_identical",
    "run_federation_side",
    "run_fleet_side",
    "run_scenario",
    "run_suite",
    "scaleout_ab",
    "stampede_contention",
    "summarize",
    "trace_digest",
    "trace_summary",
    "transparency_check",
    "user_population",
    "validate_bench",
    "views_ab",
    "write_bench",
]
