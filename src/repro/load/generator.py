"""Replay a scenario's trace against a real HTTP dashboard.

The harness stands up a populated dashboard, starts the threaded HTTP
server, and replays the scenario's deterministic trace tick by tick:
every request of a tick fires (bounded by the client model), the tick
drains completely, and only then does the sim clock advance — so the
clock never moves under an in-flight handler and cache TTL behaviour
is reproducible.

Two clocks coexist deliberately.  Arrivals, TTL expiry, fault windows,
and admission tiers live on the *sim* clock (deterministic); request
latency is *wall* clock (it measures this machine).  Reports therefore
split the two: trace counts and digests must match run to run, latency
quantiles may not.
"""

from __future__ import annotations

import gzip
import os
import platform
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.auth import Viewer
from repro.core.caching import CachePolicy
from repro.core.dashboard import build_demo_dashboard
from repro.core.sharding import ShardedCache
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import SimClock
from repro.web.server import DashboardServer

from .scenarios import (
    HOMEPAGE,
    PlannedRequest,
    Scenario,
    build_trace,
    trace_digest,
    trace_summary,
)

#: synthetic status for requests that died below HTTP (socket errors)
TRANSPORT_ERROR_STATUS = 599


def bench_environment() -> Dict[str, Any]:
    """Machine facts recorded alongside every ``achieved_wall`` figure.

    Sim-side numbers (trace digests, hit rates, shed counts) compare
    across any two machines; wall-clock throughput does not.  Diffing
    tools use this block to refuse — loudly — to call a cross-machine
    or cross-interpreter delta a regression.
    """
    return {
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }

#: statuses that mean "the admission layer shed this request"
SHED_STATUSES = (429, 503, 504)


@dataclass
class RequestOutcome:
    """What one replayed request observed (wall-clock side)."""

    planned: PlannedRequest
    status: int
    latency_s: float
    body_bytes: int


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1]: {q}")
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def request_catalog(dash, limit: int = 25) -> Dict[str, List[Any]]:
    """Query-string candidates for routes with required parameters.

    Derived from the seeded cluster (sorted, truncated), so the same
    scenario seed always yields the same catalog — and the same trace.
    Job-detail entries carry the job owner's username: a job page is
    visited by whoever submitted the job (anyone else gets a 403 by
    design, which is privacy policy, not load).
    """
    cluster = dash.ctx.cluster
    nodes = sorted(cluster.nodes)[:limit]
    jobs = cluster.scheduler.jobs
    job_ids = sorted(jobs)[:limit]
    return {
        "/api/v1/node_overview": [f"node={name}" for name in nodes],
        "/api/v1/job_overview": [
            (f"job_id={jid}", jobs[jid].spec.user) for jid in job_ids
        ],
    }


def _fire(url: str, req: PlannedRequest, timeout_s: float) -> RequestOutcome:
    """Issue one HTTP request, never raising: transport failures become
    status 599 so the report can count them honestly."""
    request = urllib.request.Request(
        url + req.url_path, headers={"X-Remote-User": req.user}
    )
    t0 = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as resp:
            body = resp.read()
            status = resp.status
    except urllib.error.HTTPError as exc:
        body = exc.read()
        status = exc.code
    except (urllib.error.URLError, OSError):
        body = b""
        status = TRANSPORT_ERROR_STATUS
    return RequestOutcome(
        planned=req,
        status=status,
        latency_s=time.perf_counter() - t0,
        body_bytes=len(body),
    )


class _MetricProbe:
    """Before/after snapshots of the counters a scenario reports."""

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self._before: Dict[str, float] = {}

    def _totals(self) -> Dict[str, float]:
        reg = self._ctx.obs.registry
        return {
            "cache_lookups": reg.total("repro_cache_requests_total"),
            "cache_hits": reg.total("repro_cache_requests_total", result="hit"),
            "cache_stale_served": reg.total(
                "repro_cache_requests_total", result="stale_served"
            ),
            "cache_coalesced": reg.total(
                "repro_cache_requests_total", result="coalesced"
            ),
            "admission_rejected": reg.total("repro_admission_rejected_total"),
            "ctld_rpcs": float(self._ctx.cluster.daemons.ctld.total_rpcs),
            "dbd_rpcs": float(self._ctx.cluster.daemons.dbd.total_rpcs),
        }

    def start(self) -> None:
        self._before = self._totals()

    def deltas(self) -> Dict[str, float]:
        after = self._totals()
        return {k: after[k] - self._before.get(k, 0.0) for k in after}


def run_scenario(
    scenario: Scenario,
    *,
    request_timeout_s: float = 30.0,
    open_loop_workers: int = 32,
) -> Dict[str, Any]:
    """Replay one scenario end to end; returns its BENCH record.

    The returned dict is one element of ``BENCH_load.json``'s
    ``scenarios`` array (see :mod:`repro.load.report` for the schema).
    """
    cache_policy = None
    if scenario.cache_ttl_s is not None:
        ttl = scenario.cache_ttl_s
        cache_policy = CachePolicy(
            squeue=ttl, sinfo=ttl, sacct=ttl, scontrol_node=ttl,
            scontrol_job=ttl, scontrol_assoc=ttl, news=ttl, storage=ttl,
            default=ttl,
        )
    dash, _directory, _ = build_demo_dashboard(
        seed=scenario.seed,
        cache_shards=scenario.cache_shards,
        cache_policy=cache_policy,
    )
    trace = build_trace(scenario, catalog=request_catalog(dash))
    clock = dash.clock
    run_start = clock.now()

    if scenario.faults:
        plan = FaultPlan(seed=scenario.seed)
        for spec in scenario.faults:
            plan.add(_window_from_spec(spec, run_start))
        dash.inject_faults(plan)

    workers = scenario.clients if scenario.mode == "closed" else open_loop_workers
    outcomes: List[RequestOutcome] = []
    outcome_lock = threading.Lock()
    probe = _MetricProbe(dash.ctx)

    by_tick: Dict[int, List[PlannedRequest]] = {}
    for req in trace:
        by_tick.setdefault(req.tick, []).append(req)

    wall_start = time.perf_counter()
    with DashboardServer(dash) as server:
        url = server.url
        probe.start()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for tick in range(scenario.ticks):
                batch = by_tick.get(tick, ())
                futures = [
                    pool.submit(_fire, url, req, request_timeout_s)
                    for req in batch
                ]
                # tick barrier: drain every request before the clock
                # moves, so TTL expiry and fault windows are exact
                for future in futures:
                    outcome = future.result()
                    with outcome_lock:
                        outcomes.append(outcome)
                clock.advance(scenario.tick_s)
        deltas = probe.deltas()
    wall_elapsed = time.perf_counter() - wall_start

    return _scenario_record(
        scenario, trace, outcomes, deltas, dash, run_start, wall_elapsed
    )


def _window_from_spec(spec, run_start: float):
    from repro.faults.plan import FaultWindow

    return FaultWindow(
        service=spec.service,
        start=run_start + spec.start_s,
        end=run_start + spec.end_s,
        kind=spec.kind,
        extra_latency_s=spec.extra_latency_s,
        error_rate=spec.error_rate,
    )


def _scenario_record(
    scenario: Scenario,
    trace: List[PlannedRequest],
    outcomes: List[RequestOutcome],
    deltas: Dict[str, float],
    dash,
    run_start: float,
    wall_elapsed: float,
) -> Dict[str, Any]:
    latencies = sorted(o.latency_s for o in outcomes)
    statuses: Dict[str, int] = {}
    for o in outcomes:
        key = str(o.status)
        statuses[key] = statuses.get(key, 0) + 1

    ok = sum(n for code, n in statuses.items() if code.startswith("2"))
    shed_http = sum(statuses.get(str(code), 0) for code in SHED_STATUSES)
    # unexpected server errors only: deliberate backpressure responses
    # (429/503/504) are shed, not failure, and 599 is client transport
    errors_5xx = sum(
        n for code, n in statuses.items()
        if code.startswith("5")
        and int(code) not in SHED_STATUSES
        and int(code) != TRANSPORT_ERROR_STATUS
    )
    completed = len(outcomes)
    lookups = deltas["cache_lookups"]

    tiers = [
        [round(at - run_start, 3), tier]
        for at, tier in dash.ctx.admission.tier_history()
        if at >= run_start
    ] or [[0.0, "normal"]]

    return {
        "name": scenario.name,
        "description": scenario.description,
        "seed": scenario.seed,
        "mode": scenario.mode,
        "cache_shards": scenario.cache_shards,
        "duration_s": scenario.duration_s,
        "users": scenario.users,
        "trace": {"digest": trace_digest(trace), **trace_summary(trace)},
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1000, 3),
            "p95": round(percentile(latencies, 0.95) * 1000, 3),
            "p99": round(percentile(latencies, 0.99) * 1000, 3),
            "mean": round(
                (sum(latencies) / len(latencies) * 1000) if latencies else 0.0, 3
            ),
            "max": round((latencies[-1] * 1000) if latencies else 0.0, 3),
        },
        "rps": {
            # offered load per *sim* second — deterministic, trace-derived
            "offered_sim": round(len(trace) / scenario.duration_s, 3),
            # achieved throughput per *wall* second — machine-dependent
            "achieved_wall": round(
                completed / wall_elapsed if wall_elapsed > 0 else 0.0, 3
            ),
        },
        "requests": {"planned": len(trace), "completed": completed, "ok": ok},
        "statuses": dict(sorted(statuses.items())),
        "ctld_rpcs": deltas["ctld_rpcs"],
        "ctld_rpcs_per_request": round(
            deltas["ctld_rpcs"] / completed if completed else 0.0, 4
        ),
        "cache": {
            "lookups": lookups,
            "hits": deltas["cache_hits"],
            "hit_rate": round(
                deltas["cache_hits"] / lookups if lookups else 0.0, 4
            ),
            "stale_served": deltas["cache_stale_served"],
            "coalesced": deltas["cache_coalesced"],
        },
        "shed": {
            "admission_rejected": deltas["admission_rejected"],
            "http_429_503_504": shed_http,
            "http_5xx": errors_5xx,
            "transport_errors": statuses.get(str(TRANSPORT_ERROR_STATUS), 0),
            "rate": round(shed_http / completed if completed else 0.0, 4),
        },
        "admission_tiers": tiers,
        "lock": dash.ctx.cache.lock_stats(),
    }


# -- hot-key stampede: sharded-lock A/B -------------------------------------


def stampede_contention(
    shards: int,
    *,
    threads: int = 32,
    iterations: int = 3000,
    hot_keys: int = 8,
) -> Dict[str, Any]:
    """Hammer a few hot keys from many threads; report lock contention.

    This is the microbenchmark behind the ``cache_shards`` knob.  Each
    thread pins to one hot key (a stampede is many clients refreshing
    the *same* page): with one shard every lookup serialises on a
    single lock, while sharding splits the threads into per-shard lock
    groups that stop colliding with each other.  The thread switch
    interval is lowered during the run so contended acquisitions show
    up reliably even on a lightly loaded machine.
    """
    clock = SimClock()
    cache = ShardedCache(
        clock, shards=shards, default_ttl=3600.0, registry=MetricsRegistry()
    )
    keys = [f"hot:{i}" for i in range(hot_keys)]
    for key in keys:  # warm: measure steady-state lock traffic, not misses
        cache.fetch(key, lambda: {"payload": key})

    barrier = threading.Barrier(threads)

    def worker(idx: int) -> None:
        key = keys[idx % hot_keys]
        barrier.wait()
        for _ in range(iterations):
            cache.fetch(key, lambda: {"payload": key})

    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    try:
        t0 = time.perf_counter()
        threads_list = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for t in threads_list:
            t.start()
        for t in threads_list:
            t.join()
        elapsed = time.perf_counter() - t0
    finally:
        sys.setswitchinterval(old_interval)

    stats = cache.lock_stats()
    return {
        "shards": shards,
        "threads": threads,
        "iterations_per_thread": iterations,
        "hot_keys": hot_keys,
        "wall_s": round(elapsed, 4),
        "lock": stats,
        "lock_by_shard": cache.lock_stats_by_shard(),
    }


def compare_sharding(
    *,
    shard_counts: Sequence[int] = (1, 8),
    threads: int = 32,
    iterations: int = 3000,
    hot_keys: int = 8,
    verify_routes: Sequence[str] = (
        HOMEPAGE,
        "/api/v1/my_jobs",
        "/api/v1/cluster_status",
        "/api/v1/widgets/recent_jobs",
        "/api/v1/widgets/system_status",
    ),
    verify_seed: int = 77,
) -> Dict[str, Any]:
    """The BENCH file's ``sharding`` section: contention A/B plus proof
    that sharding never changes a single response byte."""
    runs = {
        str(n): stampede_contention(
            n, threads=threads, iterations=iterations, hot_keys=hot_keys
        )
        for n in shard_counts
    }
    base = runs[str(shard_counts[0])]["lock"]
    top = runs[str(shard_counts[-1])]["lock"]
    reduction = 0.0
    if base["contended"] > 0:
        reduction = 1.0 - (top["contended"] / base["contended"])
    return {
        "shard_counts": list(shard_counts),
        "stampede": runs,
        "contended_reduction": round(reduction, 4),
        "responses_identical": responses_identical(
            shard_counts, routes=verify_routes, seed=verify_seed
        ),
    }


def responses_identical(
    shard_counts: Sequence[int],
    *,
    routes: Sequence[str],
    seed: int,
    user: str = "alice",
) -> bool:
    """True when every route serves byte-identical bodies across all
    shard counts (same seed, fresh dashboard each)."""
    bodies: List[List[bytes]] = []
    for n in shard_counts:
        dash, _directory, _ = build_demo_dashboard(seed=seed, cache_shards=n)
        with DashboardServer(dash) as server:
            batch = []
            for path in routes:
                request = urllib.request.Request(
                    server.url + path, headers={"X-Remote-User": user}
                )
                with urllib.request.urlopen(request, timeout=30) as resp:
                    batch.append(resp.read())
            bodies.append(batch)
    first = bodies[0]
    return all(batch == first for batch in bodies[1:])


# -- HTTP delivery: conditional GET / gzip / streaming A/B -------------------


def delivery_ab(
    *,
    seed: int = 77,
    user: str = "alice",
    widget: str = "/api/v1/widgets/system_status",
) -> Dict[str, Any]:
    """The BENCH file's ``delivery`` section.

    Measures, against one fresh dashboard over real HTTP:

    * **not_modified** — the byte and render savings of a conditional
      re-fetch of an unchanged widget (full body vs a 304's zero body,
      and proof that no route dispatch ran during the 304);
    * **gzip** — negotiated compression savings, with the decoded bytes
      proven identical to the identity response;
    * **streamed homepage** — the chunked streamed document proven
      byte-identical to the sequential batch render.
    """

    dash, _directory, _ = build_demo_dashboard(seed=seed)

    with DashboardServer(dash) as server:

        def fetch(path: str, headers: Optional[Dict[str, str]] = None):
            req = urllib.request.Request(
                server.url + path,
                headers={"X-Remote-User": user, **(headers or {})},
            )
            try:
                with urllib.request.urlopen(req, timeout=30) as resp:
                    return resp.status, resp.headers, resp.read()
            except urllib.error.HTTPError as exc:
                return exc.code, exc.headers, exc.read()

        # A: first fetch pays the full render + full body
        _, headers, full_body = fetch(widget)
        etag = headers["ETag"]
        renders_before = dash.ctx.obs.route_requests.total(route="system_status")
        # B: conditional re-fetch of the unchanged widget
        status_304, _, body_304 = fetch(widget, {"If-None-Match": etag})
        renders_during_304 = (
            dash.ctx.obs.route_requests.total(route="system_status")
            - renders_before
        )

        _, _, gz_widget = fetch(widget, {"Accept-Encoding": "gzip"})

        _, _, streamed = fetch("/")
        batch = dash.render_homepage(
            Viewer(username=user), parallel=False
        ).document.encode()
        _, _, gz_home = fetch("/", {"Accept-Encoding": "gzip"})

    widget_identical = gzip.decompress(gz_widget) == full_body
    home_identical = gzip.decompress(gz_home) == streamed
    return {
        "seed": seed,
        "widget": widget,
        "not_modified": {
            "status": status_304,
            "full_body_bytes": len(full_body),
            "revalidation_body_bytes": len(body_304),
            "bytes_saved": len(full_body) - len(body_304),
            "render_calls_during_304": renders_during_304,
        },
        "gzip": {
            "widget_identity_bytes": len(full_body),
            "widget_gzip_bytes": len(gz_widget),
            "homepage_identity_bytes": len(streamed),
            "homepage_gzip_bytes": len(gz_home),
            "savings_ratio": round(
                1.0 - (len(gz_widget) + len(gz_home))
                / (len(full_body) + len(streamed)),
                4,
            ),
        },
        "streamed_homepage_identical": streamed == batch,
        "decoded_identical": widget_identical and home_identical,
    }


# -- event-driven views: TTL-poll vs event-invalidation A/B -------------------


def views_ab(
    *,
    seed: int = 77,
    user: str = "alice",
    advance_s: float = 120.0,
    routes: Sequence[str] = (
        "/api/v1/views/jobs",
        "/api/v1/views/nodes",
        "/api/v1/cluster_status",
        "/api/v1/widgets/recent_jobs",
        "/api/v1/widgets/system_status",
    ),
) -> Dict[str, Any]:
    """The BENCH file's ``views`` section.

    Two dashboards over the same seeded world, differing only in
    ``CachePolicy.event_views``.  Both warm up, both advance
    ``advance_s`` of sim time (long past every view-source TTL), then
    the same routes are fetched with the clock frozen:

    * **poll** pays the expired TTLs with on-request ctld/dbd RPCs;
    * **event** serves entirely from materialized views (zero RPCs),
      with every response byte-identical to the poll path;
    * a job submitted with *no* clock advance shows up on the very next
      ``?since=`` fetch, and the delta carries only the changed records
      (the recorded byte savings vs a full snapshot).
    """
    import json as _json

    from repro.slurm.model import JobSpec, TRES

    viewer = Viewer(username=user)

    def bodies(dash) -> List[bytes]:
        batch = []
        for path in routes:
            resp = dash.get(path, viewer)
            if not resp.ok:
                raise RuntimeError(f"{path} failed in views A/B: {resp.error}")
            batch.append(
                _json.dumps(resp.to_json(), sort_keys=True).encode()
            )
        return batch

    modes: Dict[str, Dict[str, Any]] = {}
    measured: Dict[str, List[bytes]] = {}
    dashboards = {}
    for mode, event_views in (("poll", False), ("event", True)):
        dash, _directory, _ = build_demo_dashboard(
            seed=seed, cache_policy=CachePolicy(event_views=event_views)
        )
        dashboards[mode] = dash
        bodies(dash)  # warm caches; in event mode this teaches the hub
        dash.ctx.cluster.advance(advance_s)
        if dash.ctx.views is not None:
            # what the scheduler pass at the measurement instant does:
            # re-materialize every learned view at exactly now()
            dash.ctx.views.flush()
        before = dash.ctx.cluster.daemons.rpc_totals()
        measured[mode] = bodies(dash)
        after = dash.ctx.cluster.daemons.rpc_totals()
        rpcs = sum(after.values()) - sum(before.values())
        modes[mode] = {
            "on_request_rpcs": rpcs,
            "rpcs_per_request": round(rpcs / len(routes), 4),
        }

    # event-reflection + delta economy, on the event dashboard only
    # (its state diverges from the poll world past this point)
    event_dash = dashboards["event"]
    full_resp = event_dash.get("/api/v1/views/jobs", viewer)
    cursor = full_resp.data["cursor"]
    full_bytes = len(_json.dumps(full_resp.to_json(), sort_keys=True))
    scheduler = event_dash.ctx.cluster.scheduler
    default_part = next(
        p.name for p in scheduler.partitions.values() if p.is_default
    )
    account = event_dash.ctx.directory.account_names_of(user)[0]
    [probe] = event_dash.ctx.cluster.submit(
        JobSpec(
            name="views-ab-probe", user=user, account=account,
            partition=default_part,
            req=TRES(cpus=1, mem_mb=512, nodes=1),
            time_limit=600.0, actual_runtime=300.0,
        )
    )
    # NO clock advance: only the event path can surface this job now
    delta_resp = event_dash.get(
        "/api/v1/views/jobs", viewer, {"since": cursor}
    )
    delta_bytes = len(_json.dumps(delta_resp.to_json(), sort_keys=True))
    reflected = (
        not delta_resp.data["full"]
        and probe.job_id in [r["job_id"] for r in delta_resp.data["records"]]
    )
    return {
        "seed": seed,
        "advance_s": advance_s,
        "routes": list(routes),
        "poll": modes["poll"],
        "event": modes["event"],
        "responses_identical": measured["poll"] == measured["event"],
        "reflects_event_without_ttl": reflected,
        "delta": {
            "since_cursor": cursor,
            "full_bytes": full_bytes,
            "delta_bytes": delta_bytes,
            "bytes_saved": full_bytes - delta_bytes,
            "records_changed": len(delta_resp.data["records"])
            + len(delta_resp.data["removed"]),
        },
    }


def run_suite(
    scenarios: Sequence[Scenario],
    *,
    smoke: bool = False,
    include_sharding: bool = True,
    include_delivery: bool = True,
    include_views: bool = True,
    include_federation: bool = True,
    include_scaleout: bool = True,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run scenarios plus the sharding and delivery comparisons into one
    BENCH doc."""
    records = []
    for scenario in scenarios:
        if progress is not None:
            progress(f"scenario {scenario.name} ...")
        records.append(run_scenario(scenario))
    doc: Dict[str, Any] = {
        "schema_version": 1,
        "kind": "repro-load-bench",
        "smoke": bool(smoke),
        "environment": bench_environment(),
        "scenarios": records,
    }
    if include_sharding:
        if progress is not None:
            progress("sharding stampede comparison ...")
        doc["sharding"] = compare_sharding(
            threads=16 if smoke else 32,
            iterations=800 if smoke else 3000,
        )
    if include_delivery:
        if progress is not None:
            progress("HTTP delivery A/B ...")
        doc["delivery"] = delivery_ab()
    if include_views:
        if progress is not None:
            progress("event-driven views A/B ...")
        doc["views"] = views_ab()
    if include_federation:
        if progress is not None:
            progress("federation A/B (1 vs 3 clusters, one killed) ...")
        from .federation import federation_ab

        doc["federation"] = federation_ab(smoke=smoke)
    if include_scaleout:
        if progress is not None:
            progress(
                "scale-out A/B (1 worker vs fleet, one killed) ..."
            )
        from .scaleout import scaleout_ab

        doc["scaleout"] = scaleout_ab(smoke=smoke)
    return doc
