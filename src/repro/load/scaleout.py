"""Scale-out A/B under standing load: 1 worker vs an affinity-routed fleet.

The BENCH file's ``scaleout`` section answers the tentpole's capacity
claim with numbers.  The same deterministic trace replays against four
deployments, every one behind a real :class:`~repro.scaleout.balancer.
BalancerServer` (so proxy overhead cancels out of every comparison):

* **baseline** — one worker.  Its cache is capped at
  ``cache_max_entries`` and the trace's working set does not fit, so it
  keeps re-rendering evicted entries;
* **affinity** — N workers, cache-affinity routing.  Same per-worker
  cap, but the ring partitions the working set: aggregate capacity is
  N x the cap and the fleet mostly serves warm entries;
* **round_robin** — N workers, routing control.  Same aggregate
  capacity, but every worker sees every key, so the fleet just
  duplicates the baseline's misses N ways;
* **affinity_kill** — the affinity fleet with one worker SIGKILLed at
  the halfway tick: the proof that a dead worker means rerouted
  requests and a cold-cache blip, never an outage.

The claims the record carries: affinity beats baseline on achieved wall
RPS at equal-or-better p95; affinity's fleet hit rate beats the
round-robin control's; the kill run finishes with **zero unexpected
5xx**; and routing is **transparent** — a separate cache-off replay of
the trace prefix proves 1 worker and N workers return byte-identical
bodies per request.  (The identity proof must run cache-off: with
caches on, widgets that render relative times — "estimated start" —
bake the render instant into the cached entry, so two topologies'
entries can age differently while both are TTL-fresh.  Cache-less
bodies are a pure function of (request, frozen sim time), which is
exactly the property that makes the proof meaningful.)

Users come from the workers' seeded directory (not synthetic load
users) so per-user sources — ``sacct``, quotas — are genuinely
expensive to recompute; that is what gives cache capacity its wall-
clock meaning on this machine.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import urllib.error
import urllib.request

from repro.obs.metrics import parse_prometheus_text
from repro.scaleout import WorkerConfig, WorkerFleet

from .generator import (
    SHED_STATUSES,
    TRANSPORT_ERROR_STATUS,
    bench_environment,
    percentile,
    request_catalog,
)
from .scenarios import (
    HOMEPAGE,
    PlannedRequest,
    RouteWeight,
    Scenario,
    build_trace,
    trace_digest,
    trace_summary,
)

#: traffic mix for the fleet trace: expensive, viewer-keyed routes
#: dominate.  job_performance (``range=all`` for a stable cache key) is
#: the sharpest A/B instrument — a miss aggregates the viewer's whole
#: job history, a hit renders a few hundred bytes from the cached
#: records; my_jobs and the homepage recompute per-user sacct/quota
#: state on a miss; job pages arrive as their owner (the catalog
#: overrides the user).  Every heavy key is therefore viewer-linked,
#: which is what lets the affinity ring partition the working set.
FLEET_ROUTE_MIX: Tuple[Tuple[str, float], ...] = (
    (HOMEPAGE, 0.20),
    ("/api/v1/job_performance", 0.35),
    ("/api/v1/my_jobs", 0.15),
    ("/api/v1/job_overview", 0.20),
    ("/api/v1/cluster_status", 0.10),
)


def fleet_worker_config(*, seed: int, smoke: bool) -> WorkerConfig:
    """The per-worker build every side of the A/B shares.

    A denser population than the demo default (more users submitting
    more often) widens the working set past one capped cache, and the
    cap itself is what makes "N x aggregate capacity" a measurable
    thing rather than a slogan.
    """
    return WorkerConfig(
        seed=seed,
        duration_hours=1.0 if smoke else 2.5,
        cache_max_entries=40 if smoke else 56,
        workload_users=16 if smoke else 48,
        workload_interarrival_s=60.0 if smoke else 30.0,
    )


def fleet_scenario(*, seed: int, users: int, smoke: bool) -> Scenario:
    return Scenario(
        name="scaleout_fleet",
        seed=seed,
        duration_s=12.0 if smoke else 96.0,
        tick_s=2.0,
        users=users,
        rps=5.0 if smoke else 16.0,
        # flatter than the default skew: capacity pressure needs the
        # long tail of users to actually arrive, not just the top few
        zipf_s=0.7,
        mode="open",
        routes=tuple(
            RouteWeight(path, weight) for path, weight in FLEET_ROUTE_MIX
        ),
        description=(
            "Fleet trace: seeded-directory users browsing the expensive "
            "viewer-keyed mix."
        ),
    )


def build_fleet_trace(
    scenario: Scenario, config: WorkerConfig, catalog_limit: int = 60
) -> List[PlannedRequest]:
    """The deterministic trace every side replays.

    Built from a parent-side twin of the worker build (same config →
    same cluster → same catalog), with the synthetic ``load_user_NNN``
    population mapped 1:1 onto the seeded directory's usernames so
    requests exercise real per-user state.
    """
    dash, directory, _result = config.build()
    catalog = request_catalog(dash, limit=catalog_limit)
    # range=all keeps job_performance's sacct key stable (the default
    # 7d window bakes now() into the key — a new key every tick)
    catalog["/api/v1/job_performance"] = ["range=all"]
    real_users = sorted(u.username for u in directory.users())
    trace = []
    for req in build_trace(scenario, catalog=catalog):
        if req.user.startswith("load_user_"):
            idx = int(req.user.rsplit("_", 1)[1])
            req = replace(req, user=real_users[idx % len(real_users)])
        trace.append(req)
    return trace


def _fire(
    url: str, req: PlannedRequest, timeout_s: float
) -> Tuple[int, float, int, str]:
    """(status, latency_s, body_bytes, body_sha256) for one request."""
    request = urllib.request.Request(
        url + req.url_path, headers={"X-Remote-User": req.user}
    )
    t0 = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as resp:
            body = resp.read()
            status = resp.status
    except urllib.error.HTTPError as exc:
        body = exc.read()
        status = exc.code
    except (urllib.error.URLError, OSError):
        body = b""
        status = TRANSPORT_ERROR_STATUS
    return (
        status,
        time.perf_counter() - t0,
        len(body),
        hashlib.sha256(body).hexdigest(),
    )


def _fleet_cache_totals(metrics_text: str) -> Dict[str, float]:
    """Sum worker-labeled cache counters out of one merged scrape."""
    lookups = hits = 0.0
    for sample in parse_prometheus_text(metrics_text, lenient=True):
        if sample.name != "repro_cache_requests_total":
            continue
        labels = sample.labeldict
        if "worker" not in labels:
            continue
        lookups += sample.value
        if labels.get("result") == "hit":
            hits += sample.value
    return {"lookups": lookups, "hits": hits}


def _scrape(url: str, timeout_s: float = 30.0) -> str:
    with urllib.request.urlopen(url + "/metrics", timeout=timeout_s) as resp:
        return resp.read().decode()


def run_fleet_side(
    trace: Sequence[PlannedRequest],
    scenario: Scenario,
    config: WorkerConfig,
    *,
    workers: int,
    affinity: bool = True,
    kill: Optional[str] = None,
    request_timeout_s: float = 30.0,
    pool_workers: int = 16,
) -> Dict[str, Any]:
    """Replay the trace against one fleet shape; returns its record.

    ``kill`` names the worker SIGKILLed at the halfway tick.  Per-
    request body digests come back in trace order so callers can prove
    byte identity across sides, position by position.
    """
    by_tick: Dict[int, List[Tuple[int, PlannedRequest]]] = {}
    for idx, req in enumerate(trace):
        by_tick.setdefault(req.tick, []).append((idx, req))
    kill_tick = scenario.ticks // 2 if kill else None

    results: List[Optional[Tuple[int, float, int, str]]] = [None] * len(trace)
    with WorkerFleet(
        workers=workers, config=config, affinity=affinity
    ) as fleet:
        url = fleet.url
        before = _fleet_cache_totals(_scrape(url))
        wall_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=pool_workers) as pool:
            for tick in range(scenario.ticks):
                if kill_tick is not None and tick == kill_tick:
                    fleet.kill(kill)
                batch = by_tick.get(tick, ())
                futures = [
                    (idx, pool.submit(_fire, url, req, request_timeout_s))
                    for idx, req in batch
                ]
                # tick barrier: drain before the fleet clock moves
                for idx, future in futures:
                    results[idx] = future.result()
                fleet.clock.advance(scenario.tick_s)
        wall_elapsed = time.perf_counter() - wall_start
        after = _fleet_cache_totals(_scrape(url))
        balancer_reg = fleet.balancer.registry
        rerouted = balancer_reg.total(
            "repro_balancer_requests_total", routing="rerouted"
        )
        retries = balancer_reg.total("repro_balancer_retries_total")
        alive = fleet.alive_workers

    outcomes = [r for r in results if r is not None]
    latencies = sorted(lat for _s, lat, _n, _d in outcomes)
    statuses: Dict[str, int] = {}
    for status, _lat, _n, _d in outcomes:
        key = str(status)
        statuses[key] = statuses.get(key, 0) + 1
    unexpected_5xx = sum(
        n for code, n in statuses.items()
        if code.startswith("5")
        and int(code) not in SHED_STATUSES
        and int(code) != TRANSPORT_ERROR_STATUS
    )
    # a killed worker's counters vanish from the final scrape; the
    # surviving workers' deltas still describe the fleet that finished
    lookups = max(0.0, after["lookups"] - before["lookups"])
    hits = max(0.0, after["hits"] - before["hits"])
    completed = len(outcomes)
    return {
        "workers": workers,
        "routing": "affinity" if affinity else "round_robin",
        "killed_worker": kill,
        "kill_tick": kill_tick,
        "requests": completed,
        "statuses": dict(sorted(statuses.items())),
        "unexpected_5xx": unexpected_5xx,
        "shed_responses": sum(
            statuses.get(str(code), 0) for code in SHED_STATUSES
        ),
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1000, 3),
            "p95": round(percentile(latencies, 0.95) * 1000, 3),
            "p99": round(percentile(latencies, 0.99) * 1000, 3),
            "mean": round(
                (sum(latencies) / len(latencies) * 1000)
                if latencies else 0.0,
                3,
            ),
        },
        "rps": {
            "offered_sim": round(len(trace) / scenario.duration_s, 3),
            "achieved_wall": round(
                completed / wall_elapsed if wall_elapsed > 0 else 0.0, 3
            ),
        },
        "fleet_cache": {
            "lookups": lookups,
            "hits": hits,
            "hit_rate": round(hits / lookups if lookups else 0.0, 4),
        },
        "balancer": {"rerouted": rerouted, "retries": retries},
        "workers_alive_at_end": alive,
        "wall_s": round(wall_elapsed, 3),
        "body_digests": [d for _s, _lat, _n, d in outcomes],
    }


def _strip_digests(record: Dict[str, Any]) -> Dict[str, Any]:
    """One combined digest instead of the per-request list (the BENCH
    file stays readable; identity was already checked element-wise)."""
    digests = record.pop("body_digests")
    record["body_digest"] = hashlib.sha256(
        "".join(digests).encode()
    ).hexdigest()
    return record


def transparency_check(
    trace: Sequence[PlannedRequest],
    scenario: Scenario,
    config: WorkerConfig,
    *,
    workers: int,
    prefix_ticks: int = 6,
) -> Dict[str, Any]:
    """Prove routing transparency: 1 worker vs N, byte for byte.

    Replays a prefix of the trace against cache-less fleets (see the
    module docstring for why the proof must run cache-off) and compares
    body digests position by position.  Cache-off requests pay full
    recompute cost every time, so a short prefix keeps the proof cheap
    while still covering every route family in the mix.
    """
    ticks = min(scenario.ticks, prefix_ticks)
    prefix = [req for req in trace if req.tick < ticks]
    pure_config = replace(
        config, use_server_cache=False, cache_max_entries=None
    )
    pure_scenario = replace(
        scenario, duration_s=ticks * scenario.tick_s
    )
    single = run_fleet_side(prefix, pure_scenario, pure_config, workers=1)
    fleet = run_fleet_side(
        prefix, pure_scenario, pure_config, workers=workers
    )
    mismatches = sum(
        1
        for a, b in zip(single["body_digests"], fleet["body_digests"])
        if a != b
    )
    return {
        "requests": len(prefix),
        "bodies_identical": (
            single["body_digests"] == fleet["body_digests"]
        ),
        "body_mismatches": mismatches,
        "single": _strip_digests(single),
        "fleet": _strip_digests(fleet),
    }


def scaleout_ab(
    *,
    smoke: bool = False,
    seed: int = 2025,
    workers: Optional[int] = None,
) -> Dict[str, Any]:
    """The BENCH file's ``scaleout`` section: the four-sided fleet A/B,
    the cache-off transparency proof, and the derived capacity/
    identity/availability verdicts."""
    n_workers = workers or (2 if smoke else 4)
    config = fleet_worker_config(seed=seed, smoke=smoke)
    scenario = fleet_scenario(
        seed=seed, users=config.workload_users, smoke=smoke
    )
    trace = build_fleet_trace(scenario, config)

    baseline = run_fleet_side(trace, scenario, config, workers=1)
    affinity = run_fleet_side(trace, scenario, config, workers=n_workers)
    control = run_fleet_side(
        trace, scenario, config, workers=n_workers, affinity=False
    )
    killed = run_fleet_side(
        trace, scenario, config, workers=n_workers, kill="w0"
    )
    transparency = transparency_check(
        trace, scenario, config, workers=n_workers
    )

    speedup = 0.0
    if baseline["rps"]["achieved_wall"] > 0:
        speedup = (
            affinity["rps"]["achieved_wall"]
            / baseline["rps"]["achieved_wall"]
        )
    return {
        "smoke": bool(smoke),
        "seed": seed,
        "workers": n_workers,
        # achieved_wall only compares against runs from the same
        # environment — diff tooling checks this block before judging
        "environment": {**bench_environment(), "workers": n_workers},
        "cache_max_entries": config.cache_max_entries,
        "trace": {"digest": trace_digest(trace), **trace_summary(trace)},
        "baseline": _strip_digests(baseline),
        "affinity": _strip_digests(affinity),
        "round_robin": _strip_digests(control),
        "affinity_kill": _strip_digests(killed),
        "transparency": transparency,
        "speedup_wall": round(speedup, 3),
        "p95_improved": (
            affinity["latency_ms"]["p95"] <= baseline["latency_ms"]["p95"]
        ),
        "bodies_identical": transparency["bodies_identical"],
        "body_mismatches": transparency["body_mismatches"],
        "hit_rate_advantage": round(
            affinity["fleet_cache"]["hit_rate"]
            - control["fleet_cache"]["hit_rate"],
            4,
        ),
        "kill_zero_unexpected_5xx": killed["unexpected_5xx"] == 0,
        "kill_rerouted": killed["balancer"]["rerouted"] > 0,
    }
