"""``python -m repro`` — stand up a demo dashboard server.

Builds a populated simulated cluster, wires the full dashboard, and
serves it over HTTP.  Authentication is header-based, as behind Open
OnDemand's proxy:

    curl -H 'X-Remote-User: alice' http://127.0.0.1:8080/api/v1/my_jobs
    curl -H 'X-Remote-User: alice' http://127.0.0.1:8080/        # HTML
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import Viewer, build_demo_dashboard
from repro.web import DashboardServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--hours", type=float, default=12.0,
        help="hours of simulated cluster history to generate",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="start, print status, and exit (for smoke tests)",
    )
    args = parser.parse_args(argv)

    print(f"Building demo cluster (seed={args.seed}, {args.hours:g} h history)…")
    dash, directory, result = build_demo_dashboard(
        seed=args.seed, duration_hours=args.hours
    )
    users = [u.username for u in directory.users()]
    print(f"  {result.submitted} jobs, users: {', '.join(users[:6])}…")

    server = DashboardServer(dash, host=args.host, port=args.port).start()
    print(f"Serving at {server.url}/")
    print(f"Try: curl -H 'X-Remote-User: {users[0]}' {server.url}/api/v1/my_jobs")
    if args.once:
        # prove it answers, then shut down
        render = dash.render_homepage(Viewer(username=users[0]))
        print(f"homepage ok={render.ok} ({len(render.html):,} bytes)")
        server.stop()
        return 0
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        print("\nshutting down")
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
