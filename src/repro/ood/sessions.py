"""Open OnDemand interactive sessions (batch-connect).

A session = one interactive-app launch = one Slurm job with
:class:`~repro.slurm.model.InteractiveSessionInfo` provenance.  The Job
Overview session tab (§7) shows the app name (with a relaunch link), the
session id, a link to the session's working directory in the files app,
and the connect controls once the job is running — all of which come from
here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.slurm.cluster import SlurmCluster
from repro.slurm.model import InteractiveSessionInfo, Job, JobSpec, JobState, TRES

from .apps import AppRegistry


@dataclass
class Session:
    """One interactive-app session and its backing job."""

    session_id: str
    app_key: str
    user: str
    job_id: int

    def working_dir(self) -> str:
        """The session's batch-connect working directory."""
        return (
            f"/home/{self.user}/ondemand/data/sys/dashboard/batch_connect/"
            f"{self.session_id}"
        )


class SessionManager:
    """Launches and tracks interactive sessions against a cluster."""

    def __init__(self, cluster: SlurmCluster, registry: Optional[AppRegistry] = None):
        self.cluster = cluster
        self.registry = registry or AppRegistry()
        self._sessions: Dict[str, Session] = {}
        self._counter = 0

    # -- launching ---------------------------------------------------------

    def launch(
        self,
        app_key: str,
        user: str,
        account: str,
        form_values: Optional[Dict[str, object]] = None,
        actual_active_fraction: float = 0.25,
        actual_cpu_utilization: float = 0.10,
    ) -> Session:
        """Validate the form, submit the backing Slurm job, register the
        session.  The ``actual_*`` parameters are simulation ground truth:
        how much of the requested session the user will really use (paper
        §4.3 calls out that this is typically small)."""
        app = self.registry.get(app_key)
        values = app.validate_form(form_values or {})
        self._counter += 1
        session_id = f"{app_key}-{self._counter:06d}"
        cpus = int(values["cpus"])
        hours = float(values["hours"])
        info = InteractiveSessionInfo(
            app_name=app_key,
            session_id=session_id,
            working_dir=f"/home/{user}/ondemand/data/sys/dashboard/batch_connect/{session_id}",
        )
        spec = JobSpec(
            name=f"sys/dashboard/{app_key}",
            user=user,
            account=account,
            partition=str(values["partition"]),
            req=TRES(
                cpus=cpus,
                mem_mb=int(float(values["memory_gb"]) * 1024),
                nodes=1,
            ),
            time_limit=hours * 3600.0,
            actual_runtime=max(60.0, hours * 3600.0 * actual_active_fraction),
            actual_cpu_utilization=actual_cpu_utilization,
            interactive=info,
            work_dir=info.working_dir,
            std_out=f"{info.working_dir}/output.log",
            std_err=f"{info.working_dir}/error.log",
        )
        job = self.cluster.submit(spec)[0]
        session = Session(
            session_id=session_id, app_key=app_key, user=user, job_id=job.job_id
        )
        self._sessions[session_id] = session
        return session

    # -- queries -----------------------------------------------------------

    def get(self, session_id: str) -> Session:
        """Look up a session by id (KeyError if unknown)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"unknown session {session_id!r}") from None

    def sessions_for(self, user: str) -> List[Session]:
        """All sessions launched by ``user``."""
        return [s for s in self._sessions.values() if s.user == user]

    def session_for_job(self, job: Job) -> Optional[Session]:
        """Resolve a job back to its session, whether it was launched via
        this manager or arrived pre-tagged from the workload generator."""
        for s in self._sessions.values():
            if s.job_id == job.job_id:
                return s
        if job.spec.interactive is not None:
            info = job.spec.interactive
            return Session(
                session_id=info.session_id,
                app_key=info.app_name,
                user=job.user,
                job_id=job.job_id,
            )
        return None

    def connect_url(self, session: Session) -> Optional[str]:
        """The 'Connect' button target — only once the job is running."""
        job = self._job_of(session)
        if job is None or job.state is not JobState.RUNNING:
            return None
        node = job.nodes[0] if job.nodes else "unknown"
        return f"https://ondemand.example.edu/node/{node}/{session.session_id}/"

    def card_state(self, session: Session) -> str:
        """The state label on a session card: Queued / Starting / Running /
        Completed, as OOD's My Interactive Sessions page shows."""
        job = self._job_of(session)
        if job is None:
            return "Completed"
        if job.state is JobState.PENDING:
            return "Queued"
        if job.state is JobState.RUNNING:
            return "Running"
        return "Completed"

    def _job_of(self, session: Session) -> Optional[Job]:
        try:
            return self.cluster.scheduler.job(session.job_id)
        except KeyError:
            return self.cluster.accounting.get(session.job_id)
