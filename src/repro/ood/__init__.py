"""Open OnDemand framework substrate: apps, sessions, files, job logs."""

from .apps import AppRegistry, BUILTIN_APPS, FormField, InteractiveApp
from .files import LOG_TAIL_LINES, LogStore, files_app_url
from .sessions import Session, SessionManager

__all__ = [
    "AppRegistry",
    "BUILTIN_APPS",
    "FormField",
    "InteractiveApp",
    "LOG_TAIL_LINES",
    "LogStore",
    "files_app_url",
    "Session",
    "SessionManager",
]
