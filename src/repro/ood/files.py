"""Files-app URL helpers and the simulated job-log filesystem.

The paper's Job Overview output/error tabs (§7) read the job's log files
from the shared filesystem (inheriting POSIX permissions), show the most
recent 1000 lines with line numbers, and link to the full file in the
Open OnDemand files app.  We simulate the filesystem with a deterministic
log generator: a job's logs are reproducible from its id, long enough to
exercise the tail-1000 path for long-running jobs.
"""

from __future__ import annotations

from typing import List

from repro.slurm.model import Job, JobState

#: the paper's display cap: "the interface will only show the most recent
#: 1000 lines in the log files so the file loads quickly" (§7)
LOG_TAIL_LINES = 1000


def files_app_url(path: str) -> str:
    """Link into the built-in OOD files app for a filesystem path (§3.5)."""
    if not path.startswith("/"):
        raise ValueError(f"files app links require absolute paths: {path!r}")
    return f"/pun/sys/dashboard/files/fs{path}"


class LogStore:
    """Deterministic synthetic job logs, one writer per (job, stream).

    Log volume scales with how long the job ran, so long jobs exceed the
    1000-line display cap and short jobs do not — letting tests and
    benches exercise both sides of the paper's tail behaviour.
    """

    #: one log line roughly every this many seconds of runtime
    SECONDS_PER_LINE = 2.0

    def __init__(self, max_lines: int = 2_000_000):
        self.max_lines = max_lines
        self.reads = 0  # instrumentation

    # -- paths -------------------------------------------------------------

    @staticmethod
    def stdout_path(job: Job) -> str:
        """Filesystem path of the job's stdout log."""
        return job.spec.std_out or f"/home/{job.user}/slurm-{job.job_id}.out"

    @staticmethod
    def stderr_path(job: Job) -> str:
        """Filesystem path of the job's stderr log."""
        return job.spec.std_err or f"/home/{job.user}/slurm-{job.job_id}.err"

    # -- content -----------------------------------------------------------

    def line_count(self, job: Job, stream: str, now: float) -> int:
        """How many lines the stream holds at ``now``."""
        elapsed = job.elapsed(now)
        if elapsed <= 0:
            return 0
        if stream == "out":
            n = int(elapsed / self.SECONDS_PER_LINE) + 3
        elif stream == "err":
            # stderr is sparse unless the job failed
            n = int(elapsed / (self.SECONDS_PER_LINE * 40)) + 1
            if job.state in (JobState.FAILED, JobState.OUT_OF_MEMORY):
                n += 25
        else:
            raise ValueError(f"unknown stream {stream!r} (want 'out' or 'err')")
        return min(n, self.max_lines)

    def read_lines(
        self,
        job: Job,
        stream: str,
        now: float,
        offset: int = 0,
        limit: int | None = None,
    ) -> List[str]:
        """Read log lines [offset, offset+limit).  Generation is O(limit),
        not O(file) — the property the paper's 1000-line tail relies on."""
        self.reads += 1
        total = self.line_count(job, stream, now)
        if offset < 0:
            raise ValueError("offset cannot be negative")
        end = total if limit is None else min(total, offset + limit)
        return [
            self._line(job, stream, i, total) for i in range(offset, end)
        ]

    def tail(
        self, job: Job, stream: str, now: float, lines: int = LOG_TAIL_LINES
    ) -> tuple[List[str], int, int]:
        """The Job Overview read: last ``lines`` lines.

        Returns ``(lines, first_line_number, total_lines)`` where line
        numbers are 1-based — the page shows them in the left gutter (§7).
        """
        total = self.line_count(job, stream, now)
        offset = max(0, total - lines)
        return self.read_lines(job, stream, now, offset=offset), offset + 1, total

    def _line(self, job: Job, stream: str, i: int, total: int) -> str:
        if stream == "out":
            if i == 0:
                return f"=== job {job.job_id} ({job.name}) starting on {','.join(job.nodes) or 'n/a'} ==="
            if i == total - 1 and job.state.is_terminal:
                return f"=== job {job.job_id} finished: {job.state.value} ==="
            return f"[step {i:06d}] progress ok (job {job.job_id})"
        if job.state is JobState.OUT_OF_MEMORY and i >= max(0, total - 3):
            return f"slurmstepd: error: Detected 1 oom-kill event(s) in StepId={job.job_id}.batch"
        if job.state is JobState.FAILED and i >= max(0, total - 25):
            return f"Traceback frame {total - i} (job {job.job_id})"
        return f"[warn {i:04d}] transient condition (job {job.job_id})"
