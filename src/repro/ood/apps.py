"""Open OnDemand interactive-app registry.

Open OnDemand's signature feature (paper §2.1) is interactive apps:
Jupyter, RStudio, MATLAB, VS Code launched from a web form as Slurm jobs.
The dashboard's Job Overview session tab (§7) links back to these apps,
so the substrate models the registry, each app's submit form, and how a
form submission turns into a Slurm :class:`~repro.slurm.model.JobSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class FormField:
    """One field of an interactive app's launch form."""

    name: str
    label: str
    kind: str = "number"  # number | select | text
    default: object = None
    choices: tuple = ()

    def validate(self, value: object) -> object:
        """Validate one submitted value against the field's kind."""
        if self.kind == "number":
            try:
                num = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ValueError(f"{self.name}: expected a number, got {value!r}")
            if num <= 0:
                raise ValueError(f"{self.name}: must be positive")
            return num
        if self.kind == "select":
            if value not in self.choices:
                raise ValueError(
                    f"{self.name}: {value!r} not one of {self.choices}"
                )
            return value
        return str(value)


@dataclass(frozen=True)
class InteractiveApp:
    """A launchable interactive application."""

    key: str  # "jupyter"
    title: str  # "Jupyter Notebook"
    category: str = "Interactive Apps"
    description: str = ""
    form: tuple = ()
    #: path of the OOD form, used by the session tab's relaunch link
    form_url: str = ""

    def validate_form(self, values: Dict[str, object]) -> Dict[str, object]:
        """Validate submitted values against the form; fill defaults."""
        out: Dict[str, object] = {}
        for fld in self.form:
            if fld.name in values:
                out[fld.name] = fld.validate(values[fld.name])
            elif fld.default is not None:
                out[fld.name] = fld.default
            else:
                raise ValueError(f"missing required field {fld.name!r}")
        unknown = set(values) - {f.name for f in self.form}
        if unknown:
            raise ValueError(f"unknown form fields: {sorted(unknown)}")
        return out


def _standard_form(max_hours: int = 12) -> tuple:
    return (
        FormField(name="cpus", label="Number of CPUs", kind="number", default=1),
        FormField(name="memory_gb", label="Memory (GB)", kind="number", default=4),
        FormField(name="hours", label="Wall time (hours)", kind="number", default=1),
        FormField(
            name="partition",
            label="Partition",
            kind="select",
            default="cpu",
            choices=("cpu", "gpu"),
        ),
    )


BUILTIN_APPS: Dict[str, InteractiveApp] = {
    "jupyter": InteractiveApp(
        key="jupyter",
        title="Jupyter Notebook",
        description="Launch JupyterLab on a compute node.",
        form=_standard_form(),
        form_url="/pun/sys/dashboard/batch_connect/sys/jupyter/session_contexts/new",
    ),
    "rstudio": InteractiveApp(
        key="rstudio",
        title="RStudio Server",
        description="Launch RStudio Server on a compute node.",
        form=_standard_form(),
        form_url="/pun/sys/dashboard/batch_connect/sys/rstudio/session_contexts/new",
    ),
    "matlab": InteractiveApp(
        key="matlab",
        title="MATLAB",
        description="Launch MATLAB with a virtual desktop.",
        form=_standard_form(),
        form_url="/pun/sys/dashboard/batch_connect/sys/matlab/session_contexts/new",
    ),
    "vscode": InteractiveApp(
        key="vscode",
        title="VS Code Server",
        description="Launch code-server on a compute node.",
        form=_standard_form(),
        form_url="/pun/sys/dashboard/batch_connect/sys/vscode/session_contexts/new",
    ),
}


class AppRegistry:
    """Registry of interactive apps available on this OOD install."""

    def __init__(self, apps: Optional[Dict[str, InteractiveApp]] = None):
        self._apps = dict(BUILTIN_APPS if apps is None else apps)

    def get(self, key: str) -> InteractiveApp:
        """Look up an app by key (KeyError if unknown)."""
        try:
            return self._apps[key]
        except KeyError:
            raise KeyError(f"unknown interactive app {key!r}") from None

    def register(self, app: InteractiveApp) -> None:
        """Add a custom app (ValueError on duplicate keys)."""
        if app.key in self._apps:
            raise ValueError(f"app {app.key!r} already registered")
        self._apps[app.key] = app

    def all_apps(self) -> List[InteractiveApp]:
        """All registered apps, sorted by display title."""
        return sorted(self._apps.values(), key=lambda a: a.title)

    def __contains__(self, key: str) -> bool:
        return key in self._apps
