"""Storage quota substrate (stand-in for the ZFS/GPFS storage database)."""

from .quota import (
    GB,
    TB,
    DirectoryQuota,
    FilesystemKind,
    QuotaDatabase,
    format_bytes,
    provision_standard_layout,
    randomize_usage,
)

__all__ = [
    "GB",
    "TB",
    "DirectoryQuota",
    "FilesystemKind",
    "QuotaDatabase",
    "format_bytes",
    "provision_standard_layout",
    "randomize_usage",
]
