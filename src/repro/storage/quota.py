"""ZFS/GPFS-like storage quota database (Storage widget's data source).

Paper Table 1 lists the Storage widget's source as the "ZFS and GPFS
storage database": every user has a home directory (ZFS) and a scratch
directory (GPFS), plus project directories shared by their
allocations/groups (§3.5).  Quotas track both bytes and file counts, and
the widget shows each with a color-coded progress bar.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.sim.rng import RandomStreams


class FilesystemKind(enum.Enum):
    """Backing filesystem technology (display-only, like the real portal)."""

    ZFS = "ZFS"
    GPFS = "GPFS"


@dataclass
class DirectoryQuota:
    """One quota-managed directory."""

    path: str
    owner: str  # username or account name
    kind: FilesystemKind
    label: str  # "Home", "Scratch", "Project"
    quota_bytes: int
    quota_files: int
    used_bytes: int = 0
    used_files: int = 0

    def __post_init__(self) -> None:
        if self.quota_bytes <= 0 or self.quota_files <= 0:
            raise ValueError(f"{self.path}: quotas must be positive")
        self._check_usage()

    def _check_usage(self) -> None:
        if self.used_bytes < 0 or self.used_files < 0:
            raise ValueError(f"{self.path}: usage cannot be negative")

    @property
    def bytes_fraction(self) -> float:
        return self.used_bytes / self.quota_bytes

    @property
    def files_fraction(self) -> float:
        return self.used_files / self.quota_files

    def set_usage(self, used_bytes: int, used_files: int) -> None:
        """Replace the directory's usage counters."""
        self.used_bytes = used_bytes
        self.used_files = used_files
        self._check_usage()

    def add_usage(self, delta_bytes: int, delta_files: int) -> None:
        """Apply a usage delta (the result must stay non-negative)."""
        self.used_bytes += delta_bytes
        self.used_files += delta_files
        self._check_usage()


class QuotaDatabase:
    """All quota-managed directories on the cluster, queryable by owner."""

    def __init__(self) -> None:
        self._dirs: Dict[str, DirectoryQuota] = {}
        self.query_count = 0  # instrumentation for cache benches

    def add(self, entry: DirectoryQuota) -> DirectoryQuota:
        """Register a directory (duplicate paths rejected)."""
        if entry.path in self._dirs:
            raise ValueError(f"duplicate directory {entry.path!r}")
        self._dirs[entry.path] = entry
        return entry

    def get(self, path: str) -> DirectoryQuota:
        """Look up a directory by path (KeyError if unknown)."""
        try:
            return self._dirs[path]
        except KeyError:
            raise KeyError(f"no quota entry for {path!r}") from None

    def all_directories(self) -> List[DirectoryQuota]:
        """Every quota-managed directory."""
        return list(self._dirs.values())

    def directories_for(self, owners: List[str]) -> List[DirectoryQuota]:
        """The privacy-scoped lookup the Storage widget performs: only
        directories owned by the user or one of their accounts (§2.4)."""
        self.query_count += 1
        owner_set = set(owners)
        out = [d for d in self._dirs.values() if d.owner in owner_set]
        out.sort(key=lambda d: (_label_rank(d.label), d.path))
        return out


def _label_rank(label: str) -> int:
    order = {"Home": 0, "Scratch": 1, "Project": 2}
    return order.get(label, 99)


# -- provisioning -----------------------------------------------------------

GB = 1024**3
TB = 1024**4


def provision_standard_layout(
    db: QuotaDatabase,
    usernames: List[str],
    accounts: List[str],
    cluster_name: str = "anvil",
    home_quota_bytes: int = 25 * GB,
    home_quota_files: int = 400_000,
    scratch_quota_bytes: int = 100 * TB,
    scratch_quota_files: int = 2_000_000,
    project_quota_bytes: int = 5 * TB,
    project_quota_files: int = 5_000_000,
) -> None:
    """Create the standard RCAC-style directory layout:
    ``/home/<user>`` (ZFS), ``/scratch/<cluster>/<user>`` (GPFS) and
    ``/depot/<account>`` (GPFS project space)."""
    for user in usernames:
        db.add(
            DirectoryQuota(
                path=f"/home/{user}",
                owner=user,
                kind=FilesystemKind.ZFS,
                label="Home",
                quota_bytes=home_quota_bytes,
                quota_files=home_quota_files,
            )
        )
        db.add(
            DirectoryQuota(
                path=f"/scratch/{cluster_name}/{user}",
                owner=user,
                kind=FilesystemKind.GPFS,
                label="Scratch",
                quota_bytes=scratch_quota_bytes,
                quota_files=scratch_quota_files,
            )
        )
    for account in accounts:
        db.add(
            DirectoryQuota(
                path=f"/depot/{account}",
                owner=account,
                kind=FilesystemKind.GPFS,
                label="Project",
                quota_bytes=project_quota_bytes,
                quota_files=project_quota_files,
            )
        )


def randomize_usage(db: QuotaDatabase, seed: int = 0) -> None:
    """Fill directories with plausible usage levels, including a few over
    the 70 % and 90 % color thresholds so the widget shows all colors."""
    gen = RandomStreams(seed).stream("storage-usage")
    for i, entry in enumerate(db.all_directories()):
        frac_bytes = float(gen.beta(1.6, 2.8))
        # force some entries into the warning/critical bands
        if i % 7 == 0:
            frac_bytes = float(gen.uniform(0.71, 0.89))
        elif i % 11 == 0:
            frac_bytes = float(gen.uniform(0.91, 0.99))
        frac_files = float(gen.beta(1.4, 4.0))
        entry.set_usage(
            used_bytes=int(entry.quota_bytes * frac_bytes),
            used_files=int(entry.quota_files * frac_files),
        )


def format_bytes(n: int) -> str:
    """Human-readable bytes, dashboard-style (1.5 TB, 320 GB, 12 MB)."""
    if n < 0:
        raise ValueError("byte count cannot be negative")
    units = ["B", "KB", "MB", "GB", "TB", "PB"]
    value = float(n)
    for unit in units:
        if value < 1024 or unit == units[-1]:
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}".replace(".0 ", " ")
        value /= 1024
    raise AssertionError("unreachable")
