"""repro — reproduction of "A Modular, Responsive, and Accessible HPC
Dashboard Built upon Open OnDemand" (Tan & Jin, SC Workshops '25).

Public API quick reference
--------------------------

>>> from repro import build_demo_dashboard, Viewer
>>> dash, directory, _ = build_demo_dashboard(duration_hours=2.0)
>>> viewer = Viewer(username=directory.users()[0].username)
>>> resp = dash.call("recent_jobs", viewer)
>>> resp.ok
True

Packages:

* :mod:`repro.core` — the dashboard (widgets, pages, caching, routes);
* :mod:`repro.slurm` — the Slurm simulator substrate;
* :mod:`repro.ood` — Open OnDemand apps/sessions/files substrate;
* :mod:`repro.storage`, :mod:`repro.news` — quota DB and news API;
* :mod:`repro.auth` — users, allocations, privacy policy;
* :mod:`repro.web` — JSON API server + browser-style client;
* :mod:`repro.sim` — deterministic clock/event/RNG kernel.
"""

from .auth import Directory, PermissionDenied, PermissionPolicy, Viewer
from .core import (
    CachePolicy,
    ClientCache,
    Dashboard,
    DashboardContext,
    RouteRegistry,
    TTLCache,
    build_demo_dashboard,
)
from .slurm import JobSpec, JobState, SlurmCluster, TRES, small_test_cluster
from .slurm.workload import WorkloadConfig, populated_cluster

__version__ = "1.0.0"

__all__ = [
    "Directory",
    "PermissionDenied",
    "PermissionPolicy",
    "Viewer",
    "CachePolicy",
    "ClientCache",
    "Dashboard",
    "DashboardContext",
    "RouteRegistry",
    "TTLCache",
    "build_demo_dashboard",
    "JobSpec",
    "JobState",
    "SlurmCluster",
    "TRES",
    "small_test_cluster",
    "WorkloadConfig",
    "populated_cluster",
    "__version__",
]
