"""Request tracing: route → cache → daemon spans on the sim clock.

Every dashboard request crosses three layers — the route handler, the
TTL cache / resilient fetch path, and (on a miss) the simulated Slurm
daemons.  :class:`Tracer` records that crossing as a tree of
:class:`Span` objects so ``/api/v1/traces/recent`` can show *where* a
request spent its time.

Two clocks appear in a span, on purpose:

* ``t_sim`` / ``sim_elapsed_s`` — the :class:`~repro.sim.clock.SimClock`
  timestamps, which carry the *simulated* daemon latencies the paper's
  load model prices;
* ``wall_ms`` — real ``time.perf_counter`` time, which is what the
  slow-request log thresholds against (the only wall time the
  reproduction ever reports).

Spans nest through a thread-local stack, so concurrent HTTP handler
threads each build their own tree; finished root spans land in a
bounded ring buffer under the tracer's lock.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.sim.clock import SimClock

logger = logging.getLogger("repro.obs.slowlog")


@dataclass
class Span:
    """One timed operation inside a request trace."""

    name: str  # "route:my_jobs", "cache:squeue", "daemon:slurmctld"
    kind: str  # "route" | "cache" | "daemon" | ...
    t_sim: float  # sim-clock timestamp at start
    wall_ms: float = 0.0  # real elapsed time, milliseconds
    sim_elapsed_s: float = 0.0  # sim-clock time that passed inside the span
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON shape served by ``/api/v1/traces/recent``."""
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "t_sim": round(self.t_sim, 6),
            "wall_ms": round(self.wall_ms, 3),
        }
        if self.sim_elapsed_s:
            out["sim_elapsed_s"] = round(self.sim_elapsed_s, 6)
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Builds span trees per thread and keeps the last N root traces.

    Parameters
    ----------
    clock:
        The simulation clock spans stamp their ``t_sim`` from.
    max_traces:
        Ring-buffer size for finished root spans.
    slow_threshold_ms:
        Root spans slower than this (wall time) are copied into
        :attr:`slow_requests` and logged via ``repro.obs.slowlog``.
    """

    def __init__(self, clock: SimClock, max_traces: int = 100,
                 slow_threshold_ms: float = 250.0):
        self.clock = clock
        self.slow_threshold_ms = slow_threshold_ms
        self._lock = threading.Lock()
        self._traces: Deque[Span] = deque(maxlen=max_traces)
        self._slow: Deque[Span] = deque(maxlen=max_traces)
        self._local = threading.local()
        self.enabled = True

    # -- span construction ---------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, kind: str = "span",
             attrs: Optional[Dict[str, Any]] = None) -> Iterator[Span]:
        """Open a span; nested calls on the same thread become children.

        When the outermost span closes, the finished tree is published
        to :meth:`recent` (and, if slow, to :attr:`slow_requests`).
        """
        if not self.enabled:
            yield Span(name=name, kind=kind, t_sim=self.clock.now())
            return
        span = Span(
            name=name, kind=kind, t_sim=self.clock.now(),
            attrs=dict(attrs) if attrs else {},
        )
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        wall_start = time.perf_counter()
        try:
            yield span
        finally:
            span.wall_ms = (time.perf_counter() - wall_start) * 1000.0
            span.sim_elapsed_s = self.clock.now() - span.t_sim
            stack.pop()
            if not stack:
                self._publish(span)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def attach(self, parent: Optional[Span]) -> Iterator[None]:
        """Adopt ``parent`` as this thread's innermost open span.

        Cross-thread propagation for scatter-gather fan-out: the
        request thread captures :meth:`current` and each worker runs its
        share inside ``attach(parent)``, so widget route spans land as
        children of the request's page span instead of becoming
        disconnected roots.  Appending to ``parent.children`` from
        worker threads is safe (list.append is atomic) and the worker
        never publishes — its stack is non-empty while attached, and the
        parent publishes on its own thread after the fan-out joins.
        """
        if not self.enabled or parent is None:
            yield
            return
        stack = self._stack()
        stack.append(parent)
        try:
            yield
        finally:
            stack.pop()

    def _publish(self, root: Span) -> None:
        with self._lock:
            self._traces.append(root)
            if root.wall_ms >= self.slow_threshold_ms:
                self._slow.append(root)
                logger.warning(
                    "slow request: %s took %.1f ms (threshold %.1f ms)",
                    root.name, root.wall_ms, self.slow_threshold_ms,
                )

    # -- reading -------------------------------------------------------------

    def recent(self, limit: Optional[int] = None) -> List[Span]:
        """The most recent finished traces, newest last.

        ``limit=0`` means zero traces — guarded explicitly because the
        naive ``traces[-0:]`` slice would return *everything*.
        """
        with self._lock:
            traces = list(self._traces)
        if limit is not None and limit >= 0:
            traces = traces[-limit:] if limit > 0 else []
        return traces

    @property
    def slow_requests(self) -> List[Span]:
        """Root spans that crossed :attr:`slow_threshold_ms`."""
        with self._lock:
            return list(self._slow)

    def clear(self) -> None:
        """Drop all recorded traces (not any open spans)."""
        with self._lock:
            self._traces.clear()
            self._slow.clear()


class _NullTracer:
    """A tracer that records nothing — the default wired into layers
    that may run without an observability context (bare TTLCache or
    ResilientFetcher in unit tests)."""

    enabled = False

    @contextmanager
    def span(self, name: str, kind: str = "span",
             attrs: Optional[Dict[str, Any]] = None) -> Iterator[Span]:
        yield Span(name=name, kind=kind, t_sim=0.0)

    def current(self) -> Optional[Span]:
        return None

    @contextmanager
    def attach(self, parent: Optional[Span]) -> Iterator[None]:
        yield

    def recent(self, limit: Optional[int] = None) -> List[Span]:
        return []

    @property
    def slow_requests(self) -> List[Span]:
        return []


#: shared no-op tracer instance
NULL_TRACER = _NullTracer()
