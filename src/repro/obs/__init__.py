"""Observability: metrics registry, request tracing, slow-request log.

The paper's performance story (§2.4, §3.2) rests on the dual-layer
cache shielding ``slurmctld`` — this package makes that shield
*measurable*.  Every layer of the reproduction reports into one
:class:`~repro.obs.metrics.MetricsRegistry`:

* the daemon bus prices and counts each simulated RPC;
* the TTL cache counts hits/misses/expirations/stale-serves per source;
* the resilient fetch path counts retries and breaker transitions;
* the route registry times every component route into fixed-bucket
  latency histograms;
* the HTTP server labels traffic by endpoint kind.

The registry renders as Prometheus text on ``/metrics``; the paired
:class:`~repro.obs.tracing.Tracer` exposes the last N request traces
(route → cache → daemon span trees) on ``/api/v1/traces/recent``.
``tools/obs_report.py`` turns a scraped payload into a text summary.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.clock import SimClock

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    parse_prometheus_text,
    quantile_from_buckets,
    samples_by_name,
)
from .tracing import NULL_TRACER, Span, Tracer

#: the three circuit-breaker states reported as a one-hot gauge
BREAKER_STATES = ("closed", "half_open", "open")


class Observability:
    """One registry + tracer pair shared by every layer of a dashboard.

    Owns the request-level metric families (routes, HTTP) and the
    scrape-time gauges; substrate layers (cache, fetcher, daemons)
    declare their own families against :attr:`registry`.
    """

    def __init__(self, clock: SimClock, max_traces: int = 100,
                 slow_request_ms: float = 250.0,
                 registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        self.tracer = Tracer(
            clock, max_traces=max_traces, slow_threshold_ms=slow_request_ms
        )
        r = self.registry
        self.route_requests = r.counter(
            "repro_route_requests_total",
            "Route invocations by route name and response status.",
            ("route", "status"),
        )
        self.route_errors = r.counter(
            "repro_route_errors_total",
            "Route invocations that returned an error envelope.",
            ("route",),
        )
        self.route_latency = r.histogram(
            "repro_route_latency_seconds",
            "Wall-clock route handler latency.",
            ("route",),
        )
        self.http_requests = r.counter(
            "repro_http_requests_total",
            "HTTP requests by endpoint kind and status code.",
            ("kind", "status"),
        )
        # HTTP delivery layer: pre-seeded so the families render on
        # /metrics before the first conditional GET or gzip response
        self.http_not_modified = r.counter(
            "repro_http_not_modified_total",
            "Conditional GETs answered 304 from the validator index, "
            "by endpoint kind.",
            ("kind",),
        )
        self.http_not_modified.inc(0.0, kind="api")
        self.http_bytes_saved = r.counter(
            "repro_http_bytes_saved_total",
            "Response-body bytes kept off the wire, by reason.",
            ("reason",),
        )
        for reason in ("not_modified", "gzip"):
            self.http_bytes_saved.inc(0.0, reason=reason)
        self.breaker_state = r.gauge(
            "repro_breaker_state",
            "Circuit breaker state, one-hot per service (1 = current state).",
            ("service", "state"),
        )
        self.cache_entries = r.gauge(
            "repro_cache_entries",
            "Live entries in the server-side TTL cache.",
        )
        self.daemon_recent_rate = r.gauge(
            "repro_daemon_recent_rate_rps",
            "Recent request rate seen by each simulated daemon.",
            ("daemon",),
        )
        self.daemon_mean_latency = r.gauge(
            "repro_daemon_mean_latency_seconds",
            "Mean simulated RPC latency per daemon.",
            ("daemon",),
        )

    # -- request-path recording ---------------------------------------------

    def record_route(self, name: str, status: int, elapsed_ms: float,
                     ok: bool) -> None:
        """Count one route invocation and observe its latency."""
        self.route_requests.inc(route=name, status=str(status))
        self.route_latency.observe(elapsed_ms / 1000.0, route=name)
        if not ok:
            self.route_errors.inc(route=name)

    def record_http(self, kind: str, status: int) -> None:
        """Count one HTTP request by endpoint kind."""
        self.http_requests.inc(kind=kind, status=str(status))

    def record_not_modified(self, kind: str, bytes_saved: int) -> None:
        """Count one validated conditional GET (a 304 that skipped both
        the render and the body bytes it would have sent)."""
        self.http_not_modified.inc(kind=kind)
        if bytes_saved > 0:
            self.http_bytes_saved.inc(float(bytes_saved), reason="not_modified")

    def record_bytes_saved(self, reason: str, bytes_saved: int) -> None:
        """Count body bytes kept off the wire (e.g. by gzip)."""
        if bytes_saved > 0:
            self.http_bytes_saved.inc(float(bytes_saved), reason=reason)

    # -- scrape-time gauges ---------------------------------------------------

    def set_breaker_states(self, states: Dict[str, str]) -> None:
        """Mirror ``ResilientFetcher.breaker_states()`` into the one-hot
        gauge — the single code path both ``/healthz`` and ``/metrics``
        report from, so the two can never disagree."""
        for service, current in states.items():
            for state in BREAKER_STATES:
                self.breaker_state.set(
                    1.0 if state == current else 0.0,
                    service=service, state=state,
                )


__all__ = [
    "BREAKER_STATES",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Observability",
    "Sample",
    "Span",
    "Tracer",
    "parse_prometheus_text",
    "quantile_from_buckets",
    "samples_by_name",
]
