"""Metrics primitives: counters, gauges, histograms, and a registry.

The production dashboard's caching tier (§2.4) exists to protect
``slurmctld`` from query load, but protection you cannot measure is
protection you cannot tune.  This module is the measurement substrate:
a small, thread-safe reimplementation of the Prometheus client data
model — labeled counter/gauge/histogram families collected in one
:class:`MetricsRegistry` — rendered in the text exposition format any
Prometheus-compatible scraper understands.

Design notes
------------
* One lock per registry guards every series mutation; increments are a
  dict update under the lock, cheap enough for the request path.
* Histograms use **fixed buckets** chosen for request latencies
  (:data:`DEFAULT_LATENCY_BUCKETS`); cumulative bucket counts follow the
  Prometheus convention (each bucket counts observations ``<= le``).
* :func:`parse_prometheus_text` is the inverse of
  :meth:`MetricsRegistry.render` — used by ``tools/obs_report.py`` and
  the CI smoke test to audit a scraped payload.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Latency buckets (seconds) for request/RPC histograms: sub-millisecond
#: cache hits up through the 10 s pathological tail, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[str, ...]


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format spec."""
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus clients do."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_suffix(names: Sequence[str], values: LabelValues) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


class _MetricFamily:
    """Shared plumbing for one named family of labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.Lock):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock

    def _key(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def _header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_MetricFamily):
    """A monotonically increasing labeled counter family."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.Lock):
        super().__init__(name, help, labelnames, lock)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the series for ``labels``."""
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one series (0 if never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self, **label_filter: str) -> float:
        """Sum across series whose labels match ``label_filter``."""
        with self._lock:
            items = list(self._values.items())
        total = 0.0
        for values, count in items:
            labels = dict(zip(self.labelnames, values))
            if all(labels.get(k) == v for k, v in label_filter.items()):
                total += count
        return total

    def series(self) -> Dict[LabelValues, float]:
        """Snapshot of every series (for reporting)."""
        with self._lock:
            return dict(self._values)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        for values, count in items:
            lines.append(
                f"{self.name}{_labels_suffix(self.labelnames, values)} "
                f"{_format_value(count)}"
            )
        return lines


class Gauge(_MetricFamily):
    """A labeled gauge family (a value that can go up and down)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.Lock):
        super().__init__(name, help, labelnames, lock)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        for values, value in items:
            lines.append(
                f"{self.name}{_labels_suffix(self.labelnames, values)} "
                f"{_format_value(value)}"
            )
        return lines


@dataclass
class HistogramSeries:
    """Mutable state of one labeled histogram series."""

    bucket_counts: List[int]
    sum: float = 0.0
    count: int = 0


class Histogram(_MetricFamily):
    """A labeled histogram family with fixed, cumulative buckets."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help, labelnames, lock)
        buckets = tuple(float(b) for b in buckets)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"buckets must be sorted and unique: {buckets}")
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        #: upper bounds, excluding the implicit +Inf bucket
        self.buckets = buckets
        self._series: Dict[LabelValues, HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into every bucket it fits."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = HistogramSeries(
                    bucket_counts=[0] * (len(self.buckets) + 1)
                )
            # cumulative convention: bump every bucket whose bound >= value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
            series.bucket_counts[-1] += 1  # +Inf
            series.sum += value
            series.count += 1

    def snapshot(self, **labels: str) -> Optional[HistogramSeries]:
        """Copy of one series' state, or None if never observed."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return None
            return HistogramSeries(
                bucket_counts=list(series.bucket_counts),
                sum=series.sum,
                count=series.count,
            )

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        """Estimate quantile ``q`` from bucket counts (see
        :func:`quantile_from_buckets`); None with no observations."""
        series = self.snapshot(**labels)
        if series is None or series.count == 0:
            return None
        bounds = list(self.buckets) + [math.inf]
        return quantile_from_buckets(bounds, series.bucket_counts, q)

    def labelsets(self) -> List[Dict[str, str]]:
        """Every labelset that has observations."""
        with self._lock:
            keys = list(self._series)
        return [dict(zip(self.labelnames, k)) for k in keys]

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(
                (k, HistogramSeries(list(s.bucket_counts), s.sum, s.count))
                for k, s in self._series.items()
            )
        for values, series in items:
            for bound, count in zip(
                list(self.buckets) + [math.inf], series.bucket_counts
            ):
                le = "+Inf" if bound == math.inf else _format_value(bound)
                label_names = list(self.labelnames) + ["le"]
                label_values = values + (le,)
                lines.append(
                    f"{self.name}_bucket"
                    f"{_labels_suffix(label_names, label_values)} {count}"
                )
            suffix = _labels_suffix(self.labelnames, values)
            lines.append(f"{self.name}_sum{suffix} {_format_value(series.sum)}")
            lines.append(f"{self.name}_count{suffix} {series.count}")
        return lines


def quantile_from_buckets(
    bounds: Sequence[float], cumulative_counts: Sequence[int], q: float
) -> float:
    """Estimate a quantile from cumulative histogram buckets.

    Linear interpolation inside the first bucket whose cumulative count
    reaches ``q * total`` — the same estimate Prometheus's
    ``histogram_quantile`` computes.  The lowest bucket interpolates
    from 0; an answer in the +Inf bucket clamps to the largest finite
    bound (there is no upper edge to interpolate toward).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    total = cumulative_counts[-1]
    if total == 0:
        return 0.0
    rank = q * total
    for i, bound in enumerate(bounds):
        if cumulative_counts[i] >= rank:
            below = cumulative_counts[i - 1] if i > 0 else 0
            in_bucket = cumulative_counts[i] - below
            if bound == math.inf:
                # no finite upper edge: clamp to the previous bound
                return float(bounds[i - 1]) if i > 0 else 0.0
            lower = float(bounds[i - 1]) if i > 0 else 0.0
            if in_bucket == 0:
                return float(bound)
            return lower + (float(bound) - lower) * ((rank - below) / in_bucket)
    return float(bounds[-2]) if len(bounds) > 1 else 0.0


class MetricsRegistry:
    """All metric families of one process, behind one lock.

    Families are created lazily and idempotently: declaring the same
    name twice with the same shape returns the existing family, so any
    layer can say ``registry.counter(...)`` without coordination.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _MetricFamily] = {}

    def _declare(self, cls, name: str, help: str,
                 labelnames: Sequence[str], **kwargs) -> _MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} re-declared with a different shape"
                    )
                return existing
            family = cls(name, help, labelnames, threading.Lock(), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._declare(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[_MetricFamily]:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def total(self, name: str, **label_filter: str) -> float:
        """Sum a counter family across matching series (0 if absent)."""
        family = self.get(name)
        if family is None:
            return 0.0
        if not isinstance(family, Counter):
            raise TypeError(f"{name!r} is a {family.kind}, not a counter")
        return family.total(**label_filter)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            families = [self._families[n] for n in sorted(self._families)]
        lines: List[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


# -- exposition parsing (for reports and smoke tests) ------------------------


@dataclass(frozen=True)
class Sample:
    """One parsed exposition line: name + labels + value."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float

    @property
    def labeldict(self) -> Dict[str, str]:
        return dict(self.labels)


def _parse_labels(text: str) -> Tuple[Tuple[str, str], ...]:
    out: List[Tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"malformed label at {text[i:]!r}"
        j = eq + 2
        value_chars: List[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                nxt = text[j + 1]
                value_chars.append({"n": "\n", "\\": "\\", '"': '"'}[nxt])
                j += 2
            else:
                value_chars.append(text[j])
                j += 1
        out.append((name, "".join(value_chars)))
        i = j + 1
    return tuple(out)


def parse_prometheus_text(payload: str, lenient: bool = False) -> List[Sample]:
    """Parse a text-format exposition payload into :class:`Sample` rows.

    Handles HELP/TYPE comments, escaped label values, and the
    ``+Inf``/``NaN`` value spellings.  Raises ``ValueError`` on lines
    that are neither comments nor well-formed samples, so the CI smoke
    test doubles as a format validator.  With ``lenient=True`` malformed
    lines are *skipped* instead — the right mode for reports over a
    scrape taken mid-run or a file truncated by a dying process, where
    the last line may be cut in half.
    """
    samples: List[Sample] = []
    for lineno, line in enumerate(payload.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if "{" in line:
                name = line[: line.index("{")]
                close = line.rindex("}")
                labels = _parse_labels(line[line.index("{") + 1 : close])
                value_s = line[close + 1 :].strip().split()[0]
            else:
                name, value_s = line.split()[:2]
                labels = ()
            value = float(value_s.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except (ValueError, IndexError, KeyError, AssertionError) as exc:
            if lenient:
                continue
            raise ValueError(f"malformed exposition line {lineno}: {line!r}") from exc
        samples.append(Sample(name=name, labels=labels, value=value))
    return samples


def samples_by_name(samples: Iterable[Sample]) -> Dict[str, List[Sample]]:
    """Group parsed samples by metric name."""
    out: Dict[str, List[Sample]] = {}
    for s in samples:
        out.setdefault(s.name, []).append(s)
    return out
