"""News/announcements substrate (stand-in for the center's news API)."""

from .api import Article, Category, NewsAPI, seed_news

__all__ = ["Article", "Category", "NewsAPI", "seed_news"]
