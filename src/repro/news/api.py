"""Center news/announcements API (Announcements widget's data source).

Stands in for "the news API on our center's website" (paper §3.1).
Articles carry a category — outage, maintenance or general news — and,
for outages/maintenance, an effective window.  The widget color-codes by
category (outage -> red, maintenance -> yellow, other -> gray) and styles
past announcements as faded (§3.1); the classification helpers for that
live here because they are properties of the article, not the widget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.clock import SimClock
from repro.sim.rng import RandomStreams


class Category(enum.Enum):
    OUTAGE = "outage"
    MAINTENANCE = "maintenance"
    FEATURE = "feature"
    NEWS = "news"


@dataclass
class Article:
    """One announcement on the center's news page."""

    article_id: int
    title: str
    body: str
    category: Category
    posted_at: float  # sim time seconds
    #: effective window, for outages/maintenance; None = no window
    starts_at: Optional[float] = None
    ends_at: Optional[float] = None

    def is_past(self, now: float) -> bool:
        """Past = the event window has fully elapsed (faded-gray styling)."""
        if self.ends_at is not None:
            return self.ends_at < now
        return False

    def is_active(self, now: float) -> bool:
        """Active = inside the event window right now."""
        return (
            self.starts_at is not None
            and self.ends_at is not None
            and self.starts_at <= now <= self.ends_at
        )

    def is_upcoming(self, now: float) -> bool:
        """True when the event window lies entirely in the future."""
        return self.starts_at is not None and self.starts_at > now


class NewsAPI:
    """The external news endpoint the backend route calls (and caches)."""

    def __init__(self, clock: SimClock):
        self.clock = clock
        self._articles: List[Article] = []
        self._next_id = 1
        self.request_count = 0  # instrumentation for cache benches
        #: simulated HTTP round-trip to the external site
        self.latency_s = 0.150

    def publish(
        self,
        title: str,
        body: str,
        category: Category = Category.NEWS,
        starts_at: Optional[float] = None,
        ends_at: Optional[float] = None,
        posted_at: Optional[float] = None,
    ) -> Article:
        """Post a new article; window endpoints must come as a pair."""
        if not title:
            raise ValueError("article title must be non-empty")
        if (starts_at is None) != (ends_at is None):
            raise ValueError("starts_at and ends_at must be given together")
        if starts_at is not None and ends_at < starts_at:
            raise ValueError("article window ends before it starts")
        art = Article(
            article_id=self._next_id,
            title=title,
            body=body,
            category=category,
            posted_at=self.clock.now() if posted_at is None else posted_at,
            starts_at=starts_at,
            ends_at=ends_at,
        )
        self._next_id += 1
        self._articles.append(art)
        return art

    def fetch(
        self, limit: int = 10, category: Optional[Category] = None
    ) -> List[Article]:
        """The API call the Announcements route makes: newest first."""
        self.request_count += 1
        arts = self._articles
        if category is not None:
            arts = [a for a in arts if a.category is category]
        return sorted(arts, key=lambda a: -a.posted_at)[:limit]

    def all_articles(self) -> List[Article]:
        """Every article ever published (the /news page source)."""
        return list(self._articles)


MAINTENANCE_TITLES = [
    "Scheduled maintenance: {cluster} compute nodes",
    "{cluster} scratch filesystem maintenance",
    "Network switch upgrade on {cluster}",
    "Slurm upgrade on {cluster}",
]

OUTAGE_TITLES = [
    "UNPLANNED OUTAGE: {cluster} login nodes unreachable",
    "Emergency downtime: {cluster} cooling failure",
    "{cluster} scratch filesystem degraded",
]

NEWS_TITLES = [
    "New software stack deployed on {cluster}",
    "Training workshop: introduction to {cluster}",
    "Allocation renewal window now open",
    "Office hours moved to Thursdays",
    "New GPU partition available on {cluster}",
]


def seed_news(
    api: NewsAPI,
    cluster: str = "anvil",
    seed: int = 0,
    n_articles: int = 12,
    horizon_days: float = 30.0,
) -> None:
    """Publish a realistic mixed feed: past/active/upcoming maintenance,
    one outage, and general news, spread over the past ``horizon_days``
    plus an upcoming maintenance window (so the widget shows every
    styling state)."""
    gen = RandomStreams(seed).stream("news")
    now = api.clock.now()
    day = 86400.0
    for i in range(n_articles):
        posted = now - float(gen.uniform(0, horizon_days)) * day
        roll = float(gen.uniform())
        if roll < 0.15:
            start = posted + 2 * day
            api.publish(
                title=str(gen.choice(OUTAGE_TITLES)).format(cluster=cluster),
                body="We are investigating an unplanned outage. Jobs may fail "
                "to start until service is restored.",
                category=Category.OUTAGE,
                starts_at=start,
                ends_at=start + float(gen.uniform(0.1, 1.0)) * day,
                posted_at=posted,
            )
        elif roll < 0.45:
            start = posted + float(gen.uniform(3, 10)) * day
            api.publish(
                title=str(gen.choice(MAINTENANCE_TITLES)).format(cluster=cluster),
                body="The cluster will be unavailable during the maintenance "
                "window. Queued jobs will resume afterwards.",
                category=Category.MAINTENANCE,
                starts_at=start,
                ends_at=start + float(gen.uniform(0.2, 1.5)) * day,
                posted_at=posted,
            )
        else:
            api.publish(
                title=str(gen.choice(NEWS_TITLES)).format(cluster=cluster),
                body="See the user guide for details.",
                category=Category.NEWS if roll < 0.8 else Category.FEATURE,
                posted_at=posted,
            )
    # guarantee one *upcoming* maintenance so the widget always has an
    # "anticipate the downtime" row, per the paper's §3.1 use case
    api.publish(
        title=f"Scheduled maintenance: {cluster} full-cluster downtime",
        body="All of the cluster will be offline for scheduled maintenance.",
        category=Category.MAINTENANCE,
        starts_at=now + 5 * day,
        ends_at=now + 5.5 * day,
        posted_at=now - 0.5 * day,
    )
