"""System Status widget (paper §3.3).

Per-partition overview from ``sinfo``: name, availability, node/CPU/GPU
traffic as both text and a color-coded progress bar (green < 70 %,
yellow 70–90 %, red > 90 %).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.auth import Viewer

from ..colors import utilization_color
from ..rendering import degraded_banner, el, progress_bar
from ..routes import ApiRoute, DashboardContext


def _banner(data):
    """Degraded-mode banner when this widget is serving stale data."""
    info = data.get("_degraded")
    return degraded_banner(info["stale_age_s"]) if info else None


def system_status_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: partition utilization summary."""
    partitions = []
    for row in ctx.partition_status():
        cpu_frac = row["cpus_alloc"] / row["cpus_total"] if row["cpus_total"] else 0.0
        gpu_frac = (
            row["gpus_alloc"] / row["gpus_total"] if row["gpus_total"] else None
        )
        busy_nodes = row["nodes_alloc"] + row["nodes_other"]
        node_frac = busy_nodes / row["nodes_total"] if row["nodes_total"] else 0.0
        partitions.append(
            {
                "name": row["partition"],
                "is_default": row["is_default"],
                "available": row["AVAIL"] == "up",
                "time_limit": row["TIMELIMIT"],
                "cpus_in_use": row["cpus_alloc"],
                "cpus_total": row["cpus_total"],
                "cpu_fraction": round(cpu_frac, 4),
                "cpu_color": utilization_color(cpu_frac),
                "gpus_in_use": row["gpus_alloc"],
                "gpus_total": row["gpus_total"],
                "gpu_fraction": round(gpu_frac, 4) if gpu_frac is not None else None,
                "gpu_color": (
                    utilization_color(gpu_frac) if gpu_frac is not None else None
                ),
                "nodes_in_use": busy_nodes,
                "nodes_total": row["nodes_total"],
                "node_fraction": round(node_frac, 4),
            }
        )
    return {"partitions": partitions, "details_url": "/cluster_status"}


def render_system_status(data: Dict[str, Any]):
    """Frontend: text + color-coded bars per partition (§3.3)."""
    rows = []
    for part in data["partitions"]:
        bars = [
            el("div", f"CPUs {part['cpus_in_use']}/{part['cpus_total']}"),
            progress_bar(part["cpu_fraction"], label=f"{part['name']} CPU usage"),
        ]
        if part["gpu_fraction"] is not None:
            bars.append(el("div", f"GPUs {part['gpus_in_use']}/{part['gpus_total']}"))
            bars.append(
                progress_bar(part["gpu_fraction"], label=f"{part['name']} GPU usage")
            )
        rows.append(
            el(
                "div",
                el(
                    "div",
                    el("strong", part["name"] + ("*" if part["is_default"] else "")),
                    el(
                        "span",
                        "up" if part["available"] else "down",
                        cls="partition-avail "
                        + ("text-green" if part["available"] else "text-red"),
                    ),
                ),
                *bars,
                cls="partition-status",
            )
        )
    return el(
        "section",
        el(
            "header",
            el("h4", "System Status"),
            el("a", "Partition details", href=data["details_url"], cls="widget-link"),
            cls="widget-header",
        ),
        _banner(data),
        *rows,
        cls="widget widget-system-status",
        aria_label="System status",
    )


ROUTE = ApiRoute(
    name="system_status",
    path="/api/v1/widgets/system_status",
    feature="System Status widget",
    data_sources=("sinfo (Slurm)",),
    handler=system_status_data,
    client_max_age_s=60.0,
)
