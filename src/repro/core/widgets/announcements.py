"""Announcements widget (paper §3.1).

Gathers the latest news from the center's news API (cached server-side
for 30 minutes) and renders an accordion: collapsed title/date rows that
expand to the article body.  Outages are red, maintenance yellow, the
rest gray; past announcements get the faint "past" styling.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.auth import Viewer

from ..colors import announcement_color, announcement_style
from ..params import positive_int_param
from ..rendering import accordion, degraded_banner, el
from ..routes import ApiRoute, DashboardContext


def _banner(data):
    """Degraded-mode banner when this widget is serving stale data."""
    info = data.get("_degraded")
    return degraded_banner(info["stale_age_s"]) if info else None


def announcements_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: JSON list of recent articles with display hints."""
    limit = positive_int_param(params, "limit") or 8
    now = ctx.now()
    articles = []
    for art in ctx.announcements(limit=limit):
        articles.append(
            {
                "id": art.article_id,
                "title": art.title,
                "body": art.body,
                "category": art.category.value,
                "color": announcement_color(art.category),
                "style": announcement_style(art, now),
                "posted_at": ctx.clock.isoformat(art.posted_at),
                "starts_at": (
                    ctx.clock.isoformat(art.starts_at)
                    if art.starts_at is not None
                    else None
                ),
                "ends_at": (
                    ctx.clock.isoformat(art.ends_at) if art.ends_at is not None else None
                ),
                "upcoming": art.is_upcoming(now),
                "active_now": art.is_active(now),
            }
        )
    return {"articles": articles, "all_news_url": "/news"}


def render_announcements(data: Dict[str, Any]):
    """Frontend: accordion layout with color-coded urgency (§3.1)."""
    items = []
    for art in data["articles"]:
        subtitle = art["posted_at"]
        if art["starts_at"]:
            subtitle += f" — window {art['starts_at']} to {art['ends_at']}"
        items.append(
            (
                art["title"],
                art["body"],
                {"color": art["color"], "style": art["style"], "subtitle": subtitle},
            )
        )
    return el(
        "section",
        el(
            "header",
            el("h4", "Announcements"),
            el("a", "View all news", href=data["all_news_url"], cls="widget-link"),
            cls="widget-header",
        ),
        _banner(data),
        accordion(items),
        cls="widget widget-announcements",
        aria_label="Cluster announcements",
    )


ROUTE = ApiRoute(
    name="announcements",
    path="/api/v1/widgets/announcements",
    feature="Announcements widget",
    data_sources=("API call to RCAC news page",),
    handler=announcements_data,
    client_max_age_s=300.0,
)
