"""Recent Jobs widget (paper §3.2).

Shows the user's latest jobs — queued, running, or just finished — in
compact cards: name, id, status, and the most relevant timestamp, with
the status reason explained in a hoverable tooltip.  Data comes from
``squeue`` and is cached aggressively (~30 s) on both sides because
squeue load lands on slurmctld.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.auth import Viewer
from repro.slurm import reasons as R
from repro.slurm.model import JobState

from ..colors import job_state_color, job_state_label
from ..params import positive_int_param
from ..rendering import badge, degraded_banner, el, tooltip_span
from ..routes import ApiRoute, DashboardContext


def _banner(data):
    """Degraded-mode banner when this widget is serving stale data."""
    info = data.get("_degraded")
    return degraded_banner(info["stale_age_s"]) if info else None


def recent_jobs_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: the viewer's most recent jobs as card payloads."""
    limit = positive_int_param(params, "limit") or 8
    records = ctx.recent_jobs_of(viewer.username)[:limit]
    now = ctx.now()
    cards = []
    for rec in records:
        if rec.state is JobState.PENDING:
            stamp_label, stamp = "Submitted", rec.submit_time
        elif rec.state is JobState.RUNNING:
            stamp_label, stamp = "Started", rec.start_time
        else:
            stamp_label, stamp = "Ended", rec.end_time
        reason_info = R.explain(rec.reason)
        est = rec.raw.get("EST_START", "N/A")
        cards.append(
            {
                "job_id": rec.display_id,
                "name": rec.name,
                "state": rec.state.value,
                "state_label": job_state_label(rec.state),
                "state_color": job_state_color(rec.state),
                "reason": rec.reason,
                "reason_tooltip": reason_info.friendly,
                "timestamp_label": stamp_label,
                "timestamp": ctx.clock.isoformat(stamp) if stamp is not None else "n/a",
                # squeue --start projection, for pending jobs (None otherwise)
                "estimated_start": (
                    est if rec.state is JobState.PENDING and est != "N/A" else None
                ),
                "overview_url": f"/jobs/{rec.job_id}",
            }
        )
    return {"jobs": cards, "all_jobs_url": "/my_jobs", "as_of": ctx.clock.isoformat(now)}


def render_recent_jobs(data: Dict[str, Any]):
    """Frontend: compact card per job with tooltip'd status (§3.2)."""
    cards = []
    for job in data["jobs"]:
        status = badge(job["state_label"], job["state_color"])
        tip = job["reason_tooltip"]
        cards.append(
            el(
                "a",
                el("div", el("strong", job["name"]), el("small", f"#{job['job_id']}")),
                el(
                    "div",
                    tooltip_span(job["state_label"], tip) if tip else status,
                    cls=f"job-status text-{job['state_color']}",
                ),
                el(
                    "div",
                    f"{job['timestamp_label']}: {job['timestamp']}",
                    cls="job-timestamp",
                ),
                (
                    el(
                        "div",
                        f"Estimated start: {job['estimated_start']}",
                        cls="job-estimated-start",
                    )
                    if job.get("estimated_start")
                    else None
                ),
                cls="job-card",
                href=job["overview_url"],
            )
        )
    return el(
        "section",
        el(
            "header",
            el("h4", "Recent Jobs"),
            el("a", "All jobs", href=data["all_jobs_url"], cls="widget-link"),
            cls="widget-header",
        ),
        _banner(data),
        el("div", *cards, cls="job-card-list"),
        cls="widget widget-recent-jobs",
        aria_label="Recent jobs",
    )


ROUTE = ApiRoute(
    name="recent_jobs",
    path="/api/v1/widgets/recent_jobs",
    feature="Recent Jobs widget",
    data_sources=("squeue (Slurm)",),
    handler=recent_jobs_data,
    client_max_age_s=30.0,
)
