"""Accounts widget (paper §3.4).

Shows each allocation the user belongs to with its CPU limit, CPUs
currently in use and queued, and GPU hours used against the allocation's
GPU-hour limit.  Managers get an export dropdown (CSV / Excel) with the
per-user usage breakdown.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.auth import Viewer
from repro.slurm.model import JobState, TRES

from ..colors import utilization_color
from ..rendering import degraded_banner, el, progress_bar
from ..routes import ApiRoute, DashboardContext


def _banner(data):
    """Degraded-mode banner when this widget is serving stale data."""
    info = data.get("_degraded")
    return degraded_banner(info["stale_age_s"]) if info else None


def accounts_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: usage vs limits for each of the viewer's accounts."""
    queue = ctx.cluster_queue()
    accounts = []
    for name in ctx.policy.visible_accounts(viewer):
        try:
            assoc = ctx.association_info(name)
        except KeyError:
            # accounts without a Slurm association (no limits) still show
            assoc = {}
        grp = TRES.parse(assoc.get("GrpTRES", "")) if assoc.get("GrpTRES") else None
        alloc = (
            TRES.parse(assoc.get("GrpTRESAlloc", ""))
            if assoc.get("GrpTRESAlloc")
            else TRES()
        )
        queued_cpus = sum(
            r.req.cpus
            for r in queue
            if r.account == name and r.state is JobState.PENDING
        )
        cpu_limit = grp.cpus if grp and grp.cpus else None
        cpu_frac = alloc.cpus / cpu_limit if cpu_limit else None
        gpu_hours_used = float(assoc.get("GPUHoursUsed", 0.0) or 0.0)
        raw_limit = assoc.get("GrpGPUHoursLimit", "N")
        gpu_hours_limit = None if raw_limit in ("N", "", None) else float(raw_limit)
        gpu_frac = (
            gpu_hours_used / gpu_hours_limit if gpu_hours_limit else None
        )
        accounts.append(
            {
                "name": name,
                "cpus_in_use": alloc.cpus,
                "cpus_queued": queued_cpus,
                "cpu_limit": cpu_limit,
                "cpu_fraction": round(cpu_frac, 4) if cpu_frac is not None else None,
                "cpu_color": (
                    utilization_color(cpu_frac) if cpu_frac is not None else None
                ),
                "gpu_hours_used": round(gpu_hours_used, 2),
                "gpu_hours_limit": gpu_hours_limit,
                "gpu_fraction": (
                    round(min(gpu_frac, 1.0), 4) if gpu_frac is not None else None
                ),
                "can_export": ctx.policy.can_export_account_usage(viewer, name),
                "export_urls": {
                    "csv": f"/api/v1/export/account_usage/{name}.csv",
                    "xlsx": f"/api/v1/export/account_usage/{name}.xls",
                },
            }
        )
    return {"accounts": accounts, "user_guide_url": "/docs/accounting"}


def render_accounts(data: Dict[str, Any]):
    """Frontend: one row per allocation with usage bars + export menu."""
    rows = []
    for acct in data["accounts"]:
        parts = [
            el(
                "div",
                el("strong", acct["name"]),
                el(
                    "span",
                    f"CPUs in use: {acct['cpus_in_use']}"
                    + (f" / {acct['cpu_limit']}" if acct["cpu_limit"] else "")
                    + f" (queued: {acct['cpus_queued']})",
                    cls="account-cpus",
                ),
            )
        ]
        if acct["cpu_fraction"] is not None:
            parts.append(
                progress_bar(acct["cpu_fraction"], label=f"{acct['name']} CPU usage")
            )
        gpu_text = f"GPU hours used: {acct['gpu_hours_used']:g}"
        if acct["gpu_hours_limit"]:
            gpu_text += f" / {acct['gpu_hours_limit']:g}"
        parts.append(el("div", gpu_text, cls="account-gpu-hours"))
        if acct["gpu_fraction"] is not None:
            parts.append(
                progress_bar(acct["gpu_fraction"], label=f"{acct['name']} GPU hours")
            )
        if acct["can_export"]:
            parts.append(
                el(
                    "div",
                    el("a", "Export CSV", href=acct["export_urls"]["csv"]),
                    el("a", "Export Excel", href=acct["export_urls"]["xlsx"]),
                    cls="export-dropdown",
                )
            )
        rows.append(el("div", *parts, cls="account-row"))
    return el(
        "section",
        el(
            "header",
            el("h4", "Accounts"),
            el("a", "Accounting guide", href=data["user_guide_url"], cls="widget-link"),
            cls="widget-header",
        ),
        _banner(data),
        *rows,
        cls="widget widget-accounts",
        aria_label="Allocation usage",
    )


ROUTE = ApiRoute(
    name="accounts",
    path="/api/v1/widgets/accounts",
    feature="Accounts widget",
    data_sources=("scontrol show assoc (Slurm)",),
    handler=accounts_data,
    client_max_age_s=120.0,
)
