"""Storage widget (paper §3.5).

Lists every directory the user can use — home, scratch, and group/project
directories — with disk usage and file counts, color-coded bars, and a
link into the Open OnDemand files app for each path.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.auth import Viewer
from repro.ood import files_app_url
from repro.storage.quota import format_bytes

from ..colors import utilization_color
from ..rendering import degraded_banner, el, progress_bar
from ..routes import ApiRoute, DashboardContext


def _banner(data):
    """Degraded-mode banner when this widget is serving stale data."""
    info = data.get("_degraded")
    return degraded_banner(info["stale_age_s"]) if info else None


def storage_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: quota rows scoped to the viewer (§2.4 Privacy)."""
    dirs = []
    for entry in ctx.storage_for(viewer):
        dirs.append(
            {
                "path": entry.path,
                "label": entry.label,
                "filesystem": entry.kind.value,
                "owner": entry.owner,
                "used_bytes": entry.used_bytes,
                "quota_bytes": entry.quota_bytes,
                "used_display": format_bytes(entry.used_bytes),
                "quota_display": format_bytes(entry.quota_bytes),
                "bytes_fraction": round(entry.bytes_fraction, 4),
                "bytes_color": utilization_color(entry.bytes_fraction),
                "used_files": entry.used_files,
                "quota_files": entry.quota_files,
                "files_fraction": round(entry.files_fraction, 4),
                "files_color": utilization_color(entry.files_fraction),
                "files_app_url": files_app_url(entry.path),
            }
        )
    return {"directories": dirs}


def render_storage(data: Dict[str, Any]):
    """Frontend: one block per directory with two bars (§3.5)."""
    rows = []
    for d in data["directories"]:
        rows.append(
            el(
                "div",
                el(
                    "div",
                    el("strong", f"{d['label']} "),
                    el("a", d["path"], href=d["files_app_url"], cls="files-link"),
                    el("small", f" ({d['filesystem']})"),
                ),
                el(
                    "div",
                    f"Storage: {d['used_display']} of {d['quota_display']}",
                    cls="storage-bytes",
                ),
                progress_bar(d["bytes_fraction"], label=f"{d['path']} storage"),
                el(
                    "div",
                    f"Files: {d['used_files']:,} of {d['quota_files']:,}",
                    cls="storage-files",
                ),
                progress_bar(d["files_fraction"], label=f"{d['path']} file count"),
                cls="storage-row",
            )
        )
    return el(
        "section",
        el("header", el("h4", "Storage"), cls="widget-header"),
        _banner(data),
        *rows,
        cls="widget widget-storage",
        aria_label="Storage usage",
    )


ROUTE = ApiRoute(
    name="storage",
    path="/api/v1/widgets/storage",
    feature="Storage widget",
    data_sources=("ZFS and GPFS storage database",),
    handler=storage_data,
    client_max_age_s=600.0,
)
