"""Homepage widgets, each a (route handler, renderer) pair (paper §3)."""

from . import accounts, announcements, recent_jobs, storage, system_status

#: registration order is the homepage layout order (Figure 2)
ALL_WIDGET_ROUTES = (
    announcements.ROUTE,
    recent_jobs.ROUTE,
    system_status.ROUTE,
    accounts.ROUTE,
    storage.ROUTE,
)

WIDGET_RENDERERS = {
    "announcements": announcements.render_announcements,
    "recent_jobs": recent_jobs.render_recent_jobs,
    "system_status": system_status.render_system_status,
    "accounts": accounts.render_accounts,
    "storage": storage.render_storage,
}

__all__ = [
    "accounts",
    "announcements",
    "recent_jobs",
    "storage",
    "system_status",
    "ALL_WIDGET_ROUTES",
    "WIDGET_RENDERERS",
]
