"""Consistent-hash sharding of the server-side TTL cache.

One :class:`~repro.core.caching.TTLCache` protects every mutation with a
single reentrant lock.  That is fine for one user clicking around, but a
load test replaying thousands of concurrent lookups shows every hot key
— and every refresh-ahead revalidation — serializing on the same lock.
:class:`ShardedCache` splits the key space across N shared-nothing
``TTLCache`` shards picked by a consistent-hash ring, so lookups for
different keys proceed on different locks, while all the per-source
counters keep flowing into the one shared metrics registry (counters are
additive, so shards can share families safely; the per-shard *size*
gauges are labeled by shard and the classic unlabeled families are
reconciled at scrape time by :meth:`sync_gauges`).

The ring uses virtual nodes (``vnodes`` points per shard, hashed with
BLAKE2b) so keys spread evenly and, were the shard count ever resized,
only ~1/N of the key space would move.  With ``shards=1`` every key maps
to the single shard and behaviour — including response bytes — is
identical to an unsharded cache; the knob exists so benchmarks can
compare lock contention at 1 vs N under the same traffic.

:class:`ShardedCache` mirrors the full public ``TTLCache`` API
(``fetch`` / ``fetch_or_stale`` / ``lookup`` / ``read`` / ``write`` /
``delete`` / ``clear`` / ``entry`` / ``purge_expired`` / ``len()`` plus
the ``refresh_runner`` / ``refresh_gate`` hooks), so the resilient fetch
path and the dashboard context use either interchangeably.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Type

from repro.obs import MetricsRegistry
from repro.sim.clock import SimClock

from .caching import CacheEntry, CacheLookup, CacheStats, TTLCache


def _hash64(text: str) -> int:
    """Stable 64-bit hash for ring points and keys (never ``hash()``,
    which is salted per process and would unshard across restarts)."""
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over named nodes with stable membership.

    Each node contributes ``vnodes`` points (BLAKE2b of
    ``"shard:<node>:vnode:<i>"`` — the exact derivation
    :class:`ShardedCache` has always used, so cache shards keep their
    historical key → shard mapping).  A key is owned by the clockwise
    successor of its hash point.  Removing a node deletes only that
    node's points: every key owned by a *surviving* node keeps its
    owner, and the removed node's ~1/N share redistributes across the
    survivors — the property that makes the same ring reusable at the
    fleet level, where "node" is a worker process and membership
    changes when a worker dies.

    :meth:`preference` walks the ring clockwise from a key's point and
    yields distinct nodes in ring order — the owner first, then the
    fallbacks a balancer retries when the owner is unhealthy.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        # sorted parallel arrays: ring point -> owning node
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Member nodes in insertion order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add a node's vnode points to the ring."""
        if node in self._nodes:
            raise ValueError(f"node already on the ring: {node!r}")
        self._nodes.append(node)
        for v in range(self.vnodes):
            point = _hash64(f"shard:{node}:vnode:{v}")
            i = bisect.bisect_left(self._points, point)
            self._points.insert(i, point)
            self._owners.insert(i, node)

    def remove(self, node: str) -> None:
        """Remove a node; only its ~1/N of the key space remaps."""
        if node not in self._nodes:
            raise ValueError(f"node not on the ring: {node!r}")
        self._nodes.remove(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- lookup --------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The node owning ``key`` (clockwise successor on the ring)."""
        if not self._nodes:
            raise ValueError("ring has no nodes")
        if len(self._nodes) == 1:
            return self._nodes[0]
        return self._owners[self._successor(key)]

    def preference(self, key: str) -> List[str]:
        """Every node, ordered by ring distance from ``key``'s point.

        The first entry is the owner; later entries are where the key
        re-hashes if the nodes before them are unhealthy.  Walking
        *ring points* (not the node list) keeps the fallback assignment
        consistent: two keys owned by a dead node spread across
        different survivors instead of all piling onto one.
        """
        if not self._nodes:
            return []
        out: List[str] = []
        start = self._successor(key)
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in out:
                out.append(owner)
                if len(out) == len(self._nodes):
                    break
        return out

    def _successor(self, key: str) -> int:
        point = _hash64(key)
        i = bisect.bisect_right(self._points, point)
        return 0 if i == len(self._points) else i


class ShardedCache:
    """A consistent-hash front over N shared-nothing TTL cache shards."""

    def __init__(
        self,
        clock: SimClock,
        shards: int = 1,
        default_ttl: float = 60.0,
        max_entries: int = 10_000,
        registry: Optional[MetricsRegistry] = None,
        coalesce: bool = True,
        vnodes: int = 64,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1: {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.clock = clock
        self.default_ttl = default_ttl
        self.max_entries = max_entries
        self.metrics = registry or MetricsRegistry()
        # aggregate capacity stays ~max_entries: each shard gets its slice
        per_shard = max(1, -(-max_entries // shards))
        self.shards: List[TTLCache] = [
            TTLCache(
                clock,
                default_ttl=default_ttl,
                max_entries=per_shard,
                registry=self.metrics,
                coalesce=coalesce,
                shard=str(i),
            )
            for i in range(shards)
        ]
        # the ring: vnodes points per shard, owned by shard index label
        self.ring = HashRing((str(i) for i in range(shards)), vnodes=vnodes)
        # the classic unlabeled gauges, reconciled at scrape time
        self._entries_gauge = self.metrics.gauge(
            "repro_cache_entries",
            "Live entries in the server-side TTL cache.",
        )
        self._entries_gauge.set(0.0)
        self._inflight_gauge = self.metrics.gauge(
            "repro_cache_inflight_keys",
            "Keys with a single-flight compute currently running.",
        )
        self._inflight_gauge.set(0.0)
        self._lock_contended = self.metrics.gauge(
            "repro_cache_shard_lock_contended",
            "Lifetime contended lock acquisitions, per cache shard.",
            ("shard",),
        )
        self._lock_wait = self.metrics.gauge(
            "repro_cache_shard_lock_wait_seconds",
            "Lifetime wall seconds spent waiting on the lock, per shard.",
            ("shard",),
        )
        self.sync_gauges()
        self.stats = CacheStats(self.metrics)

    # -- sharding ------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, key: str) -> TTLCache:
        """The shard owning ``key`` (clockwise successor on the ring)."""
        if len(self.shards) == 1:
            return self.shards[0]
        return self.shards[int(self.ring.owner(key))]

    def shard_index_of(self, key: str) -> int:
        """Index of the shard owning ``key`` (for tests and reports)."""
        return int(self.shard_of(key).shard or 0)

    # -- refresh-ahead hooks (propagated to every shard) ----------------------

    @property
    def refresh_runner(self) -> Optional[Callable[[Callable[[], None]], bool]]:
        return self.shards[0].refresh_runner

    @refresh_runner.setter
    def refresh_runner(self, runner) -> None:
        for shard in self.shards:
            shard.refresh_runner = runner

    @property
    def refresh_gate(self) -> Optional[Callable[[], bool]]:
        return self.shards[0].refresh_gate

    @refresh_gate.setter
    def refresh_gate(self, gate) -> None:
        for shard in self.shards:
            shard.refresh_gate = gate

    @property
    def coalesce(self) -> bool:
        return self.shards[0].coalesce

    @coalesce.setter
    def coalesce(self, value: bool) -> None:
        for shard in self.shards:
            shard.coalesce = value

    # -- the TTLCache API, routed by key --------------------------------------

    def fetch(self, key: str, compute: Callable[[], Any], ttl: Optional[float] = None,
              follower_timeout_s: Optional[float] = None) -> Any:
        return self.shard_of(key).fetch(
            key, compute, ttl=ttl, follower_timeout_s=follower_timeout_s
        )

    def fetch_or_stale(
        self,
        key: str,
        compute: Callable[[], Any],
        ttl: Optional[float] = None,
        stale_on: Tuple[Type[BaseException], ...] = (Exception,),
        follower_timeout_s: Optional[float] = None,
    ) -> Tuple[Any, Optional[float]]:
        return self.shard_of(key).fetch_or_stale(
            key, compute, ttl=ttl, stale_on=stale_on,
            follower_timeout_s=follower_timeout_s,
        )

    def lookup(
        self,
        key: str,
        compute: Callable[[], Any],
        ttl: Optional[float] = None,
        stale_on: Tuple[Type[BaseException], ...] = (),
        follower_timeout_s: Optional[float] = None,
        soft_ttl: Optional[float] = None,
        refresh: Optional[Callable[[], Any]] = None,
    ) -> CacheLookup:
        return self.shard_of(key).lookup(
            key, compute, ttl=ttl, stale_on=stale_on,
            follower_timeout_s=follower_timeout_s,
            soft_ttl=soft_ttl, refresh=refresh,
        )

    def read(self, key: str) -> Any:
        return self.shard_of(key).read(key)

    def write(self, key: str, value: Any, ttl: Optional[float] = None) -> None:
        self.shard_of(key).write(key, value, ttl=ttl)

    def delete(self, key: str) -> bool:
        return self.shard_of(key).delete(key)

    def invalidate(self, key: str) -> bool:
        return self.shard_of(key).invalidate(key)

    def epoch_of(self, key: str) -> int:
        return self.shard_of(key).epoch_of(key)

    def entry(self, key: str) -> Optional[CacheEntry]:
        return self.shard_of(key).entry(key)

    def generation_of(self, key: str) -> Optional[int]:
        # generations are per-shard monotonic, which is all a validator
        # needs: a key always hashes to the same shard, so (key,
        # generation) still uniquely names one stored value
        return self.shard_of(key).generation_of(key)

    def clear(self) -> None:
        for shard in self.shards:
            shard.clear()

    def purge_expired(self) -> int:
        return sum(shard.purge_expired() for shard in self.shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # -- contention profile ----------------------------------------------------

    def lock_stats(self) -> Dict[str, float]:
        """Aggregate lock-contention profile across every shard."""
        totals = {"acquisitions": 0.0, "contended": 0.0, "wait_s": 0.0}
        for shard in self.shards:
            for name, value in shard.lock_stats().items():
                totals[name] += value
        return totals

    def lock_stats_by_shard(self) -> Dict[str, Dict[str, float]]:
        """Per-shard lock-contention profiles, keyed by shard label."""
        return {shard.shard or "0": shard.lock_stats() for shard in self.shards}

    def sync_gauges(self) -> None:
        """Reconcile the unlabeled size gauges and the per-shard lock
        profile gauges from live shard state (called at scrape time)."""
        entries = inflight = 0
        for shard in self.shards:
            entries += len(shard)
            with shard._lock:
                inflight += len(shard._inflight)
            stats = shard.lock_stats()
            label = shard.shard or "0"
            self._lock_contended.set(stats["contended"], shard=label)
            self._lock_wait.set(stats["wait_s"], shard=label)
        self._entries_gauge.set(float(entries))
        self._inflight_gauge.set(float(inflight))
