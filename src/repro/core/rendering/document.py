"""Full HTML document assembly with the dashboard stylesheet.

`page_shell` renders the in-app chrome; this module wraps any page in a
complete ``<!DOCTYPE html>`` document with an embedded stylesheet that
implements the paper's visual contract (color-coded bars and badges,
the node grid, the accordion, responsive card rows), so the HTML the
examples write to disk is genuinely viewable in a browser.
"""

from __future__ import annotations

from .html import Element, escape

#: the color tokens used by components (bg-/text-/border- prefixes)
_PALETTE = {
    "green": "#2e7d32",
    "faded-green": "#a5d6a7",
    "yellow": "#f9a825",
    "orange": "#ef6c00",
    "red": "#c62828",
    "gray": "#757575",
    "blue": "#1565c0",
}


def _palette_css() -> str:
    rules = []
    for name, color in _PALETTE.items():
        fg = "#ffffff" if name not in ("faded-green", "yellow") else "#1b1b1b"
        rules.append(f".bg-{name}{{background:{color};color:{fg};}}")
        rules.append(f".text-{name}{{color:{color};}}")
        rules.append(f".border-{name}{{border-left:4px solid {color};}}")
    return "".join(rules)


STYLESHEET = (
    "body{font-family:system-ui,sans-serif;margin:0;background:#f5f6f8;"
    "color:#1b1b1b;}"
    ".navbar{display:flex;justify-content:space-between;padding:.6rem 1rem;"
    "background:#222;color:#fff;}"
    "main{padding:1rem;max-width:1200px;margin:0 auto;}"
    ".widget-grid{display:grid;grid-template-columns:repeat(auto-fit,"
    "minmax(340px,1fr));gap:1rem;}"
    ".widget,.card{background:#fff;border-radius:8px;padding:.8rem;"
    "box-shadow:0 1px 3px rgba(0,0,0,.12);}"
    ".widget-header{display:flex;justify-content:space-between;"
    "align-items:baseline;}"
    ".progress{background:#e0e0e0;border-radius:4px;height:1.1rem;"
    "margin:.25rem 0;overflow:hidden;}"
    ".progress-bar{height:100%;font-size:.75rem;text-align:center;"
    "white-space:nowrap;}"
    ".badge{border-radius:999px;padding:.1rem .6rem;font-size:.8rem;}"
    ".accordion-item{border-bottom:1px solid #eee;padding:.3rem 0;}"
    ".accordion-header{display:block;width:100%;text-align:left;"
    "background:none;border:none;padding:.3rem .5rem;cursor:pointer;}"
    ".item-past{opacity:.55;}"
    ".accordion-body.collapse{display:none;}"
    ".node-grid{display:flex;flex-wrap:wrap;gap:4px;}"
    ".node-cell{width:64px;height:40px;display:flex;align-items:center;"
    "justify-content:center;border-radius:4px;font-size:.7rem;"
    "text-decoration:none;}"
    "table.data-table{border-collapse:collapse;width:100%;background:#fff;}"
    "table.data-table th,table.data-table td{border-bottom:1px solid #eee;"
    "padding:.35rem .5rem;text-align:left;font-size:.85rem;}"
    ".nav-tabs{display:flex;list-style:none;margin:0;padding:0;gap:.25rem;}"
    ".nav-link{border:none;background:#e8e8e8;padding:.4rem .9rem;"
    "border-radius:6px 6px 0 0;cursor:pointer;}"
    ".nav-link.active{background:#fff;font-weight:600;}"
    ".tab-pane{display:none;background:#fff;padding:.8rem;}"
    ".tab-pane.active{display:block;}"
    ".timeline{display:flex;gap:2rem;padding:.8rem;}"
    ".timeline-dot{display:inline-block;width:12px;height:12px;"
    "border-radius:50%;}"
    ".timeline-dot.hollow{background:#fff;border:2px solid currentColor;}"
    ".log-view{font-family:ui-monospace,monospace;font-size:.78rem;"
    "max-height:420px;overflow:auto;background:#101418;color:#d7e3ee;"
    "padding:.5rem;}"
    ".log-line{display:flex;gap:.8rem;}"
    ".line-number{color:#5c6c7c;min-width:4rem;text-align:right;"
    "user-select:none;}"
    ".alert{padding:.5rem .8rem;border-radius:6px;margin:.3rem 0;}"
    ".alert-warning{background:#fff8e1;border:1px solid #f9a825;}"
    ".alert-danger{background:#fdecea;border:1px solid #c62828;}"
    ".card-row{display:grid;grid-template-columns:repeat(auto-fit,"
    "minmax(240px,1fr));gap:1rem;margin:.8rem 0;}"
    ".component-loading .spinner{display:inline-block;width:1rem;"
    "height:1rem;border:2px solid #bbb;border-top-color:#333;"
    "border-radius:50%;animation:spin .8s linear infinite;}"
    "@keyframes spin{to{transform:rotate(360deg);}}"
    ".sr-only{position:absolute;width:1px;height:1px;overflow:hidden;"
    "clip:rect(0 0 0 0);}"
    + _palette_css()
)


def render_document(title: str, body: Element | str, lang: str = "en") -> str:
    """Wrap a rendered page in a complete standalone HTML document."""
    body_html = body.render() if isinstance(body, Element) else str(body)
    return (
        "<!DOCTYPE html>\n"
        f'<html lang="{escape(lang)}">\n'
        "<head>\n"
        '<meta charset="utf-8"/>\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>{STYLESHEET}</style>\n"
        "</head>\n"
        f"<body>{body_html}</body>\n"
        "</html>\n"
    )
