"""A miniature ERB-style template engine.

The paper's code structure pairs "a frontend ERB template file" with API
routes (§2.3); only a few server-side values (like the username) are
pre-rendered into the template, everything else arrives via JSON.  This
engine supports that exact usage:

* ``<%= expression %>`` — evaluate and HTML-escape;
* ``<%- expression %>`` — evaluate raw (for nesting rendered components);
* ``<% for x in items %> ... <% end %>`` — loops;
* ``<% if cond %> ... <% end %>`` — conditionals.

Expressions are evaluated against the provided context dict only (no
builtins beyond a safe whitelist), which keeps templates declarative.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

from .html import escape

_TOKEN_RE = re.compile(r"<%(=|-)?\s*(.*?)\s*%>", re.DOTALL)

_SAFE_BUILTINS = {
    "len": len,
    "round": round,
    "min": min,
    "max": max,
    "int": int,
    "float": float,
    "str": str,
    "sorted": sorted,
    "enumerate": enumerate,
}


class TemplateError(ValueError):
    """Raised for malformed templates or failing expressions."""


class Template:
    """A compiled template; render with a context dict."""

    def __init__(self, source: str, name: str = "<template>"):
        self.source = source
        self.name = name
        self._ops = self._compile(source)

    # -- compilation -------------------------------------------------------

    def _compile(self, source: str) -> List[tuple]:
        ops: List[tuple] = []
        pos = 0
        for match in _TOKEN_RE.finditer(source):
            if match.start() > pos:
                ops.append(("text", source[pos : match.start()]))
            flavor, body = match.group(1), match.group(2)
            if flavor == "=":
                ops.append(("expr", body))
            elif flavor == "-":
                ops.append(("raw", body))
            elif body == "end":
                ops.append(("end",))
            elif body.startswith("for ") or body.startswith("if "):
                ops.append(("block", body))
            else:
                raise TemplateError(
                    f"{self.name}: unsupported directive <% {body} %>"
                )
            pos = match.end()
        if pos < len(source):
            ops.append(("text", source[pos:]))
        # validate block nesting now rather than at render time
        depth = 0
        for op in ops:
            if op[0] == "block":
                depth += 1
            elif op[0] == "end":
                depth -= 1
                if depth < 0:
                    raise TemplateError(f"{self.name}: unmatched <% end %>")
        if depth != 0:
            raise TemplateError(f"{self.name}: {depth} unclosed block(s)")
        return ops

    # -- rendering ----------------------------------------------------------

    def render(self, context: Dict[str, Any]) -> str:
        """Render the template against ``context``; returns HTML text."""
        out: List[str] = []
        self._render_ops(self._ops, 0, len(self._ops), dict(context), out)
        return "".join(out)

    def _render_ops(self, ops, start, end, ctx, out) -> None:
        i = start
        while i < end:
            op = ops[i]
            kind = op[0]
            if kind == "text":
                out.append(op[1])
            elif kind == "expr":
                out.append(escape(self._eval(op[1], ctx)))
            elif kind == "raw":
                out.append(str(self._eval(op[1], ctx)))
            elif kind == "block":
                close = self._find_close(ops, i, end)
                header = op[1]
                if header.startswith("for "):
                    m = re.match(r"for\s+(\w+(?:\s*,\s*\w+)*)\s+in\s+(.+)", header)
                    if not m:
                        raise TemplateError(f"{self.name}: bad for: {header!r}")
                    var_names = [v.strip() for v in m.group(1).split(",")]
                    iterable = self._eval(m.group(2), ctx)
                    for item in iterable:
                        inner = dict(ctx)
                        if len(var_names) == 1:
                            inner[var_names[0]] = item
                        else:
                            for name, val in zip(var_names, item):
                                inner[name] = val
                        self._render_ops(ops, i + 1, close, inner, out)
                else:  # if
                    cond = self._eval(header[3:], ctx)
                    if cond:
                        self._render_ops(ops, i + 1, close, ctx, out)
                i = close
            elif kind == "end":
                pass
            i += 1

    @staticmethod
    def _find_close(ops, start, end) -> int:
        depth = 0
        for i in range(start, end):
            if ops[i][0] == "block":
                depth += 1
            elif ops[i][0] == "end":
                depth -= 1
                if depth == 0:
                    return i
        raise TemplateError("unclosed block")  # pragma: no cover - compile checks

    def _eval(self, expr: str, ctx: Dict[str, Any]) -> Any:
        try:
            return eval(  # noqa: S307 - sandboxed: no builtins beyond whitelist
                expr, {"__builtins__": _SAFE_BUILTINS}, ctx
            )
        except Exception as exc:
            raise TemplateError(
                f"{self.name}: error evaluating {expr!r}: {exc}"
            ) from exc


def render_template(source: str, **context: Any) -> str:
    """One-shot helper: compile and render."""
    return Template(source).render(context)
