"""Minimal, safe HTML construction.

The real dashboard renders HTML through ERB templates + Bootstrap; here a
tiny element builder gives us the same artifact (accessible HTML strings)
without a browser.  All text content is escaped by default — the privacy
posture of the dashboard extends to not letting job names inject markup.
"""

from __future__ import annotations

import html as _html
from typing import Iterable, Mapping, Optional, Union

Child = Union[str, "Element", None]

#: elements that never take children (rendered self-closed)
VOID_ELEMENTS = frozenset({"br", "hr", "img", "input", "meta", "link"})


def escape(text: object) -> str:
    """Escape text for HTML content or attribute values."""
    return _html.escape(str(text), quote=True)


class Element:
    """One HTML element; renders deterministically (sorted attrs)."""

    __slots__ = ("tag", "attrs", "children")

    def __init__(self, tag: str, attrs: Optional[Mapping[str, object]] = None,
                 children: Iterable[Child] = ()):
        if not tag.isalnum():
            raise ValueError(f"suspicious tag name {tag!r}")
        self.tag = tag
        self.attrs = dict(attrs or {})
        self.children = [c for c in children if c is not None]
        if self.tag in VOID_ELEMENTS and self.children:
            raise ValueError(f"<{tag}> cannot have children")

    def render(self) -> str:
        """Serialize the element (attributes sorted, text escaped)."""
        attr_str = "".join(
            f' {name}="{escape(value)}"'
            for name, value in sorted(self.attrs.items())
            if value is not None and value is not False
        )
        if self.tag in VOID_ELEMENTS:
            return f"<{self.tag}{attr_str}/>"
        inner = "".join(
            child.render() if isinstance(child, Element) else escape(child)
            for child in self.children
        )
        return f"<{self.tag}{attr_str}>{inner}</{self.tag}>"

    def __str__(self) -> str:
        return self.render()

    # -- querying (test convenience) --------------------------------------

    def find_all(self, tag: Optional[str] = None, cls: Optional[str] = None) -> list:
        """Depth-first search by tag and/or CSS class."""
        found = []
        for child in self.children:
            if isinstance(child, Element):
                if (tag is None or child.tag == tag) and (
                    cls is None or cls in str(child.attrs.get("class", "")).split()
                ):
                    found.append(child)
                found.extend(child.find_all(tag, cls))
        return found

    def text(self) -> str:
        """Concatenated text content (unescaped source text)."""
        parts = []
        for child in self.children:
            parts.append(child.text() if isinstance(child, Element) else str(child))
        return "".join(parts)


def el(tag: str, *children: Child, **attrs: object) -> Element:
    """Terse element constructor: ``el("div", "hi", cls="card")``.

    ``cls`` maps to the ``class`` attribute; ``data_foo`` to ``data-foo``.
    """
    mapped = {}
    for name, value in attrs.items():
        if name == "cls":
            name = "class"
        else:
            name = name.replace("_", "-")
        mapped[name] = value
    return Element(tag, mapped, children)


class RawHTML(Element):
    """Pre-rendered trusted markup (output of another component)."""

    __slots__ = ("_markup",)

    def __init__(self, markup: str):
        super().__init__("span", None, ())
        self._markup = markup

    def render(self) -> str:  # type: ignore[override]
        """Return the trusted markup verbatim."""
        return self._markup

    def text(self) -> str:  # type: ignore[override]
        return ""
