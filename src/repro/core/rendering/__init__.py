"""HTML rendering: safe elements, ERB-style templates, dashboard components."""

from .components import (
    accordion,
    badge,
    brownout_banner,
    card,
    data_table,
    degraded_banner,
    loading_placeholder,
    node_grid_cell,
    page_shell,
    progress_bar,
    tabs,
    timeline,
    tooltip_span,
)
from .document import STYLESHEET, render_document
from .html import Element, RawHTML, el, escape
from .templates import Template, TemplateError, render_template

__all__ = [
    "accordion",
    "badge",
    "brownout_banner",
    "card",
    "data_table",
    "degraded_banner",
    "loading_placeholder",
    "node_grid_cell",
    "page_shell",
    "progress_bar",
    "tabs",
    "timeline",
    "tooltip_span",
    "STYLESHEET",
    "render_document",
    "Element",
    "RawHTML",
    "el",
    "escape",
    "Template",
    "TemplateError",
    "render_template",
]
