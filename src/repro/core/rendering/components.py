"""Reusable dashboard components (the Bootstrap-card layer of the paper).

Each helper returns an :class:`~repro.core.rendering.html.Element` so
pages can compose, and tests can query structure (classes, colors,
ARIA attributes) without a browser.  Accessibility is part of the
paper's title — progress bars carry ``role="progressbar"`` + value
attributes, accordions use ``aria-expanded``, tooltips use ``title``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..colors import utilization_color
from .html import Element, el


def progress_bar(
    fraction: float,
    label: str = "",
    color: Optional[str] = None,
) -> Element:
    """Color-coded utilization bar (§3.3 thresholds by default)."""
    fraction = max(0.0, min(1.0, fraction))
    pct = round(fraction * 100, 1)
    color = color or utilization_color(fraction)
    return el(
        "div",
        el(
            "div",
            f"{pct:g}%",
            cls=f"progress-bar bg-{color}",
            style=f"width: {pct:g}%",
            role="progressbar",
            aria_valuenow=f"{pct:g}",
            aria_valuemin="0",
            aria_valuemax="100",
            aria_label=label or "utilization",
        ),
        cls="progress",
    )


def card(title: str, *body: object, footer: object = None, cls: str = "") -> Element:
    """A Bootstrap-style card with header/body/footer."""
    children: List[object] = [
        el("div", el("h5", title, cls="card-title"), cls="card-header"),
        el("div", *body, cls="card-body"),
    ]
    if footer is not None:
        children.append(el("div", footer, cls="card-footer"))
    return el("div", *children, cls=f"card {cls}".strip())


def badge(text: str, color: str) -> Element:
    """Status pill (job states, announcement categories...)."""
    return el("span", text, cls=f"badge badge-{color}")


def tooltip_span(text: str, tip: str) -> Element:
    """Hoverable text: the My Jobs reason/status tooltips (§3.2, §4.1)."""
    return el("span", text, title=tip, cls="has-tooltip", tabindex="0")


def accordion(items: Sequence[Tuple[str, object, dict]]) -> Element:
    """Accordion list (Announcements widget layout, §3.1).

    ``items`` are ``(header, body, extra)`` where extra may carry
    ``color``, ``style`` ("active"/"past") and ``subtitle``.
    """
    entries = []
    for i, (header, body, extra) in enumerate(items):
        color = extra.get("color", "gray")
        style = extra.get("style", "active")
        subtitle = extra.get("subtitle", "")
        head_children: List[object] = [el("strong", header)]
        if subtitle:
            head_children.append(el("small", subtitle, cls="text-muted"))
        entries.append(
            el(
                "div",
                el(
                    "button",
                    *head_children,
                    cls=f"accordion-header border-{color} item-{style}",
                    aria_expanded="false",
                    aria_controls=f"accordion-body-{i}",
                ),
                el(
                    "div",
                    body,
                    cls="accordion-body collapse",
                    id=f"accordion-body-{i}",
                ),
                cls=f"accordion-item item-{style}",
            )
        )
    return el("div", *entries, cls="accordion")


def data_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    cls: str = "",
    sortable: bool = True,
    row_attrs: Optional[Sequence[dict]] = None,
) -> Element:
    """Sortable data table (the DataTables-flavoured job/node lists)."""
    head = el(
        "tr",
        *[
            el("th", h, scope="col", data_sortable="true" if sortable else None)
            for h in headers
        ],
    )
    body_rows = []
    rows = list(rows)
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
        attrs = dict(row_attrs[i]) if row_attrs else {}
        body_rows.append(
            el("tr", *[c if isinstance(c, Element) else el("td", c) for c in map(_cell, row)], **attrs)
        )
    return el(
        "table",
        el("thead", head),
        el("tbody", *body_rows),
        cls=f"table data-table {cls}".strip(),
    )


def _cell(value: object) -> Element:
    if isinstance(value, Element) and value.tag == "td":
        return value
    if isinstance(value, Element):
        return el("td", value)
    return el("td", "" if value is None else str(value))


def tabs(panes: Sequence[Tuple[str, object]], active: int = 0) -> Element:
    """Tabbed section (Job Overview / Node Overview bottom sections)."""
    if not panes:
        raise ValueError("tabs need at least one pane")
    if not (0 <= active < len(panes)):
        raise ValueError(f"active index {active} out of range")
    nav = el(
        "ul",
        *[
            el(
                "li",
                el(
                    "button",
                    title_,
                    cls="nav-link" + (" active" if i == active else ""),
                    role="tab",
                    aria_selected="true" if i == active else "false",
                    aria_controls=f"tab-pane-{i}",
                ),
                cls="nav-item",
            )
            for i, (title_, _) in enumerate(panes)
        ],
        cls="nav nav-tabs",
        role="tablist",
    )
    bodies = [
        el(
            "div",
            body,
            cls="tab-pane" + (" active" if i == active else ""),
            id=f"tab-pane-{i}",
            role="tabpanel",
        )
        for i, (_, body) in enumerate(panes)
    ]
    return el("div", nav, el("div", *bodies, cls="tab-content"), cls="tabs")


def node_grid_cell(name: str, color: str, tip: str, href: str) -> Element:
    """One color-coded square in the Cluster Status grid view (§6)."""
    return el(
        "a",
        el("span", name, cls="node-label"),
        cls=f"node-cell bg-{color}",
        title=tip,
        href=href,
        role="gridcell",
    )


def timeline(events: Sequence[Tuple[str, str, bool]], color: str) -> Element:
    """Job Overview timeline (§7): (label, timestamp, reached) markers."""
    dots = []
    for label, stamp, reached in events:
        dots.append(
            el(
                "div",
                el("span", cls=f"timeline-dot {'filled' if reached else 'hollow'} bg-{color}"),
                el("div", label, cls="timeline-label"),
                el("div", stamp, cls="timeline-time"),
                cls="timeline-event" + (" reached" if reached else ""),
            )
        )
    return el("div", *dots, cls=f"timeline border-{color}")


def loading_placeholder(component: str) -> Element:
    """The loading animation shown while a component fetches (§2.3) —
    the dashboard loads instantly and fills in, instead of blanking."""
    return el(
        "div",
        el("span", cls="spinner", role="status", aria_hidden="true"),
        el("span", f"Loading {component}…", cls="sr-only"),
        cls="component-loading",
        data_component=component,
    )


def degraded_banner(stale_age_s: float) -> Element:
    """Degraded-mode notice shown atop a widget that is serving cached
    data because its backend is unreachable (the serve-stale path)."""
    if stale_age_s >= 120:
        age = f"{stale_age_s / 60:.0f} min"
    else:
        age = f"{stale_age_s:.0f} s"
    return el(
        "div",
        el("span", "⚠", cls="degraded-icon", aria_hidden="true"),
        f"Live data unavailable — showing cached data from {age} ago.",
        cls="degraded-banner alert alert-warning",
        role="status",
        aria_live="polite",
        data_stale_age_s=f"{stale_age_s:.0f}",
    )


def brownout_banner(tier: str) -> Element:
    """Site-wide notice shown when the admission controller has left
    normal operation: expensive widgets are paused (brownout) or most
    routes are being shed to protect the Slurm daemons."""
    if tier == "shed":
        message = (
            "The dashboard is under heavy load — only essential pages are"
            " being served right now."
        )
    else:
        message = (
            "The dashboard is under load — some widgets are paused and"
            " data may update less often."
        )
    return el(
        "div",
        el("span", "⚠", cls="degraded-icon", aria_hidden="true"),
        message,
        cls="brownout-banner alert alert-warning",
        role="status",
        aria_live="polite",
        data_tier=tier,
    )


def page_shell(title: str, username: str, *content: object) -> Element:
    """The dashboard page chrome: nav bar with the pre-rendered username
    (the one piece of server-side data ERB injects up front, §2.2.1)."""
    return el(
        "div",
        el(
            "nav",
            el("span", "HPC Dashboard", cls="navbar-brand"),
            el("span", f"Logged in as {username}", cls="navbar-user"),
            cls="navbar",
            role="navigation",
        ),
        el("main", *content, role="main", id="content"),
        cls="dashboard-shell",
        data_page=title,
    )
