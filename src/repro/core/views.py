"""Event-driven cache invalidation, materialized views, and delta endpoints.

ROADMAP item 2: the scheduler is already event-driven, so instead of every
route polling daemons through TTLs, the serving layer *subscribes* to the
cluster's :class:`~repro.sim.bus.EventBus` and keeps the hot cache entries
current itself:

* **Targeted invalidation** — a :class:`~repro.sim.bus.StateChange` names
  the job/user/account/nodes it touched; :class:`ViewMaterializer` maps
  that onto the cache-key naming convention (``squeue:<user>``,
  ``scontrol_job:<id>``, ...) and calls :meth:`TTLCache.invalidate` on
  exactly the entries whose dependency sets cover the change.  The next
  request recomputes from post-change state — no TTL wait — and the
  per-key epoch guarantees an in-flight compute cannot resurrect the
  stale value.

* **Materialized snapshots** — the hub *learns* the compute closure of
  every view-managed fetch the first time a route runs it (via
  :meth:`DashboardContext._cached`), and on each scheduler pass re-runs
  the learned computes, storing fresh entries with a long fallback TTL
  (:meth:`CachePolicy.serve_ttl_for`).  Homepage widgets, job overview
  and node overview then read a ready view: their latency decouples from
  ctld RPC cost entirely, and every learned entry is re-materialized at
  the pass instant so time-derived fields (elapsed, wait) are exactly
  what an on-request compute at that instant would produce.

* **Delta endpoints** — :class:`DeltaView` keeps a cursor'd record map
  per view (jobs, nodes).  ``GET /api/v1/views/<name>?since=<cursor>``
  returns only the records changed past the cursor (plus tombstones for
  removals), so a client refresh costs bytes proportional to what
  changed; replaying deltas from any cursor reconstructs the full
  snapshot exactly.

Modeled on the collector→schema→exporter pipeline of gcm's
``slurm_monitor`` and the fleet-wide live views of HPCClusterScape.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.auth import Viewer
from repro.sim.bus import StateChange

from .caching import VIEW_SOURCES
from .params import ParamError
from .routes import ApiRoute

#: StateChange kinds the hub reacts to (``sched_pass`` triggers the flush)
CHANGE_KINDS = (
    "job_submitted",
    "job_started",
    "job_ended",
    "node_state",
    "sched_pass",
)


class ViewMetrics:
    """The ``repro_view_*`` metric families, pre-seeded so every family
    is present in ``/metrics`` from the first scrape."""

    def __init__(self, registry) -> None:
        self.events = registry.counter(
            "repro_view_events_total",
            "StateChange records the view hub received, by kind.",
            ("kind",),
        )
        for kind in CHANGE_KINDS:
            self.events.inc(0.0, kind=kind)
        self.invalidations = registry.counter(
            "repro_view_invalidations_total",
            "Cache entries invalidated by state-change events, by source.",
            ("source",),
        )
        self.refreshes = registry.counter(
            "repro_view_refreshes_total",
            "Materialized-view refreshes run at scheduler passes, by source "
            "and result.",
            ("source", "result"),
        )
        for source in VIEW_SOURCES:
            self.invalidations.inc(0.0, source=source)
            self.refreshes.inc(0.0, source=source, result="ok")
            self.refreshes.inc(0.0, source=source, result="error")
        self.materialized_keys = registry.gauge(
            "repro_view_materialized_keys",
            "Cache keys whose compute the view hub has learned and keeps "
            "materialized.",
        )
        self.materialized_keys.set(0.0)
        self.delta_requests = registry.counter(
            "repro_view_delta_requests_total",
            "View-endpoint requests, by view and response shape.",
            ("view", "shape"),
        )
        self.delta_records = registry.counter(
            "repro_view_delta_records_total",
            "Records carried by view-endpoint responses, by view.",
            ("view",),
        )
        self.cursor = registry.gauge(
            "repro_view_cursor",
            "Monotonic change cursor per materialized view.",
            ("view",),
        )
        for view in ("jobs", "nodes"):
            self.delta_requests.inc(0.0, view=view, shape="full")
            self.delta_requests.inc(0.0, view=view, shape="delta")
            self.delta_records.inc(0.0, view=view)
            self.cursor.set(0.0, view=view)


def _source_of(full_key: str) -> str:
    return full_key.split(":", 1)[0]


class ViewMaterializer:
    """Subscribes to the cluster bus; turns state changes into targeted
    invalidations and pass-time re-materialization of learned entries."""

    #: safety cap on learned computes (a compute is ~one closure; the cap
    #: only matters if key cardinality explodes, e.g. per-user keys under
    #: a synthetic million-user load — beyond it, new keys stay TTL-driven)
    MAX_LEARNED = 4096

    def __init__(self, cache, policy, metrics: ViewMetrics, tracer, clock):
        self.cache = cache
        self.policy = policy
        self.metrics = metrics
        self.tracer = tracer
        self.clock = clock
        self._lock = threading.Lock()
        #: full cache key -> (source, compute) for every view-managed
        #: fetch a route has run at least once
        self._learned: Dict[str, Tuple[str, Callable[[], Any]]] = {}
        #: keys invalidated since the last flush
        self._dirty: set = set()
        self.flushes = 0

    # -- learning ---------------------------------------------------------

    def learn(self, source: str, key: str, compute: Callable[[], Any]) -> None:
        """Remember how to recompute one cache entry (idempotent).

        Called by :meth:`DashboardContext._cached` on every fetch of a
        view-managed source; the closure re-runs the same backend command
        the route would, so a flush produces byte-identical values."""
        if source not in VIEW_SOURCES:
            return
        full_key = f"{source}:{key}"
        with self._lock:
            if full_key in self._learned:
                # keep the freshest closure: captured scope (e.g. a
                # viewer's account list) may have changed
                self._learned[full_key] = (source, compute)
                return
            if len(self._learned) >= self.MAX_LEARNED:
                return
            self._learned[full_key] = (source, compute)
            self.metrics.materialized_keys.set(float(len(self._learned)))

    def _unlearn(self, full_key: str) -> None:
        with self._lock:
            self._learned.pop(full_key, None)
            self.metrics.materialized_keys.set(float(len(self._learned)))

    def learned_keys(self) -> List[str]:
        with self._lock:
            return sorted(self._learned)

    # -- event -> cache-key scope rules -----------------------------------

    def keys_for(self, change: StateChange) -> List[str]:
        """The cache keys whose dependency sets cover one state change,
        derived from the ``<source>:<key>`` naming convention."""
        keys: List[str] = []
        if change.kind in ("job_submitted", "job_started", "job_ended"):
            if change.user:
                keys.append(f"squeue:{change.user}")
            keys.append("squeue:__all__")
            keys.append("sinfo:all")
            if change.job_id is not None:
                keys.append(f"scontrol_job:{change.job_id}")
            if change.account:
                keys.append(f"scontrol_assoc:{change.account}")
            if change.nodes:
                keys.append("scontrol_node:all")
                keys.extend(f"scontrol_node:{n}" for n in change.nodes)
            if change.kind == "job_ended":
                # accounting rolls the job up the moment it retires
                with self._lock:
                    learned = list(self._learned)
                prefix = f"sacct:{change.user}:"
                keys.extend(k for k in learned if k.startswith(prefix))
                if change.account:
                    keys.append(f"sacct:usage:{change.account}")
        elif change.kind == "node_state":
            keys.append("sinfo:all")
            keys.append("scontrol_node:all")
            keys.extend(f"scontrol_node:{n}" for n in change.nodes)
        return keys

    # -- bus subscription --------------------------------------------------

    def on_change(self, change: StateChange) -> None:
        """Bus subscriber: invalidate covered keys; flush on sched_pass."""
        self.metrics.events.inc(kind=change.kind)
        if change.kind == "sched_pass":
            self.flush()
            return
        for key in self.keys_for(change):
            self.cache.invalidate(key)
            self.metrics.invalidations.inc(source=_source_of(key))
            with self._lock:
                self._dirty.add(key)

    # -- pass-time re-materialization --------------------------------------

    def flush(self) -> int:
        """Re-materialize learned entries at the current sim instant.

        Refreshes every learned key that is dirty *or* whose entry was
        stored at an earlier instant — so after a pass at time T, every
        learned view reflects exactly what an on-request compute at T
        would produce (time-derived fields included), and routes serve it
        with zero on-request backend RPCs.  A failing compute leaves its
        key invalidated (requests fall back to the resilient fetch path)
        and is unlearned until a route re-teaches it.
        """
        now = self.clock.now()
        with self._lock:
            targets = list(self._learned.items())
            dirty = set(self._dirty)
            self._dirty.clear()
        refreshed = 0
        with self.tracer.span(
            "views:flush", kind="view", attrs={"learned": len(targets)}
        ) as span:
            for full_key, (source, compute) in targets:
                entry = self.cache.entry(full_key)
                if (
                    full_key not in dirty
                    and entry is not None
                    and entry.stored_at >= now
                ):
                    continue  # already materialized at this instant
                try:
                    with self.tracer.span(
                        f"view:{source}", kind="view", attrs={"key": full_key}
                    ):
                        value = compute()
                except Exception:
                    # leave the key invalidated: the next request takes
                    # the resilient fetch path (retries, breakers, stale)
                    self.cache.invalidate(full_key)
                    self._unlearn(full_key)
                    self.metrics.refreshes.inc(source=source, result="error")
                    continue
                self.cache.write(
                    full_key, value, ttl=self.policy.serve_ttl_for(source)
                )
                self.metrics.refreshes.inc(source=source, result="ok")
                refreshed += 1
            span.attrs["refreshed"] = refreshed
        self.flushes += 1
        return refreshed


class DeltaView:
    """A cursor'd record map supporting ``?since=<cursor>`` delta reads.

    Each :meth:`sync` diffs a fresh snapshot against the stored one; keys
    whose payload changed (or appeared) are stamped with the next cursor
    value, removed keys get a tombstone at that cursor.  Tombstones are
    retained indefinitely (bounded by the total distinct keys ever seen),
    which is what makes replay-from-any-cursor exact.
    """

    def __init__(self, name: str):
        self.name = name
        self.cursor = 0
        self._synced_generation: Optional[int] = None
        self._records: Dict[str, Tuple[int, Dict[str, Any]]] = {}
        self._tombstones: Dict[str, int] = {}
        self._lock = threading.Lock()

    def sync(
        self, generation: Optional[int], records: Dict[str, Dict[str, Any]]
    ) -> None:
        """Fold a fresh snapshot in.  ``generation`` is the cache-entry
        write generation the snapshot came from: an unchanged generation
        means the snapshot bytes cannot have changed, so the diff is
        skipped entirely."""
        with self._lock:
            if (
                generation is not None
                and generation == self._synced_generation
            ):
                return
            next_cursor = self.cursor + 1
            changed = False
            for key, payload in records.items():
                old = self._records.get(key)
                if old is None or old[1] != payload:
                    self._records[key] = (next_cursor, payload)
                    self._tombstones.pop(key, None)
                    changed = True
            for key in list(self._records):
                if key not in records:
                    del self._records[key]
                    self._tombstones[key] = next_cursor
                    changed = True
            if changed:
                self.cursor = next_cursor
            self._synced_generation = generation

    def since(
        self,
        cursor: Optional[int],
        visible: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> Dict[str, Any]:
        """The delta payload past ``cursor`` (full snapshot when ``None``
        or ahead of the view).  ``visible`` filters records at serve time
        (viewer scoping); tombstones are never filtered — a key the
        viewer could once see must still be removable client-side."""
        with self._lock:
            full = cursor is None or cursor > self.cursor
            if full:
                items = [
                    (key, payload)
                    for key, (_, payload) in self._records.items()
                ]
                removed: List[str] = []
            else:
                items = [
                    (key, payload)
                    for key, (version, payload) in self._records.items()
                    if version > cursor
                ]
                removed = sorted(
                    key
                    for key, version in self._tombstones.items()
                    if version > cursor
                )
            out_cursor = self.cursor
        if visible is not None:
            items = [(k, p) for k, p in items if visible(p)]
        items.sort(key=lambda kv: kv[0])
        return {
            "view": self.name,
            "cursor": out_cursor,
            "full": full,
            "records": [
                dict(payload, key=key) for key, payload in items
            ],
            "removed": removed,
        }


# -- view route handlers -----------------------------------------------------


def _since_param(params: Dict[str, Any]) -> Optional[int]:
    raw = params.get("since")
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, int) or raw < 0:
        raise ParamError(f"since must be a non-negative integer, got {raw!r}")
    return raw


def _round_opt(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 3)


def _job_payload(rec, now: float) -> Dict[str, Any]:
    return {
        "job_id": rec.job_id,
        "display_id": rec.display_id,
        "name": rec.name,
        "user": rec.user,
        "account": rec.account,
        "partition": rec.partition,
        "state": rec.state.value,
        "reason": rec.reason,
        "nodes": list(rec.nodes),
        "cpus": rec.req.cpus,
        "submit_time": _round_opt(rec.submit_time),
        "start_time": _round_opt(rec.start_time),
        "end_time": _round_opt(rec.end_time),
        "elapsed_s": round(rec.elapsed(now), 3),
        "wait_s": round(rec.wait_time(now), 3),
    }


def _node_payload(rec) -> Dict[str, Any]:
    return {
        "name": rec.name,
        "state": rec.state,
        "cpus_total": rec.cpus_total,
        "cpus_alloc": rec.cpus_alloc,
        "memory_total_mb": rec.memory_total_mb,
        "memory_alloc_mb": rec.memory_alloc_mb,
        "gpus_total": rec.gpus_total,
        "gpus_alloc": rec.gpus_alloc,
        "partitions": list(rec.partitions),
        "reason": rec.reason,
    }


def jobs_view_data(ctx, viewer: Viewer, params: Dict[str, Any]) -> Dict[str, Any]:
    """Route handler: the live queue as a cursor'd delta view.

    The underlying snapshot is the shared ``squeue:__all__`` cache entry
    (event-invalidated, pass-materialized); visibility is applied per
    record at serve time, so the cursor is global while each viewer only
    receives the jobs the My Jobs privacy rule lets them see."""
    since = _since_param(params)
    records = ctx.cluster_queue()
    now = ctx.now()
    view: DeltaView = ctx.delta_views["jobs"]
    view.sync(
        ctx.cache.generation_of("squeue:__all__"),
        {str(rec.job_id): _job_payload(rec, now) for rec in records},
    )
    payload = view.since(
        since, visible=lambda p: ctx.policy.can_see_job(viewer, _RecordProxy(p))
    )
    _count_delta(ctx, "jobs", payload)
    return payload


def nodes_view_data(ctx, viewer: Viewer, params: Dict[str, Any]) -> Dict[str, Any]:
    """Route handler: all nodes as a cursor'd delta view (public data —
    the Cluster Status grid shows every node to every viewer)."""
    since = _since_param(params)
    records = ctx.node_records()
    view: DeltaView = ctx.delta_views["nodes"]
    view.sync(
        ctx.cache.generation_of("scontrol_node:all"),
        {rec.name: _node_payload(rec) for rec in records},
    )
    payload = view.since(since)
    _count_delta(ctx, "nodes", payload)
    return payload


class _RecordProxy:
    """Adapts a view-record payload dict to the ``job.user``/``job.account``
    attribute shape :meth:`PermissionPolicy.can_see_job` expects."""

    __slots__ = ("user", "account")

    def __init__(self, payload: Dict[str, Any]):
        self.user = payload.get("user", "")
        self.account = payload.get("account", "")


def _count_delta(ctx, view: str, payload: Dict[str, Any]) -> None:
    metrics: ViewMetrics = ctx.view_metrics
    shape = "full" if payload["full"] else "delta"
    metrics.delta_requests.inc(view=view, shape=shape)
    metrics.delta_records.inc(float(len(payload["records"])), view=view)
    metrics.cursor.set(float(payload["cursor"]), view=view)


JOBS_VIEW_ROUTE = ApiRoute(
    name="jobs_view",
    path="/api/v1/views/jobs",
    feature="Jobs delta view",
    data_sources=("squeue",),
    handler=jobs_view_data,
    client_max_age_s=15.0,
)

NODES_VIEW_ROUTE = ApiRoute(
    name="nodes_view",
    path="/api/v1/views/nodes",
    feature="Nodes delta view",
    data_sources=("scontrol show node",),
    handler=nodes_view_data,
    client_max_age_s=30.0,
)

VIEW_ROUTES = (JOBS_VIEW_ROUTE, NODES_VIEW_ROUTE)
