"""The dashboard's status-color contract.

Collected in one module because the paper applies the same coding rules
across widgets and pages:

* utilization progress bars: green < 70 %, yellow 70–90 %, red > 90 % (§3.3);
* announcements: outage red, maintenance yellow, other gray; past items
  faded (§3.1);
* node grid: allocated/mixed green, idle faded green, drained yellow,
  maintenance orange, down red (§6);
* each job state gets a stable color and friendly label (§7).
"""

from __future__ import annotations

from repro.news.api import Article, Category
from repro.slurm.model import JobState, NodeState

GREEN = "green"
FADED_GREEN = "faded-green"
YELLOW = "yellow"
ORANGE = "orange"
RED = "red"
GRAY = "gray"
BLUE = "blue"

#: §3.3 thresholds, shared by System Status, Storage, Node Overview bars
UTILIZATION_WARNING = 0.70
UTILIZATION_CRITICAL = 0.90


def utilization_color(fraction: float) -> str:
    """Color for a utilization fraction in [0, 1] (values above 1 clamp red)."""
    if fraction < 0:
        raise ValueError(f"utilization cannot be negative: {fraction}")
    if fraction < UTILIZATION_WARNING:
        return GREEN
    if fraction <= UTILIZATION_CRITICAL:
        return YELLOW
    return RED


def announcement_color(category: Category) -> str:
    """§3.1: outages red, maintenance yellow, everything else gray."""
    if category is Category.OUTAGE:
        return RED
    if category is Category.MAINTENANCE:
        return YELLOW
    return GRAY


def announcement_style(article: Article, now: float) -> str:
    """'active' for current/future announcements, 'past' (faint gray) for
    elapsed ones (§3.1)."""
    return "past" if article.is_past(now) else "active"


_NODE_COLORS = {
    NodeState.ALLOCATED: GREEN,
    NodeState.MIXED: GREEN,
    NodeState.IDLE: FADED_GREEN,
    NodeState.DRAINED: YELLOW,
    NodeState.DRAINING: YELLOW,
    NodeState.MAINT: ORANGE,
    NodeState.DOWN: RED,
}


def node_state_color(state: NodeState) -> str:
    """§6 grid-view palette."""
    return _NODE_COLORS[state]


_JOB_COLORS = {
    JobState.PENDING: YELLOW,
    JobState.RUNNING: BLUE,
    JobState.SUSPENDED: ORANGE,
    JobState.COMPLETED: GREEN,
    JobState.CANCELLED: GRAY,
    JobState.FAILED: RED,
    JobState.TIMEOUT: ORANGE,
    JobState.NODE_FAIL: RED,
    JobState.OUT_OF_MEMORY: RED,
    JobState.PREEMPTED: ORANGE,
}

_JOB_LABELS = {
    JobState.PENDING: "Queued",
    JobState.RUNNING: "Running",
    JobState.SUSPENDED: "Suspended",
    JobState.COMPLETED: "Completed",
    JobState.CANCELLED: "Cancelled",
    JobState.FAILED: "Failed",
    JobState.TIMEOUT: "Timed out",
    JobState.NODE_FAIL: "Node failure",
    JobState.OUT_OF_MEMORY: "Out of memory",
    JobState.PREEMPTED: "Preempted",
}


def job_state_color(state: JobState) -> str:
    """Stable display color for a job state."""
    return _JOB_COLORS[state]


def job_state_label(state: JobState) -> str:
    """Human label shown instead of Slurm's ALL-CAPS state names."""
    return _JOB_LABELS[state]
