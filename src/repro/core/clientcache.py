"""Client-side cache — the IndexedDB layer of the paper (§2.4).

The frontend stores API responses in IndexedDB so that "the user almost
always instantly sees the full component showing near real-time data
upon opening the dashboard rather than watching a loading screen."

:class:`IndexedDBStore` models the browser store: named object stores,
keyed records, a schema version (bumping it drops old stores, like an
``onupgradeneeded`` handler that recreates them).  :class:`ClientCache`
adds the dashboard's read pattern — *stale-while-revalidate*: render the
cached copy immediately (even stale), then refresh in the background when
it is older than the component's freshness window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.clock import SimClock


@dataclass
class StoredRecord:
    key: str
    value: Any
    stored_at: float
    #: the server's ETag for this payload, when one was sent — lets a
    #: later revalidation be conditional (If-None-Match → 304, no body)
    etag: Optional[str] = None


class IndexedDBStore:
    """A minimal IndexedDB: versioned schema, named object stores."""

    def __init__(self, name: str = "dashboard-cache", version: int = 1):
        if version < 1:
            raise ValueError("IndexedDB versions start at 1")
        self.name = name
        self.version = version
        self._stores: Dict[str, Dict[str, StoredRecord]] = {}
        #: ``onupgradeneeded`` handlers: run after a schema bump drops the
        #: old stores, so owners recreate theirs and continue cold
        self._upgrade_hooks: List[Callable[["IndexedDBStore"], None]] = []

    # -- schema ---------------------------------------------------------------

    def create_store(self, store: str) -> None:
        """Create a named object store (ValueError on duplicates)."""
        if store in self._stores:
            raise ValueError(f"object store {store!r} already exists")
        self._stores[store] = {}

    def has_store(self, store: str) -> bool:
        """True if the named object store exists."""
        return store in self._stores

    def on_upgrade(self, hook: Callable[["IndexedDBStore"], None]) -> None:
        """Register an ``onupgradeneeded`` handler, called after every
        schema bump (with this store as its argument)."""
        self._upgrade_hooks.append(hook)

    def upgrade(self, new_version: int) -> None:
        """Schema bump: drop every object store, then run the registered
        ``onupgradeneeded`` hooks.  The contract is recreate-then-continue
        — cache data is disposable by design, the stores themselves are
        not, so owners that registered a hook start cold instead of
        crashing on the next access."""
        if new_version <= self.version:
            raise ValueError(
                f"new version {new_version} must exceed current {self.version}"
            )
        self.version = new_version
        self._stores.clear()
        for hook in self._upgrade_hooks:
            hook(self)

    # -- records ---------------------------------------------------------------

    def _store(self, store: str) -> Dict[str, StoredRecord]:
        try:
            return self._stores[store]
        except KeyError:
            raise KeyError(f"no object store {store!r}") from None

    def put(self, store: str, key: str, value: Any, now: float,
            etag: Optional[str] = None) -> None:
        """Insert or replace a record, stamping it with ``now``."""
        self._store(store)[key] = StoredRecord(
            key=key, value=value, stored_at=now, etag=etag
        )

    def get(self, store: str, key: str) -> Optional[StoredRecord]:
        """The stored record for ``key``, or None."""
        return self._store(store).get(key)

    def delete(self, store: str, key: str) -> bool:
        """Remove one record; returns True if it existed."""
        return self._store(store).pop(key, None) is not None

    def count(self, store: str) -> int:
        """Number of records in an object store."""
        return len(self._store(store))

    def keys(self, store: str):
        """All record keys in an object store."""
        return list(self._store(store))


@dataclass
class FetchOutcome:
    """What one widget fetch produced, for rendering and instrumentation.

    ``served_from`` is "client-cache" when the widget rendered instantly
    from IndexedDB, "network" when it had to wait for the backend.
    ``revalidated`` notes that a background refresh also ran.
    """

    value: Any
    served_from: str
    age_s: float
    revalidated: bool


class ClientCache:
    """Stale-while-revalidate reads over an :class:`IndexedDBStore`."""

    STORE = "api-responses"

    def __init__(self, clock: SimClock, db: Optional[IndexedDBStore] = None):
        self.clock = clock
        self.db = db or IndexedDBStore()
        if not self.db.has_store(self.STORE):
            self.db.create_store(self.STORE)
        # recreate-then-continue: a schema bump drops our store; the hook
        # puts it back (empty) so the next fetch starts cold instead of
        # raising KeyError
        self.db.on_upgrade(self._recreate_store)
        self.instant_renders = 0
        self.network_waits = 0
        self.background_refreshes = 0
        #: revalidations the server answered 304 (payload unchanged)
        self.not_modified = 0
        #: delta revalidations (``?since=<cursor>``) that merged partial
        #: responses instead of refetching the whole payload
        self.delta_refreshes = 0
        self.delta_records_applied = 0

    def _recreate_store(self, db: IndexedDBStore) -> None:
        if not db.has_store(self.STORE):
            db.create_store(self.STORE)

    def _ensure_store(self) -> None:
        """Belt and braces for databases shared with caches created before
        the upgrade hook existed: recreate the store on access."""
        if not self.db.has_store(self.STORE):
            self.db.create_store(self.STORE)

    def fetch(
        self,
        key: str,
        fetch_remote: Callable[[], Any],
        max_age_s: float = 30.0,
    ) -> FetchOutcome:
        """The dashboard's component-load pattern.

        * cached copy newer than ``max_age_s``: render it, no request;
        * cached but stale copy: render it **immediately** and refresh in
          the background (the user never watches a spinner);
        * nothing cached: block on the network like a first visit.
        """
        self._ensure_store()
        now = self.clock.now()
        rec = self.db.get(self.STORE, key)
        if rec is not None:
            age = now - rec.stored_at
            if age <= max_age_s:
                self.instant_renders += 1
                return FetchOutcome(
                    value=rec.value, served_from="client-cache", age_s=age,
                    revalidated=False,
                )
            # stale: show it now, revalidate behind the scenes
            self.instant_renders += 1
            self.background_refreshes += 1
            fresh = fetch_remote()
            self.db.put(self.STORE, key, fresh, self.clock.now())
            return FetchOutcome(
                value=rec.value, served_from="client-cache", age_s=age,
                revalidated=True,
            )
        self.network_waits += 1
        fresh = fetch_remote()
        self.db.put(self.STORE, key, fresh, self.clock.now())
        return FetchOutcome(
            value=fresh, served_from="network", age_s=0.0, revalidated=False
        )

    def fetch_conditional(
        self,
        key: str,
        fetch_conditional: Callable[[Optional[str]], Tuple[Any, Optional[str], bool]],
        max_age_s: float = 30.0,
    ) -> FetchOutcome:
        """:meth:`fetch`, but revalidations send the stored ETag.

        ``fetch_conditional(etag)`` must return ``(value, etag,
        not_modified)``: on a 304 the cached payload is kept (only its
        freshness stamp advances) and no body crossed the wire — the
        end-to-end completion of the §2.4 dual-layer story.
        """
        self._ensure_store()
        now = self.clock.now()
        rec = self.db.get(self.STORE, key)
        if rec is not None:
            age = now - rec.stored_at
            if age <= max_age_s:
                self.instant_renders += 1
                return FetchOutcome(
                    value=rec.value, served_from="client-cache", age_s=age,
                    revalidated=False,
                )
            # stale: show it now, revalidate (conditionally) behind the scenes
            self.instant_renders += 1
            self.background_refreshes += 1
            value, etag, not_modified = fetch_conditional(rec.etag)
            if not_modified:
                self.not_modified += 1
                # unchanged on the server: re-stamp the cached payload
                self.db.put(self.STORE, key, rec.value, self.clock.now(),
                            etag=etag or rec.etag)
            else:
                self.db.put(self.STORE, key, value, self.clock.now(), etag=etag)
            return FetchOutcome(
                value=rec.value, served_from="client-cache", age_s=age,
                revalidated=True,
            )
        self.network_waits += 1
        value, etag, _ = fetch_conditional(None)
        self.db.put(self.STORE, key, value, self.clock.now(), etag=etag)
        return FetchOutcome(
            value=value, served_from="network", age_s=0.0, revalidated=False
        )

    def fetch_delta(
        self,
        key: str,
        fetch_delta: Callable[[Optional[int]], Dict[str, Any]],
        max_age_s: float = 30.0,
    ) -> FetchOutcome:
        """:meth:`fetch` over a cursor'd delta endpoint (``?since=``).

        ``fetch_delta(since)`` must return the view-route payload:
        ``{"cursor": int, "full": bool, "records": [{"key": ..., ...}],
        "removed": [...]}``.  The cache stores the merged record map plus
        the cursor; a stale hit revalidates with ``since=<stored cursor>``
        so only changed records cross the wire, and the merge is applied
        in the background while the user sees the cached copy.
        """
        self._ensure_store()
        now = self.clock.now()
        rec = self.db.get(self.STORE, key)
        if rec is not None:
            age = now - rec.stored_at
            if age <= max_age_s:
                self.instant_renders += 1
                return FetchOutcome(
                    value=rec.value, served_from="client-cache", age_s=age,
                    revalidated=False,
                )
            # stale: render the cached snapshot, merge the delta behind it
            self.instant_renders += 1
            self.background_refreshes += 1
            self.delta_refreshes += 1
            state = dict(rec.value)
            payload = fetch_delta(state.get("cursor"))
            merged = self._apply_delta(state, payload)
            self.db.put(self.STORE, key, merged, self.clock.now())
            return FetchOutcome(
                value=rec.value, served_from="client-cache", age_s=age,
                revalidated=True,
            )
        self.network_waits += 1
        payload = fetch_delta(None)
        state = self._apply_delta({"cursor": None, "records": {}}, payload)
        self.db.put(self.STORE, key, state, self.clock.now())
        return FetchOutcome(
            value=state, served_from="network", age_s=0.0, revalidated=False
        )

    def _apply_delta(self, state: Dict[str, Any], payload: Dict[str, Any]) -> Dict[str, Any]:
        """Merge one delta response into the stored ``{cursor, records}``."""
        records: Dict[str, Any] = {} if payload.get("full") else dict(state.get("records") or {})
        for item in payload.get("records") or ():
            records[str(item["key"])] = item
            self.delta_records_applied += 1
        for gone in payload.get("removed") or ():
            records.pop(str(gone), None)
        return {"cursor": payload.get("cursor"), "records": records}

    def invalidate(self, key: str) -> bool:
        """Drop one cached response; returns True if it existed."""
        self._ensure_store()
        return self.db.delete(self.STORE, key)
