"""The Dashboard facade: wiring the whole paper's system together.

:class:`Dashboard` builds the context (cluster + directory + storage +
news behind the server cache) and registers every component route —
five widgets, five apps/pages, and the export endpoint — reproducing the
full Figure 1 architecture in one object.  :func:`build_demo_dashboard`
stands up a populated instance in one call for examples, tests and
benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.auth import Directory, Viewer
from repro.faults import (
    AdmissionConfig,
    BreakerConfig,
    Deadline,
    FaultPlan,
    RetryPolicy,
)
from repro.news.api import NewsAPI, seed_news
from repro.slurm.cluster import SlurmCluster
from repro.slurm.workload import WorkloadConfig, populated_cluster
from repro.storage.quota import (
    QuotaDatabase,
    provision_standard_layout,
    randomize_usage,
)

from .caching import CachePolicy
from .export import ROUTE as EXPORT_ROUTE
from .pages import ALL_PAGE_ROUTES
from .pages.homepage import (
    HomepageRender,
    render_homepage,
    render_homepage_shell,
    stream_homepage,
)
from .routes import DashboardContext, RouteRegistry, RouteResponse
from .views import VIEW_ROUTES
from .widgets import ALL_WIDGET_ROUTES


class Dashboard:
    """A fully wired dashboard instance over one cluster."""

    def __init__(
        self,
        cluster: SlurmCluster,
        directory: Directory,
        quotas: Optional[QuotaDatabase] = None,
        news: Optional[NewsAPI] = None,
        cache_policy: Optional[CachePolicy] = None,
        use_server_cache: bool = True,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        admission: Optional[AdmissionConfig] = None,
        worker_pool_size: int = 8,
        worker_queue_max: int = 64,
        cache_shards: int = 1,
        cache_max_entries: Optional[int] = None,
    ):
        if quotas is None:
            quotas = QuotaDatabase()
            provision_standard_layout(
                quotas,
                [u.username for u in directory.users()],
                [a.name for a in directory.accounts()],
                cluster_name=cluster.name,
            )
            randomize_usage(quotas, seed=0)
        if news is None:
            news = NewsAPI(cluster.clock)
            seed_news(news, cluster=cluster.name)
        self.ctx = DashboardContext(
            cluster=cluster,
            directory=directory,
            quotas=quotas,
            news=news,
            cache_policy=cache_policy,
            use_server_cache=use_server_cache,
            retry=retry,
            breaker=breaker,
            admission=admission,
            worker_pool_size=worker_pool_size,
            worker_queue_max=worker_queue_max,
            cache_shards=cache_shards,
            cache_max_entries=cache_max_entries,
        )
        self.registry = RouteRegistry()
        for route in (
            *ALL_WIDGET_ROUTES, *ALL_PAGE_ROUTES, *VIEW_ROUTES, EXPORT_ROUTE
        ):
            self.registry.register(route)

    # -- request API ---------------------------------------------------------

    def call(
        self,
        name: str,
        viewer: Viewer,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[Deadline] = None,
    ) -> RouteResponse:
        """Invoke one component route (with failure isolation)."""
        return self.registry.call(self.ctx, name, viewer, params, deadline=deadline)

    def get(
        self,
        path: str,
        viewer: Viewer,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[Deadline] = None,
    ) -> RouteResponse:
        """Invoke by URL path (what the HTTP layer does)."""
        route = self.registry.by_path(path)
        if route is None:
            return RouteResponse(ok=False, error=f"no route at {path!r}", status=404)
        return self.registry.call(self.ctx, route.name, viewer, params, deadline=deadline)

    # -- page rendering ---------------------------------------------------------

    def render_homepage(self, viewer: Viewer, parallel: bool = True) -> HomepageRender:
        """Fetch every widget and render the full homepage (Figure 2).

        Widgets fan out concurrently on the shared worker pool by
        default; ``parallel=False`` renders sequentially (same bytes,
        Σ(widget) latency — the benchmark baseline)."""
        return render_homepage(self.ctx, self.registry, viewer, parallel=parallel)

    def stream_homepage(self, viewer: Viewer):
        """Stream the homepage in document-order chunks: the static shell
        first, each widget slot as its fan-out worker completes.  The
        concatenated chunks match :meth:`render_homepage`'s document (the
        HTTP layer serves this under chunked transfer encoding)."""
        return stream_homepage(self.ctx, self.registry, viewer)

    def render_homepage_shell(self, viewer: Viewer) -> str:
        """Render the instant shell with loading placeholders (§2.3)."""
        return render_homepage_shell(viewer.username).render()

    # -- fault injection -------------------------------------------------------

    def inject_faults(self, plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
        """Install a chaos schedule on the cluster's daemons (``None``
        removes it).  Returns the plan for chaining."""
        self.ctx.cluster.daemons.install_faults(plan)
        return plan

    # -- introspection -------------------------------------------------------

    def healthz_payload(self) -> Dict[str, Any]:
        """The ``/healthz`` body: breaker states per backend (for
        operators watching a degraded cluster recover; the same call
        mirrors the states into the /metrics gauge) and the admission
        tier + signals — stays live even while the dashboard is
        shedding load.  The federated dashboard overrides this with a
        per-cluster shape."""
        return {
            "ok": True,
            "service": "repro-dashboard",
            "breakers": self.ctx.breaker_report(),
            "admission": self.ctx.admission_report(),
        }

    def feature_table(self) -> List[Dict[str, str]]:
        """Regenerate the paper's Table 1 from the registered routes."""
        rows = []
        for route in self.registry.all_routes():
            if route.name in (
                "homepage",
                "account_usage_export",
                "admin_overview",
                "news_page",
                "my_sessions",
                "jobs_view",
                "nodes_view",
            ):
                continue  # Table 1 lists exactly the paper's ten features
            rows.append(
                {
                    "feature": route.feature,
                    "data_sources": ", ".join(route.data_sources),
                }
            )
        return rows

    @property
    def clock(self):
        return self.ctx.clock


def build_demo_dashboard(
    seed: int = 2025,
    duration_hours: float = 6.0,
    workload: Optional[WorkloadConfig] = None,
    cache_policy: Optional[CachePolicy] = None,
    use_server_cache: bool = True,
    admission: Optional[AdmissionConfig] = None,
    cache_shards: int = 1,
    cache_max_entries: Optional[int] = None,
):
    """One-call demo instance: populated cluster + directory + dashboard.

    Returns ``(dashboard, directory, workload_result)``.
    """
    cluster, directory, result = populated_cluster(
        seed=seed,
        duration_hours=duration_hours,
        config=workload or WorkloadConfig(seed=seed),
    )
    dash = Dashboard(
        cluster,
        directory,
        cache_policy=cache_policy,
        use_server_cache=use_server_cache,
        admission=admission,
        cache_shards=cache_shards,
        cache_max_entries=cache_max_entries,
    )
    return dash, directory, result
