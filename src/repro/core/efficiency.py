"""Job efficiency metrics and warnings (paper §4.1, §4.3).

Three efficiencies, as defined by the paper's Toggle Efficiency Data
columns:

* **time efficiency** — "the percentage of the requested time that was
  used": elapsed / time limit;
* **CPU efficiency** — "the percentage of the requested CPU time that was
  used": TotalCPU / (elapsed x allocated CPUs), i.e. what ``seff`` calls
  CPU efficiency;
* **memory efficiency** — "how much memory was used compared to how much
  was requested": MaxRSS / requested-memory-per-node.

The efficiency *warnings* tell users they are over-requesting: "you are
only using a certain percentage of what you requested and ... requesting
less resources in the future will reduce your queue wait times and leave
more resources for others."  GPU efficiency is deliberately absent —
the paper marks it as work in progress (§4.1) — but GPU *hours* are
accounted elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.slurm.model import Job, JobState


@dataclass(frozen=True)
class JobEfficiency:
    """Efficiency triple for one job; fields are fractions in [0, 1] or
    None when not computable (e.g. a job that never started)."""

    time: Optional[float]
    cpu: Optional[float]
    memory: Optional[float]

    def format(self, which: str) -> str:
        """One metric as a display string (``'42%'`` or ``'n/a'``)."""
        val = getattr(self, which)
        return "n/a" if val is None else f"{val * 100:.0f}%"


def compute_efficiency(job: Job, now: float) -> JobEfficiency:
    """Efficiencies from the accounting fields of one job record."""
    elapsed = job.elapsed(now)
    if elapsed <= 0:
        return JobEfficiency(time=None, cpu=None, memory=None)

    time_eff: Optional[float] = None
    if job.time_limit > 0 and job.state.is_terminal:
        time_eff = min(1.0, elapsed / job.time_limit)

    cpu_eff: Optional[float] = None
    if job.total_cpu_seconds > 0 or job.state.is_terminal:
        denom = elapsed * job.req.cpus
        if denom > 0:
            cpu_eff = min(1.0, job.total_cpu_seconds / denom)

    mem_eff: Optional[float] = None
    per_node_req = job.req.mem_mb / max(1, job.req.nodes)
    if job.max_rss_mb > 0 and per_node_req > 0:
        mem_eff = min(1.0, job.max_rss_mb / per_node_req)

    return JobEfficiency(time=time_eff, cpu=cpu_eff, memory=mem_eff)


@dataclass(frozen=True)
class EfficiencyWarning:
    """One actionable over-request warning shown in the My Jobs table."""

    job_id: int
    kind: str  # "cpu" | "memory" | "time"
    used_pct: float
    message: str


#: below these, a terminal job earns a warning (tunable per deployment)
CPU_WARNING_THRESHOLD = 0.25
MEM_WARNING_THRESHOLD = 0.25
TIME_WARNING_THRESHOLD = 0.25
#: tiny jobs aren't worth nagging about
MIN_ELAPSED_FOR_WARNINGS = 120.0


def efficiency_warnings(
    job: Job,
    now: float,
    eff: Optional[JobEfficiency] = None,
) -> List[EfficiencyWarning]:
    """Warnings for one job, mirroring the paper's phrasing (§4.1).

    Only terminal jobs are judged (a running job may yet use what it
    asked for), and only CPU/memory/time — GPU warnings are future work.
    """
    if not job.state.is_terminal or job.state is JobState.CANCELLED:
        return []
    if job.elapsed(now) < MIN_ELAPSED_FOR_WARNINGS:
        return []
    if eff is None:
        eff = compute_efficiency(job, now)
    out: List[EfficiencyWarning] = []
    if eff.cpu is not None and eff.cpu < CPU_WARNING_THRESHOLD:
        out.append(
            EfficiencyWarning(
                job_id=job.job_id,
                kind="cpu",
                used_pct=eff.cpu * 100,
                message=(
                    f"This job used only {eff.cpu * 100:.0f}% of the "
                    f"{job.req.cpus} CPUs it requested. Requesting fewer CPUs "
                    "will reduce your queue wait times and leave more "
                    "resources for others."
                ),
            )
        )
    if eff.memory is not None and eff.memory < MEM_WARNING_THRESHOLD:
        out.append(
            EfficiencyWarning(
                job_id=job.job_id,
                kind="memory",
                used_pct=eff.memory * 100,
                message=(
                    f"This job used only {eff.memory * 100:.0f}% of its "
                    "requested memory. Requesting less memory will reduce "
                    "your queue wait times and leave more resources for "
                    "others."
                ),
            )
        )
    if (
        eff.time is not None
        and eff.time < TIME_WARNING_THRESHOLD
        and job.state is not JobState.TIMEOUT
    ):
        out.append(
            EfficiencyWarning(
                job_id=job.job_id,
                kind="time",
                used_pct=eff.time * 100,
                message=(
                    f"This job used only {eff.time * 100:.0f}% of its "
                    "requested time limit. A shorter time limit helps the "
                    "scheduler start your jobs sooner."
                ),
            )
        )
    return out


def mean_efficiency(
    jobs: List[Job], now: float, which: str
) -> Optional[float]:
    """Mean of one efficiency metric over jobs where it is computable
    (used by the Job Performance Metrics page, §5)."""
    values = [
        v
        for job in jobs
        if (v := getattr(compute_efficiency(job, now), which)) is not None
    ]
    if not values:
        return None
    return sum(values) / len(values)
