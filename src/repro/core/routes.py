"""API route registry and dashboard context.

Paper §2.3: "Each dashboard feature consists of a frontend ERB template
file paired with one or more backend API routes. ... components can be
easily moved and modified as isolated parts."  We reproduce that 1:1
structure:

* every widget/page registers one :class:`ApiRoute` (name, path, handler,
  declared data sources — the Table 1 contract);
* :class:`RouteRegistry.call` isolates failures: a crashing handler
  yields an error response for *that* component, never an exception that
  would take down the rest of the dashboard (§2.4 Modularity);
* :class:`DashboardContext` is the backend's view of the world: the
  cluster (via its command-line layer), the news API, the storage
  database — with every external read going through the server-side
  TTL cache (§2.4 Performance).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.auth import Directory, PermissionDenied, PermissionPolicy, Viewer
from repro.faults import (
    AdmissionConfig,
    AdmissionController,
    BreakerConfig,
    BulkheadSaturatedError,
    DaemonError,
    Deadline,
    DeadlineExceededError,
    FetchOutcome,
    ResilientFetcher,
    RetryPolicy,
)
from repro.news.api import Article, NewsAPI
from repro.obs import Observability
from repro.ood import AppRegistry, LogStore, SessionManager
from repro.slurm.cluster import SlurmCluster
from repro.slurm.commands import (
    Sacct,
    Scontrol,
    Sinfo,
    Squeue,
    parse_sacct,
    parse_scontrol_blocks,
    parse_sinfo,
    parse_squeue,
)
from repro.slurm.model import JobState
from repro.storage.quota import DirectoryQuota, QuotaDatabase

from .caching import CachePolicy, TTLCache
from .params import ParamError
from .records import JobRecord, NodeRecord
from .sharding import ShardedCache
from .workers import TaskOutcome, WorkerPool

RouteHandler = Callable[["DashboardContext", Viewer, Dict[str, Any]], Dict[str, Any]]


@dataclass(frozen=True)
class ApiRoute:
    """One backend API route, paired with one frontend component (§2.3)."""

    name: str  # "recent_jobs"
    path: str  # "/api/v1/widgets/recent_jobs"
    feature: str  # "Recent Jobs widget" — Table 1's left column
    data_sources: Tuple[str, ...]  # Table 1's right column
    handler: RouteHandler
    #: client-side freshness window suggested to the frontend (seconds)
    client_max_age_s: float = 30.0

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ValueError(f"route path must start with '/': {self.path!r}")


@dataclass
class RouteResponse:
    """JSON-shaped response envelope every route returns."""

    ok: bool
    data: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    status: int = 200
    route: str = ""
    elapsed_ms: float = 0.0
    #: True when any data source behind this response was served from an
    #: expired cache entry because its backend could not answer (§2.4
    #: resilience) — or, on a 503, when the backend is known to be down
    degraded: bool = False
    #: age (s) of the oldest stale entry that fed this response
    stale_age_s: Optional[float] = None
    #: seconds after which the client should retry (429/503/504 only);
    #: the HTTP layer turns this into a real ``Retry-After`` header
    retry_after_s: Optional[float] = None
    #: strong validator derived from the cache-entry generations behind
    #: this response (set only for ok, non-degraded, fully-cached
    #: responses); the HTTP layer sends it as an ``ETag`` header
    etag: Optional[str] = None
    #: the ``(cache key, generation)`` pairs :attr:`etag` hashes — the
    #: HTTP layer re-checks them to answer ``If-None-Match`` with a 304
    #: without dispatching the route.  Never serialized into the body.
    cache_deps: Optional[Tuple[Tuple[str, int], ...]] = None
    #: federation only: names of member clusters that failed or served
    #: stale while this merged response was assembled (partial-result
    #: semantics — the response is still 200 when ≥1 cluster answered).
    #: ``None`` on the single-cluster path, keeping its envelope
    #: byte-identical to pre-federation behavior.
    clusters_degraded: Optional[List[str]] = None

    def to_json(self) -> Dict[str, Any]:
        """The JSON envelope sent over HTTP."""
        out: Dict[str, Any] = {"ok": self.ok, "route": self.route, "status": self.status}
        out["degraded"] = self.degraded
        if self.stale_age_s is not None:
            out["stale_age_s"] = round(self.stale_age_s, 3)
        if self.retry_after_s is not None:
            out["retry_after_s"] = round(self.retry_after_s, 3)
        if self.clusters_degraded is not None:
            out["clusters_degraded"] = list(self.clusters_degraded)
        if self.ok:
            out["data"] = self.data
        else:
            out["error"] = self.error
        return out


@dataclass
class FetchScope:
    """Per-request record of degraded fetches, filled in by
    :meth:`DashboardContext._cached` while a route handler runs.

    During a scatter-gather fan-out one scope is shared by several
    worker threads, so :meth:`note` mutates under a lock.
    """

    degraded: bool = False
    stale_age_s: Optional[float] = None
    sources: List[str] = field(default_factory=list)
    #: cache key -> entry generation for every cached fetch this request
    #: made — the raw material of the response's strong ETag
    deps: Dict[str, int] = field(default_factory=dict)
    #: True when any fetch in this scope bypassed the server cache (or
    #: its entry vanished under it) — no validator can be derived then
    uncacheable: bool = False
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def note(self, outcome: FetchOutcome) -> None:
        if not outcome.degraded:
            return
        with self._lock:
            self.degraded = True
            self.sources.append(outcome.source)
            if outcome.stale_age_s is not None:
                if self.stale_age_s is None or outcome.stale_age_s > self.stale_age_s:
                    self.stale_age_s = outcome.stale_age_s

    def note_dep(self, key: str, generation: int) -> None:
        with self._lock:
            self.deps[key] = generation

    def mark_uncacheable(self) -> None:
        with self._lock:
            self.uncacheable = True


def response_etag(
    route: str,
    viewer: Viewer,
    params: Dict[str, Any],
    deps: Sequence[Tuple[str, int]],
) -> str:
    """Strong ETag for one route response.

    Hashes the cache-entry generations the response was computed from,
    plus everything else that shapes the body (route, viewer identity,
    params) — so the validator changes exactly when the bytes could.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(route.encode())
    h.update(f"|{viewer.username}|{int(viewer.is_admin)}".encode())
    for name in sorted(params):
        h.update(f"|{name}={params[name]!r}".encode())
    for key, generation in deps:
        h.update(f"|{key}@{generation}".encode())
    return h.hexdigest()


def _retry_after_of(exc: BaseException) -> Optional[float]:
    """The retry hint buried in a failure chain, if any.

    ``CircuitOpenError.retry_after_s`` usually arrives wrapped inside a
    :class:`SourceUnavailableError` (as its ``cause``); walking the chain
    lets the 503 carry a real ``Retry-After`` instead of dropping it.
    """
    current: Optional[BaseException] = exc
    for _ in range(5):
        if current is None:
            return None
        retry_after = getattr(current, "retry_after_s", None)
        if retry_after is not None:
            return float(retry_after)
        current = getattr(current, "cause", None)
    return None


class RouteRegistry:
    """All registered routes; the modular dispatch point."""

    def __init__(self) -> None:
        self._by_name: Dict[str, ApiRoute] = {}
        self._by_path: Dict[str, ApiRoute] = {}

    def register(self, route: ApiRoute) -> ApiRoute:
        """Add a route; duplicate names/paths are rejected."""
        if route.name in self._by_name:
            raise ValueError(f"duplicate route name {route.name!r}")
        if route.path in self._by_path:
            raise ValueError(f"duplicate route path {route.path!r}")
        self._by_name[route.name] = route
        self._by_path[route.path] = route
        return route

    def unregister(self, name: str) -> None:
        """Remove a component's route (used by the modularity ablation —
        a removed widget must not affect its siblings)."""
        route = self._by_name.pop(name, None)
        if route is None:
            raise KeyError(f"no route named {name!r}")
        del self._by_path[route.path]

    def get(self, name: str) -> ApiRoute:
        """Look up a route by name (KeyError if unknown)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no route named {name!r}") from None

    def by_path(self, path: str) -> Optional[ApiRoute]:
        """The route serving ``path``, or None."""
        return self._by_path.get(path)

    def all_routes(self) -> List[ApiRoute]:
        """Every registered route, in registration order."""
        return list(self._by_name.values())

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # -- dispatch -----------------------------------------------------------

    def call(
        self,
        ctx: "DashboardContext",
        name: str,
        viewer: Viewer,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[Deadline] = None,
    ) -> RouteResponse:
        """Invoke one route with failure isolation (§2.4 Modularity).

        Every call carries a :class:`~repro.faults.Deadline` — the
        per-route default from :meth:`CachePolicy.deadline_for` unless
        the caller (e.g. the HTTP layer honouring an
        ``X-Request-Deadline-Ms`` header) supplies one — and passes the
        admission controller's tier gate before any work runs.
        """
        params = params or {}
        route = self._by_name.get(name)
        if route is None:
            response = RouteResponse(
                ok=False, error=f"unknown route {name!r}", status=404, route=name
            )
            ctx.obs.record_route(name, response.status, 0.0, ok=False)
            return response
        admission = ctx.admission
        if admission is not None:
            decision = admission.admit_route(name)
            if not decision.allowed:
                response = RouteResponse(
                    ok=False,
                    error=decision.message,
                    status=decision.status,
                    route=name,
                    degraded=True,
                    retry_after_s=decision.retry_after_s,
                )
                with ctx.obs.tracer.span(
                    f"route:{name}", kind="route",
                    attrs={"viewer": viewer.username},
                ) as span:
                    span.attrs["status"] = response.status
                    span.attrs["admission"] = decision.reason
                ctx.obs.record_route(name, response.status, 0.0, ok=False)
                return response
        if deadline is None:
            deadline = Deadline(ctx.cache_policy.deadline_for(name))
        t0 = time.perf_counter()
        scope = ctx.begin_fetch_scope()
        ctx.begin_deadline(deadline)
        try:
            with ctx.obs.tracer.span(
                f"route:{name}", kind="route", attrs={"viewer": viewer.username}
            ) as span:
                response = self._dispatch(ctx, route, viewer, params, scope, t0)
                span.attrs["status"] = response.status
                if response.degraded:
                    span.attrs["degraded"] = True
                if response.status == 504:
                    span.attrs["deadline_exceeded"] = True
                if admission is not None:
                    tier = admission.tier
                    if tier != "normal":
                        span.attrs["tier"] = tier
        finally:
            ctx.end_deadline()
            ctx.end_fetch_scope()
        if (
            response.ok
            and not response.degraded
            and scope.deps
            and not scope.uncacheable
        ):
            # every byte of this response is backed by live cache entries:
            # derive the strong validator the HTTP layer serves as ETag
            response.cache_deps = tuple(sorted(scope.deps.items()))
            response.etag = response_etag(
                name, viewer, params, response.cache_deps
            )
        ctx.obs.record_route(
            name, response.status, response.elapsed_ms, ok=response.ok
        )
        return response

    @staticmethod
    def _dispatch(
        ctx: "DashboardContext",
        route: ApiRoute,
        viewer: Viewer,
        params: Dict[str, Any],
        scope: "FetchScope",
        t0: float,
    ) -> RouteResponse:
        name = route.name
        try:
            data = route.handler(ctx, viewer, params)
            return RouteResponse(
                ok=True,
                data=data,
                route=name,
                elapsed_ms=(time.perf_counter() - t0) * 1000,
                degraded=scope.degraded,
                stale_age_s=scope.stale_age_s,
            )
        except PermissionDenied as exc:
            return RouteResponse(
                ok=False, error=str(exc), status=403, route=name,
                elapsed_ms=(time.perf_counter() - t0) * 1000,
            )
        except ParamError as exc:
            # a bad query parameter is the client's mistake, not a crash
            return RouteResponse(
                ok=False, error=str(exc), status=400, route=name,
                elapsed_ms=(time.perf_counter() - t0) * 1000,
            )
        except DeadlineExceededError as exc:
            # the request's time budget ran out mid-fetch: a structured
            # 504 with a retry hint, instead of burning more backoff
            return RouteResponse(
                ok=False, error=str(exc), status=504, route=name,
                elapsed_ms=(time.perf_counter() - t0) * 1000,
                degraded=True, retry_after_s=exc.retry_after_s,
            )
        except BulkheadSaturatedError as exc:
            # the backend's concurrency bulkhead is full: 429 + Retry-After
            return RouteResponse(
                ok=False, error=str(exc), status=429, route=name,
                elapsed_ms=(time.perf_counter() - t0) * 1000,
                degraded=True, retry_after_s=exc.retry_after_s,
            )
        except DaemonError as exc:
            # backend down, retries exhausted, nothing stale to serve —
            # a structured 503, never a traceback (§2.4 resilience)
            return RouteResponse(
                ok=False, error=str(exc), status=503, route=name,
                elapsed_ms=(time.perf_counter() - t0) * 1000,
                degraded=True, retry_after_s=_retry_after_of(exc),
            )
        except KeyError as exc:
            return RouteResponse(
                ok=False, error=f"not found: {exc}", status=404, route=name,
                elapsed_ms=(time.perf_counter() - t0) * 1000,
            )
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            return RouteResponse(
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
                status=500,
                route=name,
                elapsed_ms=(time.perf_counter() - t0) * 1000,
            )


class DashboardContext:
    """Everything the backend routes can reach, behind the server cache.

    Each accessor runs the corresponding Slurm command / external API
    call on cache miss only, with the per-source TTLs of
    :class:`~repro.core.caching.CachePolicy` (§2.4 Performance).
    """

    def __init__(
        self,
        cluster: SlurmCluster,
        directory: Directory,
        quotas: QuotaDatabase,
        news: NewsAPI,
        cache_policy: Optional[CachePolicy] = None,
        use_server_cache: bool = True,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        resilience_seed: int = 0,
        slow_request_ms: float = 250.0,
        max_traces: int = 100,
        admission: Optional[AdmissionConfig] = None,
        worker_pool_size: int = 8,
        worker_queue_max: int = 64,
        cache_shards: int = 1,
        cache_max_entries: Optional[int] = None,
    ):
        self.cluster = cluster
        self.directory = directory
        self.policy = PermissionPolicy(directory)
        self.quotas = quotas
        self.news = news
        self.cache_policy = cache_policy or CachePolicy()
        self.use_server_cache = use_server_cache
        # one registry + tracer pair shared by every layer below: the
        # cache, the resilient fetch path, and the daemon bus all report
        # into it, and /metrics scrapes it
        self.obs = Observability(
            cluster.clock, max_traces=max_traces, slow_request_ms=slow_request_ms
        )
        # capacity knob: a scale-out worker's slice of the fleet cache —
        # None keeps the historical 10k-entry default
        max_entries = {} if cache_max_entries is None else (
            {"max_entries": cache_max_entries}
        )
        if cache_shards > 1:
            # consistent-hash scale-out: shared-nothing shards with
            # per-shard locks, byte-identical responses to the default
            self.cache: Any = ShardedCache(
                cluster.clock,
                shards=cache_shards,
                default_ttl=self.cache_policy.default,
                registry=self.obs.registry,
                **max_entries,
            )
        else:
            self.cache = TTLCache(
                cluster.clock,
                default_ttl=self.cache_policy.default,
                registry=self.obs.registry,
                **max_entries,
            )
        self.fetcher = ResilientFetcher(
            cache=self.cache,
            daemons=cluster.daemons,
            policy=self.cache_policy,
            retry=retry,
            breaker=breaker,
            seed=resilience_seed,
            admission=admission,
        )
        self.fetcher.tracer = self.obs.tracer
        # the brownout feedback loop: watches the fetcher's breakers and
        # bulkheads plus route p95, gates every route call, and stretches
        # TTLs while the dashboard is under distress
        self.admission = AdmissionController(
            self.fetcher.admission,
            registry=self.obs.registry,
            fetcher=self.fetcher,
            clock=cluster.clock,
        )
        self.fetcher.controller = self.admission
        # shared bounded pool: refresh-ahead revalidation and page fan-out
        # compete for the same threads, so background work can never
        # out-grow the configured capacity
        self.workers = WorkerPool(
            max_workers=worker_pool_size,
            max_queue=worker_queue_max,
            registry=self.obs.registry,
        )
        self.cache.refresh_runner = self.workers.try_submit
        # refresh-ahead arms only in the normal tier: brownout/shed means
        # the backends need less traffic, not proactive revalidation
        self.cache.refresh_gate = lambda: self.admission.tier == "normal"
        cluster.daemons.attach_metrics(self.obs.registry)
        self._scope_local = threading.local()
        self._deadline_local = threading.local()
        self.sessions = SessionManager(cluster)
        self.apps = AppRegistry()
        self.logs = LogStore()
        self._squeue = Squeue(cluster)
        self._sinfo = Sinfo(cluster)
        self._sacct = Sacct(cluster)
        self._scontrol = Scontrol(cluster)
        # event-driven views: the materializer subscribes to the cluster
        # bus, turns StateChanges into targeted invalidations, and
        # re-materializes learned entries on every scheduler pass (local
        # import: views imports ApiRoute from this module)
        from .views import DeltaView, ViewMaterializer, ViewMetrics

        self.view_metrics = ViewMetrics(self.obs.registry)
        self.delta_views = {"jobs": DeltaView("jobs"), "nodes": DeltaView("nodes")}
        self.views: Optional[ViewMaterializer] = None
        self._bus_unsubscribe: Optional[Callable[[], None]] = None
        if self.cache_policy.event_views and use_server_cache:
            self.views = ViewMaterializer(
                cache=self.cache,
                policy=self.cache_policy,
                metrics=self.view_metrics,
                tracer=self.obs.tracer,
                clock=cluster.clock,
            )
            self._bus_unsubscribe = cluster.bus.subscribe(self.views.on_change)

    @property
    def clock(self):
        return self.cluster.clock

    def now(self) -> float:
        """Current simulated time (seconds since the epoch)."""
        return self.cluster.clock.now()

    # -- fetch scopes (per-request degradation tracking) ----------------------

    def _scope_stack(self) -> List[FetchScope]:
        stack = getattr(self._scope_local, "stack", None)
        if stack is None:
            stack = self._scope_local.stack = []
        return stack

    def begin_fetch_scope(self) -> FetchScope:
        """Open a per-request scope that collects degraded-fetch flags;
        the route dispatcher copies them into the response envelope."""
        scope = FetchScope()
        self._scope_stack().append(scope)
        return scope

    def end_fetch_scope(self) -> Optional[FetchScope]:
        """Close the innermost fetch scope (no-op when none is open)."""
        stack = self._scope_stack()
        return stack.pop() if stack else None

    # -- deadlines (per-request time budgets) ----------------------------------

    def _deadline_stack(self) -> List[Deadline]:
        stack = getattr(self._deadline_local, "stack", None)
        if stack is None:
            stack = self._deadline_local.stack = []
        return stack

    def begin_deadline(self, deadline: Deadline) -> Deadline:
        """Open a per-request deadline; :meth:`_cached` threads it down
        to the resilient fetch path for the duration of the request."""
        self._deadline_stack().append(deadline)
        return deadline

    def end_deadline(self) -> Optional[Deadline]:
        """Close the innermost deadline (no-op when none is open)."""
        stack = self._deadline_stack()
        return stack.pop() if stack else None

    def current_deadline(self) -> Optional[Deadline]:
        """The deadline of the request this thread is serving, if any."""
        stack = self._deadline_stack()
        return stack[-1] if stack else None

    # -- scatter-gather fan-out ----------------------------------------------

    def _fanout_wrapper(self) -> Callable[[Callable[[], Any]], Callable[[], Any]]:
        """Build the context-propagation wrapper fan-out thunks run under.

        Captures the calling request's context *now* (on the request
        thread): its :class:`~repro.faults.Deadline` (one common budget,
        charged under a lock), its open fetch scopes (so degraded
        fetches inside the fan-out still mark the response envelope),
        and its innermost open span (so widget spans nest under the page
        span instead of becoming disconnected roots).
        """
        deadline = self.current_deadline()
        scopes = list(self._scope_stack())
        parent_span = self.obs.tracer.current()

        def wrap(fn: Callable[[], Any]) -> Callable[[], Any]:
            def run() -> Any:
                # re-entrant (inline) execution already has the request's
                # stacks on this thread — only graft what is missing, or
                # one fetch would note the same scope twice
                scope_stack = self._scope_stack()
                present = {id(s) for s in scope_stack}
                added = [s for s in scopes if id(s) not in present]
                scope_stack.extend(added)
                deadline_stack = self._deadline_stack()
                pushed_deadline = (
                    deadline is not None and self.current_deadline() is not deadline
                )
                if pushed_deadline:
                    deadline_stack.append(deadline)
                try:
                    with self.obs.tracer.attach(parent_span):
                        return fn()
                finally:
                    if pushed_deadline:
                        deadline_stack.pop()
                    if added:
                        del scope_stack[-len(added):]

            return run

        return wrap

    def scatter(self, thunks: Sequence[Callable[[], Any]]) -> List[TaskOutcome]:
        """Run independent thunks concurrently on the shared worker pool,
        with this request's context propagated into every worker.

        Outcomes come back in input order, one per thunk, failures
        isolated per slot (see :meth:`_fanout_wrapper` for what each
        worker inherits).
        """
        wrap = self._fanout_wrapper()
        return self.workers.scatter_gather([wrap(fn) for fn in thunks])

    def scatter_stream(
        self, thunks: Sequence[Callable[[], Any]]
    ) -> Iterator[TaskOutcome]:
        """:meth:`scatter`, but yielding each outcome in input order as
        soon as it (and its predecessors) complete — no barrier on the
        slowest thunk.  The streamed homepage flushes widget slots
        through this, so time-to-first-slot tracks the fastest widgets
        instead of the slowest."""
        wrap = self._fanout_wrapper()
        return self.workers.scatter_stream([wrap(fn) for fn in thunks])

    # -- observability -------------------------------------------------------

    def breaker_report(self) -> Dict[str, str]:
        """Breaker states for ``/healthz``, mirrored into the registry's
        one-hot gauge in the same call — the single code path that keeps
        ``/healthz`` and ``/metrics`` in agreement."""
        states = self.fetcher.breaker_states()
        self.obs.set_breaker_states(states)
        return states

    def admission_report(self) -> Dict[str, Any]:
        """Admission tier + distress signals for ``/healthz``."""
        return self.admission.report()

    def refresh_gauges(self) -> None:
        """Update the scrape-time gauges (breakers, cache size, daemon
        rates, admission tier) from their live sources."""
        self.breaker_report()
        self.admission.maybe_evaluate()
        if isinstance(self.cache, ShardedCache):
            # reconcile the unlabeled size gauges + per-shard lock profile
            self.cache.sync_gauges()
        self.obs.cache_entries.set(float(len(self.cache)))
        for name, snap in self.cluster.daemons.snapshot().items():
            self.obs.daemon_recent_rate.set(
                snap["recent_rate_rps"], daemon=name
            )
            self.obs.daemon_mean_latency.set(
                snap["mean_latency_s"], daemon=name
            )

    def scrape_metrics(self) -> str:
        """The full registry in Prometheus text format, gauges refreshed
        — what the ``/metrics`` endpoint serves."""
        self.refresh_gauges()
        return self.obs.registry.render()

    # -- cache plumbing ------------------------------------------------------

    def _cached(self, source: str, key: str, compute: Callable[[], Any]) -> Any:
        if not self.use_server_cache:
            for scope in self._scope_stack():
                scope.mark_uncacheable()
            return compute()
        if self.views is not None:
            # teach the materializer how to recompute this entry so it can
            # re-materialize it at the next scheduler pass
            self.views.learn(source, key, compute)
        with self.obs.tracer.span(
            f"cache:{source}", kind="cache", attrs={"key": key}
        ) as span:
            try:
                outcome = self.fetcher.fetch(
                    source, key, compute, deadline=self.current_deadline()
                )
            except Exception as exc:
                span.attrs["error"] = f"{type(exc).__name__}: {exc}"
                raise
            span.attrs["result"] = (
                "hit" if outcome.cache_hit
                else "coalesced" if outcome.coalesced
                else "stale" if outcome.degraded
                else "miss"
            )
            if outcome.role is not None:
                # which side of a single-flight stampede this fetch was on
                span.attrs["role"] = outcome.role
            if outcome.refreshing:
                # served from cache while refresh-ahead revalidates it
                span.attrs["refreshing"] = True
            if outcome.attempts > 1:
                span.attrs["attempts"] = outcome.attempts
        scopes = self._scope_stack()
        for scope in scopes:
            scope.note(outcome)
        # validator bookkeeping: tie this fetch to the generation of the
        # entry that holds the exact value served.  The identity check
        # guards the race where a concurrent writer replaced the entry
        # between our lookup and this read — then no validator is safe.
        full_key = f"{source}:{key}"
        entry = self.cache.entry(full_key)
        if entry is not None and entry.value is outcome.value:
            for scope in scopes:
                scope.note_dep(full_key, entry.generation)
        else:
            for scope in scopes:
                scope.mark_uncacheable()
        return outcome.value

    # -- Slurm data (commands -> text -> parse -> records) --------------------

    def _stamp_cluster(self, record):
        """Stamp this context's cluster name onto a parsed record (or a
        list of them) — federation rollups label provenance from it; the
        hand-written page serializers never emit it, so single-cluster
        payloads are unchanged."""
        name = self.cluster.name
        if isinstance(record, list):
            for rec in record:
                rec.cluster = name
        else:
            record.cluster = name
        return record

    def recent_jobs_of(self, username: str) -> List[JobRecord]:
        """squeue scoped to one user (Recent Jobs widget, 30 s TTL)."""

        def compute() -> List[JobRecord]:
            out = self._squeue.run(user=username)
            return self._stamp_cluster([
                JobRecord.from_squeue_row(r, self.clock)
                for r in parse_squeue(out.stdout)
            ])

        return self._cached("squeue", username, compute)

    def partition_status(self) -> List[dict]:
        """sinfo summary rows (System Status widget, 60 s TTL)."""

        def compute() -> List[dict]:
            return parse_sinfo(self._sinfo.run().stdout)

        return self._cached("sinfo", "all", compute)

    def jobs_in_scope(
        self,
        viewer: Viewer,
        start: Optional[float] = None,
        end: Optional[float] = None,
        states: Optional[Sequence[JobState]] = None,
    ) -> List[JobRecord]:
        """sacct over the viewer's privacy scope: own jobs plus jobs under
        shared accounts (§2.4); the My Jobs / Performance Metrics source."""
        accounts = self.policy.visible_accounts(viewer)
        key = f"{viewer.username}:{start}:{end}"

        def compute() -> List[JobRecord]:
            out = self._sacct.run(
                users=[viewer.username], accounts=accounts, start=start, end=end
            )
            return self._stamp_cluster([
                JobRecord.from_sacct_row(r, self.clock)
                for r in parse_sacct(out.stdout)
            ])

        records = self._cached("sacct", key, compute)
        if states is not None:
            wanted = set(states)
            records = [r for r in records if r.state in wanted]
        return records

    def account_usage(self, account: str) -> List[Any]:
        """Per-user usage rollup for one account (§3.4 export).

        Priced as an ``sacct`` query against slurmdbd through the
        resilient fetch path, so exports share the cache, retry, breaker
        and **deadline** machinery instead of bypassing it — a tight
        ``X-Request-Deadline-Ms`` now yields the same structured 504
        here as on any widget route.
        """

        def compute() -> List[Any]:
            # price the slurmdbd RPC the real sacct run would cost; the
            # rollup itself aggregates the same accounting records
            self.cluster.daemons.record("sacct", "sacct")
            return self.cluster.accounting.usage_by_account(account)

        return self._cached("sacct", f"usage:{account}", compute)

    def node_records(self) -> List[NodeRecord]:
        """All nodes via scontrol show node (Cluster Status, 60 s TTL)."""

        def compute() -> List[NodeRecord]:
            out = self._scontrol.show_nodes()
            return self._stamp_cluster([
                NodeRecord.from_scontrol_block(b, self.clock)
                for b in parse_scontrol_blocks(out.stdout)
            ])

        return self._cached("scontrol_node", "all", compute)

    def node_record(self, name: str) -> NodeRecord:
        """One node (Node Overview)."""
        if name not in self.cluster.nodes:
            raise KeyError(f"unknown node {name!r}")

        def compute() -> NodeRecord:
            out = self._scontrol.show_node(name)
            return self._stamp_cluster(NodeRecord.from_scontrol_block(
                parse_scontrol_blocks(out.stdout)[0], self.clock
            ))

        return self._cached("scontrol_node", name, compute)

    def job_record(self, job_id: int) -> JobRecord:
        """One job via scontrol (live) falling back to sacct (archived)."""

        def compute() -> JobRecord:
            try:
                out = self._scontrol.show_job(job_id)
                return self._stamp_cluster(JobRecord.from_scontrol_block(
                    parse_scontrol_blocks(out.stdout)[0], self.clock
                ))
            except KeyError:
                archived = self.cluster.accounting.get(job_id)
                if archived is None:
                    raise KeyError(f"unknown job {job_id}") from None
                # archived jobs still flow through the sacct text path
                res = self._sacct.run(users=[archived.user])
                for row in parse_sacct(res.stdout):
                    if row["JobIDRaw"] == str(job_id):
                        return self._stamp_cluster(
                            JobRecord.from_sacct_row(row, self.clock)
                        )
                raise KeyError(f"unknown job {job_id}") from None

        return self._cached("scontrol_job", str(job_id), compute)

    def association_info(self, account: str) -> dict:
        """scontrol show assoc block for one account (Accounts widget)."""

        def compute() -> dict:
            out = self._scontrol.show_assoc(account)
            return parse_scontrol_blocks(out.stdout)[0]

        return self._cached("scontrol_assoc", account, compute)

    def cluster_queue(self) -> List[JobRecord]:
        """The whole live queue via squeue (shared cache entry used by the
        Accounts widget to count queued CPUs per allocation)."""

        def compute() -> List[JobRecord]:
            out = self._squeue.run(include_finished=False)
            return [
                JobRecord.from_squeue_row(r, self.clock)
                for r in parse_squeue(out.stdout)
            ]

        return self._cached("squeue", "__all__", compute)

    # -- non-Slurm data --------------------------------------------------------

    def announcements(self, limit: int = 10) -> List[Article]:
        """News API articles (30 min TTL, per §2.4's example)."""
        return self._cached("news", f"limit={limit}", lambda: self.news.fetch(limit))

    def storage_for(self, viewer: Viewer) -> List[DirectoryQuota]:
        """Quota rows for the viewer's storage scope (1 h TTL)."""
        owners = self.policy.visible_storage_owners(viewer)

        def compute() -> List[DirectoryQuota]:
            return self.quotas.directories_for(owners)

        return self._cached("storage", viewer.username, compute)


def scatter_sections(
    ctx: DashboardContext,
    sections: Sequence[Tuple[str, Callable[[], Any]]],
) -> Dict[str, Any]:
    """Build a page's independent sections concurrently.

    ``sections`` is ``(name, thunk)`` pairs; the result dict preserves
    declared order (3.7+ dicts are ordered).  Error semantics match the
    sequential loop the multi-source pages used to run: if any section
    raises, the *first* failing section in declared order re-raises and
    the route dispatcher maps it as before — section failures are not
    isolated within a page, only across page/widget slots.
    """
    outcomes = ctx.scatter([thunk for _, thunk in sections])
    data: Dict[str, Any] = {}
    for (name, _), outcome in zip(sections, outcomes):
        if outcome.error is not None:
            raise outcome.error
        data[name] = outcome.value
    return data
