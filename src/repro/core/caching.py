"""Server-side TTL cache — the Rails in-memory cache of the paper (§2.4).

The backend "uses Ruby on Rails in-memory caching to store the responses
to all Slurm commands and external API calls, refreshing their values
periodically".  :class:`TTLCache` reproduces `Rails.cache.fetch`: look
the key up; on a miss (or expiry) run the supplied block, store the
result with the per-source TTL, and return it.

:class:`CachePolicy` centralizes the per-data-source expiration times the
paper motivates: ~30 s for ``squeue`` (changes fast, protects slurmctld)
up to 30–60 min for announcements (changes slowly).
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type

from repro.obs import MetricsRegistry
from repro.sim.clock import SimClock


@dataclass
class CacheEntry:
    value: Any
    stored_at: float
    ttl: float

    def expires_at(self) -> float:
        """Absolute simulated time at which the entry expires."""
        return self.stored_at + self.ttl

    def is_fresh(self, now: float) -> bool:
        """True while ``now`` is *strictly* before the entry's expiry.

        The boundary is half-open by design: at exactly
        ``stored_at + ttl`` the entry is already expired.  Eviction
        ordering (:meth:`TTLCache._evict_one`), :meth:`TTLCache.read`,
        and the stale-serving path all share this method, so they agree
        on the instant an entry stops being fresh — a lookup at the
        boundary is a miss, and a stale serve at the boundary reports
        ``age == ttl``.
        """
        return now < self.expires_at()

    def age(self, now: float) -> float:
        """Seconds since the entry was stored."""
        return now - self.stored_at


def _source_of(key: str) -> str:
    """The data-source label for a cache key.

    :class:`~repro.core.routes.DashboardContext` namespaces every key as
    ``"<source>:<key>"``; un-namespaced keys (direct cache users, unit
    tests) are grouped under ``"default"``.
    """
    return key.split(":", 1)[0] if ":" in key else "default"


class CacheStats:
    """Read-only view of the cache/fetch counters in a metrics registry.

    Historically a plain dataclass of ad-hoc ints; the counters now live
    in the shared :class:`~repro.obs.MetricsRegistry` (per-source, and
    scraped via ``/metrics``), and this view keeps the old attribute API
    for the admin page, examples, and tests.  Each property sums the
    backing family across label sets.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()

    @property
    def hits(self) -> int:
        return int(self.registry.total("repro_cache_requests_total", result="hit"))

    @property
    def misses(self) -> int:
        return int(self.registry.total("repro_cache_requests_total", result="miss"))

    @property
    def expirations(self) -> int:
        return int(self.registry.total("repro_cache_requests_total", result="expired"))

    @property
    def stale_served(self) -> int:
        """Expired entries handed out because the backend could not answer."""
        return int(
            self.registry.total("repro_cache_requests_total", result="stale_served")
        )

    @property
    def evictions(self) -> int:
        """Entries dropped to stay under ``max_entries``."""
        return int(self.registry.total("repro_cache_evictions_total"))

    @property
    def retries(self) -> int:
        """Fetch attempts repeated by the resilient fetch path."""
        return int(self.registry.total("repro_fetch_retries_total"))

    @property
    def breaker_opens(self) -> int:
        """Circuit-breaker transitions into the open state."""
        return int(
            self.registry.total("repro_breaker_transitions_total", to="open")
        )

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class TTLCache:
    """Clock-driven TTL cache with fetch-with-block semantics.

    Thread-safe: handler threads of the HTTP server share one instance,
    so every read/write of ``_entries`` happens under a lock.  Compute
    blocks run *outside* the lock (they can be slow and may reenter the
    cache); as with ``Rails.cache.fetch``, two threads missing on the
    same key may both compute — last write wins.

    Eviction keeps an expiry-ordered heap alongside the dict, so the
    at-capacity write path is O(log n) instead of a full O(n) scan.
    Heap entries are invalidated lazily: a popped entry is only honoured
    if the live dict still holds the same (key, expiry) pair.
    """

    def __init__(self, clock: SimClock, default_ttl: float = 60.0, max_entries: int = 10_000,
                 registry: Optional[MetricsRegistry] = None):
        if default_ttl <= 0:
            raise ValueError("default_ttl must be positive")
        self.clock = clock
        self.default_ttl = default_ttl
        self.max_entries = max_entries
        self._entries: Dict[str, CacheEntry] = {}
        self._expiry_heap: List[Tuple[float, str]] = []
        self._lock = threading.RLock()
        #: shared registry (the dashboard's) or a private one; either way
        #: lookups/evictions become first-class per-source metrics
        self.metrics = registry or MetricsRegistry()
        self._requests = self.metrics.counter(
            "repro_cache_requests_total",
            "Server-cache lookups by data source and result.",
            ("source", "result"),
        )
        self._evicted = self.metrics.counter(
            "repro_cache_evictions_total",
            "Entries evicted to stay under max_entries, by data source.",
            ("source",),
        )
        self.stats = CacheStats(self.metrics)

    def _count(self, key: str, result: str) -> None:
        self._requests.inc(source=_source_of(key), result=result)

    # -- Rails.cache.fetch ---------------------------------------------------

    def fetch(self, key: str, compute: Callable[[], Any], ttl: Optional[float] = None) -> Any:
        """Return the cached value for ``key``; on miss/expiry call
        ``compute``, store its result with ``ttl``, and return it."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry.is_fresh(self.clock.now()):
                    self._count(key, "hit")
                    return entry.value
                self._count(key, "expired")
            self._count(key, "miss")
        value = compute()
        self.write(key, value, ttl)
        return value

    def fetch_or_stale(
        self,
        key: str,
        compute: Callable[[], Any],
        ttl: Optional[float] = None,
        stale_on: Tuple[Type[BaseException], ...] = (Exception,),
    ) -> Tuple[Any, Optional[float]]:
        """:meth:`fetch`, but degrade instead of failing when possible.

        Returns ``(value, stale_age_s)``.  ``stale_age_s`` is ``None``
        for a fresh hit or a successful compute; when ``compute`` raises
        one of ``stale_on`` and an expired entry survives, that stale
        value is returned with its age in seconds.  With no fallback
        entry the exception propagates.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry.is_fresh(self.clock.now()):
                    self._count(key, "hit")
                    return entry.value, None
                self._count(key, "expired")
            self._count(key, "miss")
        try:
            value = compute()
        except stale_on:
            with self._lock:
                entry = self._entries.get(key)
                if entry is None:
                    raise
                self._count(key, "stale_served")
                return entry.value, entry.age(self.clock.now())
        self.write(key, value, ttl)
        return value, None

    # -- direct access -----------------------------------------------------

    def read(self, key: str) -> Any:
        """Fresh value or None (does not count toward hit/miss stats)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.is_fresh(self.clock.now()):
                return entry.value
            return None

    def write(self, key: str, value: Any, ttl: Optional[float] = None) -> None:
        """Store ``value`` under ``key`` with the given (or default) TTL."""
        ttl = self.default_ttl if ttl is None else ttl
        if ttl <= 0:
            raise ValueError(f"ttl must be positive: {ttl}")
        with self._lock:
            if len(self._entries) >= self.max_entries and key not in self._entries:
                self._evict_one()
            entry = CacheEntry(value=value, stored_at=self.clock.now(), ttl=ttl)
            self._entries[key] = entry
            heapq.heappush(self._expiry_heap, (entry.expires_at(), key))
            # overwrites leave dead heap entries behind; rebuild before
            # the lazy skip in _evict_one degrades to a linear scan
            if len(self._expiry_heap) > 4 * max(self.max_entries, 64):
                self._rebuild_heap()

    def delete(self, key: str) -> bool:
        """Remove one key; returns True if it existed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()
            self._expiry_heap.clear()

    def entry(self, key: str) -> Optional[CacheEntry]:
        """The raw entry (fresh or stale), for staleness instrumentation."""
        with self._lock:
            return self._entries.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _rebuild_heap(self) -> None:
        self._expiry_heap = [
            (e.expires_at(), k) for k, e in self._entries.items()
        ]
        heapq.heapify(self._expiry_heap)

    def _evict_one(self) -> None:
        """Evict the entry closest to expiry (cheap stand-in for LRU)."""
        while self._expiry_heap:
            expires_at, key = heapq.heappop(self._expiry_heap)
            entry = self._entries.get(key)
            if entry is not None and entry.expires_at() == expires_at:
                del self._entries[key]
                self._evicted.inc(source=_source_of(key))
                return

    def purge_expired(self) -> int:
        """Drop expired entries; returns how many were removed."""
        with self._lock:
            now = self.clock.now()
            stale = [k for k, e in self._entries.items() if not e.is_fresh(now)]
            for k in stale:
                del self._entries[k]
            return len(stale)


@dataclass(frozen=True)
class CachePolicy:
    """Per-data-source TTLs (seconds), as chosen in the paper §2.4/§3.

    "cluster announcements ... cache the articles ... for 30 minutes to an
    hour"; "the recent jobs widget queries squeue ... we set the cache
    expiration time to around 30 seconds."
    """

    squeue: float = 30.0
    sinfo: float = 60.0
    sacct: float = 120.0
    scontrol_node: float = 60.0
    scontrol_job: float = 15.0
    scontrol_assoc: float = 300.0
    news: float = 1800.0
    storage: float = 3600.0
    default: float = 60.0
    #: per-fetch latency budget before the resilient fetch path declares a
    #: DaemonTimeoutError; generous so only injected slowdowns trip it
    timeout_default_s: float = 30.0
    #: per-source timeout overrides, e.g. ``{"squeue": 0.5}``
    timeouts_s: Mapping[str, float] = field(default_factory=dict)

    def ttl_for(self, source: str) -> float:
        """TTL (seconds) for a named data source; unknown sources get the default."""
        return float(getattr(self, source, self.default))

    def timeout_for(self, source: str) -> float:
        """Latency budget (seconds) for one fetch of a named data source."""
        return float(self.timeouts_s.get(source, self.timeout_default_s))

    def as_dict(self) -> Dict[str, float]:
        """All per-source TTLs as a plain dict (for reporting)."""
        return {
            name: float(getattr(self, name))
            for name in (
                "squeue",
                "sinfo",
                "sacct",
                "scontrol_node",
                "scontrol_job",
                "scontrol_assoc",
                "news",
                "storage",
            )
        }
