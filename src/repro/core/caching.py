"""Server-side TTL cache — the Rails in-memory cache of the paper (§2.4).

The backend "uses Ruby on Rails in-memory caching to store the responses
to all Slurm commands and external API calls, refreshing their values
periodically".  :class:`TTLCache` reproduces `Rails.cache.fetch`: look
the key up; on a miss (or expiry) run the supplied block, store the
result with the per-source TTL, and return it.

:class:`CachePolicy` centralizes the per-data-source expiration times the
paper motivates: ~30 s for ``squeue`` (changes fast, protects slurmctld)
up to 30–60 min for announcements (changes slowly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.sim.clock import SimClock


@dataclass
class CacheEntry:
    value: Any
    stored_at: float
    ttl: float

    def expires_at(self) -> float:
        """Absolute simulated time at which the entry expires."""
        return self.stored_at + self.ttl

    def is_fresh(self, now: float) -> bool:
        """True while ``now`` is before the entry's expiry."""
        return now < self.expires_at()

    def age(self, now: float) -> float:
        """Seconds since the entry was stored."""
        return now - self.stored_at


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    expirations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class TTLCache:
    """Clock-driven TTL cache with fetch-with-block semantics."""

    def __init__(self, clock: SimClock, default_ttl: float = 60.0, max_entries: int = 10_000):
        if default_ttl <= 0:
            raise ValueError("default_ttl must be positive")
        self.clock = clock
        self.default_ttl = default_ttl
        self.max_entries = max_entries
        self._entries: Dict[str, CacheEntry] = {}
        self.stats = CacheStats()

    # -- Rails.cache.fetch ---------------------------------------------------

    def fetch(self, key: str, compute: Callable[[], Any], ttl: Optional[float] = None) -> Any:
        """Return the cached value for ``key``; on miss/expiry call
        ``compute``, store its result with ``ttl``, and return it."""
        now = self.clock.now()
        entry = self._entries.get(key)
        if entry is not None:
            if entry.is_fresh(now):
                self.stats.hits += 1
                return entry.value
            self.stats.expirations += 1
        self.stats.misses += 1
        value = compute()
        self.write(key, value, ttl)
        return value

    # -- direct access -----------------------------------------------------

    def read(self, key: str) -> Any:
        """Fresh value or None (does not count toward hit/miss stats)."""
        entry = self._entries.get(key)
        if entry is not None and entry.is_fresh(self.clock.now()):
            return entry.value
        return None

    def write(self, key: str, value: Any, ttl: Optional[float] = None) -> None:
        """Store ``value`` under ``key`` with the given (or default) TTL."""
        ttl = self.default_ttl if ttl is None else ttl
        if ttl <= 0:
            raise ValueError(f"ttl must be positive: {ttl}")
        if len(self._entries) >= self.max_entries and key not in self._entries:
            self._evict_one()
        self._entries[key] = CacheEntry(
            value=value, stored_at=self.clock.now(), ttl=ttl
        )

    def delete(self, key: str) -> bool:
        """Remove one key; returns True if it existed."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def entry(self, key: str) -> Optional[CacheEntry]:
        """The raw entry (fresh or stale), for staleness instrumentation."""
        return self._entries.get(key)

    def __len__(self) -> int:
        return len(self._entries)

    def _evict_one(self) -> None:
        """Evict the entry closest to expiry (cheap stand-in for LRU)."""
        victim = min(self._entries.items(), key=lambda kv: kv[1].expires_at())
        del self._entries[victim[0]]

    def purge_expired(self) -> int:
        """Drop expired entries; returns how many were removed."""
        now = self.clock.now()
        stale = [k for k, e in self._entries.items() if not e.is_fresh(now)]
        for k in stale:
            del self._entries[k]
        return len(stale)


@dataclass(frozen=True)
class CachePolicy:
    """Per-data-source TTLs (seconds), as chosen in the paper §2.4/§3.

    "cluster announcements ... cache the articles ... for 30 minutes to an
    hour"; "the recent jobs widget queries squeue ... we set the cache
    expiration time to around 30 seconds."
    """

    squeue: float = 30.0
    sinfo: float = 60.0
    sacct: float = 120.0
    scontrol_node: float = 60.0
    scontrol_job: float = 15.0
    scontrol_assoc: float = 300.0
    news: float = 1800.0
    storage: float = 3600.0
    default: float = 60.0

    def ttl_for(self, source: str) -> float:
        """TTL (seconds) for a named data source; unknown sources get the default."""
        return float(getattr(self, source, self.default))

    def as_dict(self) -> Dict[str, float]:
        """All per-source TTLs as a plain dict (for reporting)."""
        return {
            name: float(getattr(self, name))
            for name in (
                "squeue",
                "sinfo",
                "sacct",
                "scontrol_node",
                "scontrol_job",
                "scontrol_assoc",
                "news",
                "storage",
            )
        }
