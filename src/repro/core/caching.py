"""Server-side TTL cache — the Rails in-memory cache of the paper (§2.4).

The backend "uses Ruby on Rails in-memory caching to store the responses
to all Slurm commands and external API calls, refreshing their values
periodically".  :class:`TTLCache` reproduces `Rails.cache.fetch`: look
the key up; on a miss (or expiry) run the supplied block, store the
result with the per-source TTL, and return it.

Unlike ``Rails.cache.fetch``, misses are **single-flight**: when several
handler threads miss on the same key at once, exactly one of them (the
leader) runs the compute block; the rest (followers) wait on the
leader's in-flight result instead of stampeding the backend.  A
follower's wait is bounded — past the budget it degrades to the expired
entry when one exists, so the moment a popular key expires under load
the daemons see one query, not one per concurrent request.

Hot keys additionally support **refresh-ahead** (stale-while-
revalidate): a lookup that lands between the *soft* TTL and the hard
expiry returns the cached value immediately and arms a deduplicated
background revalidation on the dashboard's shared worker pool (see
:mod:`repro.core.workers`), so a warm hot key never blocks a user
request on a backend RPC.  The background refresh reuses the same
per-key ``_InFlight`` machinery as coalescing — at most one compute per
key is ever in flight, whether it was started by a miss or by
refresh-ahead.

:class:`CachePolicy` centralizes the per-data-source expiration times the
paper motivates: ~30 s for ``squeue`` (changes fast, protects slurmctld)
up to 30–60 min for announcements (changes slowly).
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type

from repro.obs import MetricsRegistry
from repro.sim.clock import SimClock


class ContentionLock:
    """A reentrant lock that counts contended acquisitions and wait time.

    Drop-in for ``threading.RLock`` as a context manager, with three
    counters mutated only while the lock is held (so they need no lock
    of their own): ``acquisitions`` (every entry), ``contended``
    (entries that found the lock taken), and ``wait_s`` (wall seconds
    spent blocked).  The fast path is one extra non-blocking ``acquire``
    attempt, so an uncontended cache pays almost nothing for the
    profile.  :meth:`TTLCache.lock_stats` exposes the numbers; the
    sharded cache front aggregates them per shard to show that
    consistent-hash sharding actually spreads lock pressure.
    """

    __slots__ = ("_lock", "acquisitions", "contended", "wait_s")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.acquisitions = 0
        self.contended = 0
        self.wait_s = 0.0

    def __enter__(self) -> "ContentionLock":
        if not self._lock.acquire(blocking=False):
            t0 = time.perf_counter()
            self._lock.acquire()
            self.wait_s += time.perf_counter() - t0
            self.contended += 1
        self.acquisitions += 1
        return self

    def __exit__(self, *exc: Any) -> None:
        self._lock.release()

    def stats(self) -> Dict[str, float]:
        """Lifetime acquisition counters as a plain dict."""
        return {
            "acquisitions": float(self.acquisitions),
            "contended": float(self.contended),
            "wait_s": self.wait_s,
        }


@dataclass
class CacheEntry:
    value: Any
    stored_at: float
    ttl: float
    #: monotonically-bumped write counter of the owning cache — the HTTP
    #: layer derives strong ETags from it, so any rewrite of the entry
    #: (even with an equal value) invalidates outstanding validators
    generation: int = 0

    def expires_at(self) -> float:
        """Absolute simulated time at which the entry expires."""
        return self.stored_at + self.ttl

    def is_fresh(self, now: float) -> bool:
        """True while ``now`` is *strictly* before the entry's expiry.

        The boundary is half-open by design: at exactly
        ``stored_at + ttl`` the entry is already expired.  Eviction
        ordering (:meth:`TTLCache._evict_one`), :meth:`TTLCache.read`,
        and the stale-serving path all share this method, so they agree
        on the instant an entry stops being fresh — a lookup at the
        boundary is a miss, and a stale serve at the boundary reports
        ``age == ttl``.
        """
        return now < self.expires_at()

    def age(self, now: float) -> float:
        """Seconds since the entry was stored."""
        return now - self.stored_at


def _source_of(key: str) -> str:
    """The data-source label for a cache key.

    :class:`~repro.core.routes.DashboardContext` namespaces every key as
    ``"<source>:<key>"``; un-namespaced keys (direct cache users, unit
    tests) are grouped under ``"default"``.
    """
    return key.split(":", 1)[0] if ":" in key else "default"


#: every value the ``result`` label of ``repro_cache_requests_total`` can
#: take.  The label is **one-hot**: each lookup increments exactly one
#: result, so summing the family counts lookups with no double counting.
LOOKUP_RESULTS = (
    "hit",  # fresh entry served
    "miss",  # no entry; this caller computed
    "expired",  # expired entry; this caller recomputed
    "stale_served",  # compute failed (or leader overran); expired entry served
    "coalesced",  # follower served the leader's in-flight result
    "coalesced_failed",  # follower inherited the leader's failure, no stale
)

#: every value the ``result`` label of ``repro_cache_refresh_ahead_total``
#: can take (one-hot per *armed* refresh decision; plain soft-window hits
#: that find a refresh already in flight are counted in
#: ``repro_cache_served_while_refreshing_total`` instead)
REFRESH_RESULTS = (
    "ok",  # background refresh ran and stored a fresh entry
    "error",  # background refresh raised; entry left as-is
    "rejected",  # worker-pool queue full; refresh dropped
    "paused",  # refresh gate closed (brownout/shed); nothing enqueued
    "superseded",  # refresh finished after the key was invalidated; discarded
)


class CacheStats:
    """Read-only view of the cache/fetch counters in a metrics registry.

    Historically a plain dataclass of ad-hoc ints; the counters now live
    in the shared :class:`~repro.obs.MetricsRegistry` (per-source, and
    scraped via ``/metrics``), and this view keeps the old attribute API
    for the admin page, examples, and tests.  Each property sums the
    backing family across label sets.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()

    @property
    def hits(self) -> int:
        return int(self.registry.total("repro_cache_requests_total", result="hit"))

    @property
    def misses(self) -> int:
        return int(self.registry.total("repro_cache_requests_total", result="miss"))

    @property
    def expirations(self) -> int:
        return int(self.registry.total("repro_cache_requests_total", result="expired"))

    @property
    def stale_served(self) -> int:
        """Expired entries handed out because the backend could not answer."""
        return int(
            self.registry.total("repro_cache_requests_total", result="stale_served")
        )

    @property
    def coalesced(self) -> int:
        """Lookups served from another thread's in-flight compute."""
        return int(
            self.registry.total("repro_cache_requests_total", result="coalesced")
        )

    @property
    def coalesced_waiters(self) -> int:
        """Follower threads that waited on an in-flight compute."""
        return int(self.registry.total("repro_cache_coalesced_waiters_total"))

    @property
    def evictions(self) -> int:
        """Entries dropped to stay under ``max_entries``."""
        return int(self.registry.total("repro_cache_evictions_total"))

    @property
    def purged(self) -> int:
        """Entries removed by :meth:`TTLCache.purge_expired` / ``delete``."""
        return int(self.registry.total("repro_cache_purged_total"))

    @property
    def retries(self) -> int:
        """Fetch attempts repeated by the resilient fetch path."""
        return int(self.registry.total("repro_fetch_retries_total"))

    @property
    def breaker_opens(self) -> int:
        """Circuit-breaker transitions into the open state."""
        return int(
            self.registry.total("repro_breaker_transitions_total", to="open")
        )

    @property
    def requests(self) -> int:
        """Total cache lookups.  ``result`` is one-hot, so the family sum
        *is* the lookup count — an expired lookup no longer counts as
        both ``expired`` and ``miss``."""
        return int(self.registry.total("repro_cache_requests_total"))

    @property
    def hit_rate(self) -> float:
        """Fresh hits over all lookups (one-hot denominator)."""
        requests = self.requests
        return self.hits / requests if requests else 0.0


@dataclass
class CacheLookup:
    """What one :meth:`TTLCache.lookup` produced, with coalescing detail."""

    value: Any
    #: one of :data:`LOOKUP_RESULTS` — mirrors the counted result label
    result: str
    #: age (s) of the expired entry served, when ``result == "stale_served"``
    stale_age_s: Optional[float] = None
    #: ``"leader"`` ran the compute, ``"follower"`` waited on another
    #: thread's in-flight compute, ``None`` for fresh hits
    role: Optional[str] = None
    #: True when this lookup was served from cache while a refresh-ahead
    #: revalidation for the key is in flight (or was just armed)
    refreshing: bool = False


class _InFlight:
    """One in-flight compute: the leader's pending result for a key."""

    __slots__ = ("event", "leader_thread", "value", "exc", "waiters", "cancelled")

    #: sentinel leader id for refresh-ahead flights: the compute has been
    #: queued but no worker thread owns it yet, so no caller can match it
    #: as "their own" reentrant compute
    NO_THREAD = -1

    def __init__(self, leader_thread: int):
        self.event = threading.Event()
        self.leader_thread = leader_thread
        self.value: Any = None
        self.exc: Optional[BaseException] = None
        self.waiters = 0
        #: set by delete()/clear() when the key was removed mid-flight:
        #: followers treat the flight as leaderless and recompute instead
        #: of trusting a result for a key that no longer exists
        self.cancelled = False


class TTLCache:
    """Clock-driven TTL cache with single-flight fetch-with-block semantics.

    Thread-safe: handler threads of the HTTP server share one instance,
    so every read/write of ``_entries`` happens under a lock.  Compute
    blocks run *outside* the lock (they can be slow and may reenter the
    cache).  Unlike ``Rails.cache.fetch``, concurrent misses on one key
    are **coalesced**: the first thread becomes the leader and runs the
    compute block; followers wait on its in-flight result (bounded by
    ``follower_timeout_s``) instead of each hitting the backend, so a
    popular key expiring under load costs one backend query, not N.

    When a :attr:`refresh_runner` is wired (the dashboard wires the
    shared :class:`~repro.core.workers.WorkerPool`), lookups may also
    pass ``soft_ttl``/``refresh`` to get **refresh-ahead**: a fresh hit
    whose age has reached ``soft_ttl`` is served immediately and a
    single-flight background revalidation is enqueued, keyed through the
    same ``_inflight`` map so a miss-leader and a refresh task can never
    run concurrently for one key.  :attr:`refresh_gate` (when set) can
    veto arming — the dashboard closes it outside the ``normal``
    admission tier so background work never deepens an overload.

    Eviction keeps an expiry-ordered heap alongside the dict, so the
    at-capacity write path is O(log n) instead of a full O(n) scan.
    Heap entries are invalidated lazily: a popped entry is only honoured
    if the live dict still holds the same (key, expiry) pair.
    """

    def __init__(self, clock: SimClock, default_ttl: float = 60.0, max_entries: int = 10_000,
                 registry: Optional[MetricsRegistry] = None, coalesce: bool = True,
                 shard: Optional[str] = None):
        if default_ttl <= 0:
            raise ValueError("default_ttl must be positive")
        self.clock = clock
        self.default_ttl = default_ttl
        self.max_entries = max_entries
        #: single-flight coalescing switch (off reproduces the historic
        #: every-thread-computes behaviour, for A/B benchmarks)
        self.coalesce = coalesce
        #: shard label when this cache is one shard of a
        #: :class:`~repro.core.sharding.ShardedCache`; None standalone
        self.shard = shard
        self._entries: Dict[str, CacheEntry] = {}
        #: write counter stamped onto every stored entry (under the lock),
        #: so (key, generation) uniquely names one stored value
        self._generation = 0
        #: per-key invalidation epoch: bumped by delete/clear/invalidate.
        #: Compute paths snapshot the epoch before running and store
        #: through :meth:`_write_if_current`, so a value computed against
        #: pre-invalidation state can never resurrect a removed key.
        self._epochs: Dict[str, int] = {}
        self._expiry_heap: List[Tuple[float, str]] = []
        self._inflight: Dict[str, _InFlight] = {}
        self._lock = ContentionLock()
        #: shared registry (the dashboard's) or a private one; either way
        #: lookups/evictions become first-class per-source metrics
        self.metrics = registry or MetricsRegistry()
        self._requests = self.metrics.counter(
            "repro_cache_requests_total",
            "Server-cache lookups by data source and result (one-hot).",
            ("source", "result"),
        )
        self._evicted = self.metrics.counter(
            "repro_cache_evictions_total",
            "Entries evicted to stay under max_entries, by data source.",
            ("source",),
        )
        self._purged = self.metrics.counter(
            "repro_cache_purged_total",
            "Entries dropped by purge_expired/delete/clear, by source and reason.",
            ("source", "reason"),
        )
        self._coalesced_waiters = self.metrics.counter(
            "repro_cache_coalesced_waiters_total",
            "Follower threads that waited on an in-flight compute, by source.",
            ("source",),
        )
        self._refresh_ahead = self.metrics.counter(
            "repro_cache_refresh_ahead_total",
            "Refresh-ahead arming decisions by data source and result.",
            ("source", "result"),
        )
        for result in REFRESH_RESULTS:
            self._refresh_ahead.inc(0.0, source="default", result=result)
        self._served_refreshing = self.metrics.counter(
            "repro_cache_served_while_refreshing_total",
            "Soft-expired hits served while a background refresh was in flight.",
            ("source",),
        )
        self._served_refreshing.inc(0.0, source="default")
        self._stale_write_skipped = self.metrics.counter(
            "repro_cache_stale_writes_skipped_total",
            "Computed values discarded because the key was invalidated "
            "mid-compute (epoch moved between snapshot and store).",
            ("source",),
        )
        self._stale_write_skipped.inc(0.0, source="default")
        #: enqueue hook for background refreshes — callable taking a
        #: zero-arg thunk and returning True when accepted (the dashboard
        #: wires ``WorkerPool.try_submit``); None disables refresh-ahead
        self.refresh_runner: Optional[Callable[[Callable[[], None]], bool]] = None
        #: arming gate — when set and returning False, soft-expired hits
        #: are served without enqueuing a refresh (counted ``paused``);
        #: the dashboard wires ``admission.tier == "normal"``
        self.refresh_gate: Optional[Callable[[], bool]] = None
        if shard is None:
            self._inflight_gauge = self.metrics.gauge(
                "repro_cache_inflight_keys",
                "Keys with a single-flight compute currently running.",
            )
            self._inflight_gauge.set(0.0)
            self._entries_gauge = self.metrics.gauge(
                "repro_cache_entries",
                "Live entries in the server-side TTL cache.",
            )
            self._entries_gauge.set(0.0)
        else:
            # one shard of a ShardedCache: per-shard labeled gauges, so
            # N shards sharing one registry never clobber each other;
            # the sharded front reconciles the classic unlabeled
            # families at scrape time
            self._inflight_gauge = self.metrics.gauge(
                "repro_cache_shard_inflight_keys",
                "Keys with a compute in flight, per cache shard.",
                ("shard",),
            )
            self._inflight_gauge.set(0.0, shard=shard)
            self._entries_gauge = self.metrics.gauge(
                "repro_cache_shard_entries",
                "Live entries per cache shard.",
                ("shard",),
            )
            self._entries_gauge.set(0.0, shard=shard)
        self.stats = CacheStats(self.metrics)

    def _count(self, key: str, result: str) -> None:
        self._requests.inc(source=_source_of(key), result=result)

    def _sync_gauges_locked(self) -> None:
        """Keep the live-size gauges in lockstep with the dicts (called
        with the cache lock held, after any mutation)."""
        if self.shard is None:
            self._entries_gauge.set(float(len(self._entries)))
            self._inflight_gauge.set(float(len(self._inflight)))
        else:
            self._entries_gauge.set(float(len(self._entries)), shard=self.shard)
            self._inflight_gauge.set(float(len(self._inflight)), shard=self.shard)

    def lock_stats(self) -> Dict[str, float]:
        """Lifetime contention profile of the cache lock (acquisitions,
        contended acquisitions, wall seconds spent waiting)."""
        return self._lock.stats()

    # -- Rails.cache.fetch, single-flight ------------------------------------

    def fetch(self, key: str, compute: Callable[[], Any], ttl: Optional[float] = None,
              follower_timeout_s: Optional[float] = None) -> Any:
        """Return the cached value for ``key``; on miss/expiry call
        ``compute``, store its result with ``ttl``, and return it.

        Concurrent misses coalesce: only the leader runs ``compute`` and
        followers share its result (or its exception)."""
        return self.lookup(
            key, compute, ttl=ttl, follower_timeout_s=follower_timeout_s
        ).value

    def fetch_or_stale(
        self,
        key: str,
        compute: Callable[[], Any],
        ttl: Optional[float] = None,
        stale_on: Tuple[Type[BaseException], ...] = (Exception,),
        follower_timeout_s: Optional[float] = None,
    ) -> Tuple[Any, Optional[float]]:
        """:meth:`fetch`, but degrade instead of failing when possible.

        Returns ``(value, stale_age_s)``.  ``stale_age_s`` is ``None``
        for a fresh hit or a successful compute; when ``compute`` raises
        one of ``stale_on`` and an expired entry survives, that stale
        value is returned with its age in seconds.  With no fallback
        entry the exception propagates.  Followers degrade the same way
        when their leader fails — or when it outlives
        ``follower_timeout_s`` — so a whole stampede produces at most
        one backend failure.
        """
        result = self.lookup(
            key, compute, ttl=ttl, stale_on=stale_on,
            follower_timeout_s=follower_timeout_s,
        )
        return result.value, result.stale_age_s

    def lookup(
        self,
        key: str,
        compute: Callable[[], Any],
        ttl: Optional[float] = None,
        stale_on: Tuple[Type[BaseException], ...] = (),
        follower_timeout_s: Optional[float] = None,
        soft_ttl: Optional[float] = None,
        refresh: Optional[Callable[[], Any]] = None,
    ) -> CacheLookup:
        """The full fetch path, reporting how the value was obtained.

        One miss, one compute: the first thread to miss becomes the
        *leader*, registers an in-flight marker, and runs ``compute``
        outside the lock; threads missing on the same key meanwhile
        become *followers* and wait (at most ``follower_timeout_s``
        seconds, forever when ``None``) for the leader's result.

        Followers degrade to the expired entry — when ``stale_on`` is
        non-empty and one exists — if the leader fails or overruns the
        wait budget; with nothing stale, a leader failure propagates to
        every follower, and a timed-out follower stops waiting and
        computes on its own rather than blocking past its budget.

        Each call increments ``repro_cache_requests_total`` exactly once
        (see :data:`LOOKUP_RESULTS`).  Reentrant computes are safe: a
        compute block touching a *different* key coalesces per key, and
        one re-fetching its *own* key just computes again instead of
        deadlocking on itself.

        When ``soft_ttl`` and ``refresh`` are both given, a fresh hit
        whose age has *reached* ``soft_ttl`` (half-open, mirroring
        :meth:`CacheEntry.is_fresh`: at ``age == soft_ttl`` the refresh
        is due) additionally arms a deduplicated background revalidation
        via :attr:`refresh_runner` — the hit is still served instantly,
        and ``refresh`` runs off-thread to rewrite the entry before its
        hard expiry.
        """
        flight: Optional[_InFlight] = None
        role = "leader"
        with self._lock:
            epoch = self._epochs.get(key, 0)
            entry = self._entries.get(key)
            if entry is not None and entry.is_fresh(self.clock.now()):
                refreshing = False
                if (
                    soft_ttl is not None
                    and refresh is not None
                    and entry.age(self.clock.now()) >= soft_ttl
                ):
                    refreshing = self._maybe_refresh_locked(key, refresh, ttl)
                    if refreshing:
                        self._served_refreshing.inc(source=_source_of(key))
                self._count(key, "hit")
                return CacheLookup(
                    value=entry.value, result="hit", refreshing=refreshing
                )
            had_expired = entry is not None
            if self.coalesce:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight(threading.get_ident())
                    self._inflight[key] = flight
                    self._sync_gauges_locked()
                elif flight.leader_thread == threading.get_ident():
                    # our own compute reentered the same key: computing
                    # again is safe, waiting on ourselves never returns
                    flight = None
                else:
                    flight.waiters += 1
                    self._coalesced_waiters.inc(source=_source_of(key))
                    role = "follower"
        if role == "follower":
            assert flight is not None
            return self._await_leader(
                key, flight, compute, ttl, stale_on, follower_timeout_s, epoch
            )
        return self._lead(key, flight, compute, ttl, stale_on, had_expired, epoch)

    def _lead(
        self,
        key: str,
        flight: Optional[_InFlight],
        compute: Callable[[], Any],
        ttl: Optional[float],
        stale_on: Tuple[Type[BaseException], ...],
        had_expired: bool,
        epoch: int,
    ) -> CacheLookup:
        """Run ``compute`` as the single-flight leader (outside the lock)
        and resolve the in-flight marker for any followers."""
        role = "leader" if flight is not None else None
        try:
            value = compute()
        except BaseException as exc:
            if stale_on and isinstance(exc, stale_on):
                with self._lock:
                    entry = self._entries.get(key)
                if entry is not None:
                    self._count(key, "stale_served")
                    self._resolve(key, flight, exc=exc)
                    return CacheLookup(
                        value=entry.value,
                        result="stale_served",
                        stale_age_s=entry.age(self.clock.now()),
                        role=role,
                    )
            self._count(key, "expired" if had_expired else "miss")
            self._resolve(key, flight, exc=exc)
            raise
        # store before resolving so late followers and new arrivals see
        # the fresh entry the moment they stop being coalesced — unless
        # the key was invalidated mid-compute, in which case storing would
        # resurrect a value computed against pre-invalidation state
        self._write_if_current(key, value, ttl, epoch)
        result = "expired" if had_expired else "miss"
        self._count(key, result)
        self._resolve(key, flight, value=value)
        return CacheLookup(value=value, result=result, role=role)

    def _resolve(self, key: str, flight: Optional[_InFlight],
                 value: Any = None, exc: Optional[BaseException] = None) -> None:
        """Publish the leader's outcome and retire the in-flight marker."""
        if flight is None:
            return
        flight.value = value
        flight.exc = exc
        with self._lock:
            if self._inflight.get(key) is flight:
                del self._inflight[key]
            self._sync_gauges_locked()
        flight.event.set()

    # -- refresh-ahead -------------------------------------------------------

    def _maybe_refresh_locked(
        self, key: str, refresh: Callable[[], Any], ttl: Optional[float]
    ) -> bool:
        """Arm one background revalidation for ``key`` (lock held).

        Returns True when a refresh is in flight after the call — whether
        this lookup armed it or an earlier one did (dedup through the
        same ``_inflight`` map the miss path uses, so at most one compute
        per key ever runs).  The gate is consulted at *arm* time only: a
        refresh already running when the dashboard browns out is allowed
        to finish — it holds a bulkhead slot and a short deadline, so it
        is bounded anyway.
        """
        if self.refresh_runner is None:
            return False
        if key in self._inflight:
            return True  # dedup: miss-leader or earlier refresh already on it
        if self.refresh_gate is not None and not self.refresh_gate():
            self._refresh_ahead.inc(source=_source_of(key), result="paused")
            return False
        flight = _InFlight(_InFlight.NO_THREAD)
        self._inflight[key] = flight
        self._sync_gauges_locked()
        epoch = self._epochs.get(key, 0)
        accepted = self.refresh_runner(
            lambda: self._run_refresh(key, flight, refresh, ttl, epoch)
        )
        if not accepted:
            # pool saturated: retire the marker so the next soft-window
            # hit (or a real miss) can try again
            if self._inflight.get(key) is flight:
                del self._inflight[key]
            self._sync_gauges_locked()
            flight.event.set()
            self._refresh_ahead.inc(source=_source_of(key), result="rejected")
            return False
        return True

    def _run_refresh(
        self,
        key: str,
        flight: _InFlight,
        refresh: Callable[[], Any],
        ttl: Optional[float],
        epoch: int,
    ) -> None:
        """Execute one armed revalidation (on a worker-pool thread)."""
        flight.leader_thread = threading.get_ident()
        try:
            value = refresh()
        except BaseException as exc:  # noqa: BLE001 - published to followers
            self._refresh_ahead.inc(source=_source_of(key), result="error")
            self._resolve(key, flight, exc=exc)
            return
        stored = self._write_if_current(key, value, ttl, epoch)
        self._refresh_ahead.inc(
            source=_source_of(key), result="ok" if stored else "superseded"
        )
        self._resolve(key, flight, value=value)

    def _await_leader(
        self,
        key: str,
        flight: _InFlight,
        compute: Callable[[], Any],
        ttl: Optional[float],
        stale_on: Tuple[Type[BaseException], ...],
        follower_timeout_s: Optional[float],
        epoch: int,
    ) -> CacheLookup:
        """Wait (bounded) for the in-flight leader, degrading to stale or
        an independent compute rather than blocking past the budget."""
        completed = flight.event.wait(timeout=follower_timeout_s)
        if completed and flight.cancelled:
            # delete()/clear() retired the flight while we waited: the
            # leader's (eventual) result is for a key that was explicitly
            # removed, so behave as if the leader never answered —
            # recheck the entry below, then compute independently
            completed = False
        if completed and flight.exc is None:
            self._count(key, "coalesced")
            return CacheLookup(
                value=flight.value, result="coalesced", role="follower"
            )
        degradable = bool(stale_on) and (
            not completed or isinstance(flight.exc, stale_on)
        )
        with self._lock:
            entry = self._entries.get(key)
            now = self.clock.now()
            # re-snapshot: an independent compute below starts *now*, so
            # only invalidations landing after this point should fence it
            epoch = self._epochs.get(key, 0)
        if entry is not None:
            if entry.is_fresh(now):
                # someone (a retrying leader, a writer) refreshed the
                # entry while we waited — as good as a coalesced result
                self._count(key, "coalesced")
                return CacheLookup(
                    value=entry.value, result="coalesced", role="follower"
                )
            if degradable:
                self._count(key, "stale_served")
                return CacheLookup(
                    value=entry.value,
                    result="stale_served",
                    stale_age_s=entry.age(now),
                    role="follower",
                )
        if completed:
            assert flight.exc is not None
            self._count(key, "coalesced_failed")
            raise flight.exc
        # waited the whole budget with nothing stale to serve: stop
        # following and compute independently (counted as this lookup's
        # one result, whatever compute does)
        self._count(key, "expired" if entry is not None else "miss")
        value = compute()
        self._write_if_current(key, value, ttl, epoch)
        return CacheLookup(
            value=value,
            result="expired" if entry is not None else "miss",
            role="follower",
        )

    # -- direct access -----------------------------------------------------

    def read(self, key: str) -> Any:
        """Fresh value or None (does not count toward hit/miss stats)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.is_fresh(self.clock.now()):
                return entry.value
            return None

    def write(self, key: str, value: Any, ttl: Optional[float] = None) -> None:
        """Store ``value`` under ``key`` with the given (or default) TTL."""
        with self._lock:
            self._write_locked(key, value, ttl)

    def _write_locked(self, key: str, value: Any, ttl: Optional[float]) -> None:
        ttl = self.default_ttl if ttl is None else ttl
        if ttl <= 0:
            raise ValueError(f"ttl must be positive: {ttl}")
        if len(self._entries) >= self.max_entries and key not in self._entries:
            self._evict_one()
        self._generation += 1
        entry = CacheEntry(
            value=value, stored_at=self.clock.now(), ttl=ttl,
            generation=self._generation,
        )
        self._entries[key] = entry
        heapq.heappush(self._expiry_heap, (entry.expires_at(), key))
        # overwrites leave dead heap entries behind; rebuild before
        # the lazy skip in _evict_one degrades to a linear scan
        if len(self._expiry_heap) > 4 * max(self.max_entries, 64):
            self._rebuild_heap()
        self._sync_gauges_locked()

    def epoch_of(self, key: str) -> int:
        """The key's current invalidation epoch (0 until first removal)."""
        with self._lock:
            return self._epochs.get(key, 0)

    def _write_if_current(
        self, key: str, value: Any, ttl: Optional[float], epoch: int
    ) -> bool:
        """Store ``value`` only if ``key`` has not been invalidated since
        ``epoch`` was snapshotted; the check and the store share one lock
        hold, so an invalidation can never slip between them.  Returns
        whether the value was stored."""
        with self._lock:
            if self._epochs.get(key, 0) != epoch:
                self._stale_write_skipped.inc(source=_source_of(key))
                return False
            self._write_locked(key, value, ttl)
            return True

    def _cancel_flight_locked(self, key: str) -> None:
        """Retire the in-flight marker for an explicitly removed key.

        Followers wake immediately (instead of waiting out their full
        budget on a leader for a key that no longer exists) and treat the
        flight as leaderless.  The leader itself is unaware: its eventual
        ``_resolve`` is a no-op (identity mismatch) and its ``write``
        may re-store the key — the same benign race an uncoalesced
        delete-during-compute always had.
        """
        flight = self._inflight.pop(key, None)
        if flight is not None:
            flight.cancelled = True
            flight.event.set()

    def delete(self, key: str) -> bool:
        """Remove one key; returns True if it existed.

        Any in-flight compute for the key is cancelled for followers and
        the ``repro_cache_inflight_keys`` gauge reconciled, so delete
        never strands waiters or leaks in-flight records."""
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            self._epochs[key] = self._epochs.get(key, 0) + 1
            self._cancel_flight_locked(key)
            if existed:
                self._purged.inc(source=_source_of(key), reason="deleted")
            self._sync_gauges_locked()
            return existed

    def invalidate(self, key: str) -> bool:
        """Event-driven removal: drop the entry *and* bump the key's
        epoch, so a compute already in flight for it cannot store its
        (pre-invalidation) result afterwards.  Returns True if an entry
        existed.

        This is what the materialized-view hub calls when a
        :class:`~repro.sim.bus.StateChange` covers a cached key: the next
        request recomputes from post-change state — no TTL wait, no
        stale-value resurrection, no stranded
        ``repro_cache_inflight_keys``."""
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            self._epochs[key] = self._epochs.get(key, 0) + 1
            self._cancel_flight_locked(key)
            if existed:
                self._purged.inc(source=_source_of(key), reason="invalidated")
            self._sync_gauges_locked()
            return existed

    def clear(self) -> None:
        """Drop every entry (and cancel every in-flight compute)."""
        with self._lock:
            for key in self._entries:
                self._purged.inc(source=_source_of(key), reason="cleared")
                self._epochs[key] = self._epochs.get(key, 0) + 1
            self._entries.clear()
            self._expiry_heap.clear()
            for key in list(self._inflight):
                self._epochs[key] = self._epochs.get(key, 0) + 1
                self._cancel_flight_locked(key)
            self._sync_gauges_locked()

    def entry(self, key: str) -> Optional[CacheEntry]:
        """The raw entry (fresh or stale), for staleness instrumentation."""
        with self._lock:
            return self._entries.get(key)

    def generation_of(self, key: str) -> Optional[int]:
        """The stored entry's write generation, or None when absent —
        the validator the HTTP delivery layer builds ETags from."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.generation if entry is not None else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _rebuild_heap(self) -> None:
        self._expiry_heap = [
            (e.expires_at(), k) for k, e in self._entries.items()
        ]
        heapq.heapify(self._expiry_heap)

    def _evict_one(self) -> None:
        """Evict the entry closest to expiry (cheap stand-in for LRU)."""
        while self._expiry_heap:
            expires_at, key = heapq.heappop(self._expiry_heap)
            entry = self._entries.get(key)
            if entry is not None and entry.expires_at() == expires_at:
                del self._entries[key]
                self._evicted.inc(source=_source_of(key))
                self._sync_gauges_locked()
                return

    def purge_expired(self) -> int:
        """Drop expired entries; returns how many were removed.

        Each removal is counted in ``repro_cache_purged_total`` so the
        ``repro_cache_entries`` gauge and ``len(cache)`` stay auditable
        from ``/metrics`` between scrapes."""
        with self._lock:
            now = self.clock.now()
            stale = [k for k, e in self._entries.items() if not e.is_fresh(now)]
            for k in stale:
                del self._entries[k]
                self._purged.inc(source=_source_of(k), reason="expired")
            if stale:
                self._sync_gauges_locked()
            return len(stale)


#: data sources whose cache entries the event-driven materialized-view
#: hub (:mod:`repro.core.views`) keeps current: scheduler state changes
#: invalidate and re-materialize them, so their TTLs become a fallback
VIEW_SOURCES = (
    "squeue",
    "sinfo",
    "scontrol_node",
    "scontrol_job",
    "scontrol_assoc",
    "sacct",
)


@dataclass(frozen=True)
class CachePolicy:
    """Per-data-source TTLs (seconds), as chosen in the paper §2.4/§3.

    "cluster announcements ... cache the articles ... for 30 minutes to an
    hour"; "the recent jobs widget queries squeue ... we set the cache
    expiration time to around 30 seconds."
    """

    squeue: float = 30.0
    sinfo: float = 60.0
    sacct: float = 120.0
    scontrol_node: float = 60.0
    scontrol_job: float = 15.0
    scontrol_assoc: float = 300.0
    news: float = 1800.0
    storage: float = 3600.0
    default: float = 60.0
    #: per-fetch latency budget before the resilient fetch path declares a
    #: DaemonTimeoutError; generous so only injected slowdowns trip it
    timeout_default_s: float = 30.0
    #: per-source timeout overrides, e.g. ``{"squeue": 0.5}``
    timeouts_s: Mapping[str, float] = field(default_factory=dict)
    #: default per-request deadline (charged wall time + simulated costs);
    #: generous enough that a full retry schedule against a slowed daemon
    #: (3 attempts × timeout + backoff) fits — only injected tight budgets
    #: or client ``X-Request-Deadline-Ms`` headers trip it
    deadline_default_s: float = 300.0
    #: hard cap on any deadline, including client-supplied ones
    deadline_max_s: float = 900.0
    #: per-route deadline overrides, e.g. ``{"recent_jobs": 3.0}``
    deadlines_s: Mapping[str, float] = field(default_factory=dict)
    #: refresh-ahead master switch: when False no soft TTLs are computed
    #: and lookups never arm background revalidation
    refresh_ahead: bool = True
    #: soft TTL as a fraction of the hard TTL — a hot key older than
    #: ``soft_ttl_fraction × ttl`` is revalidated in the background while
    #: the cached value is still served; must satisfy 0 < f <= 1
    soft_ttl_fraction: float = 0.8
    #: wall/simulated budget for one background revalidation — short, so
    #: a sick daemon fails a refresh fast instead of pinning pool workers
    refresh_deadline_s: float = 5.0
    #: event-driven materialized views master switch: when True the hub in
    #: :mod:`repro.core.views` subscribes to the cluster's state-change
    #: bus, invalidates covered keys on each change, and re-materializes
    #: them on scheduler passes — TTLs for :data:`VIEW_SOURCES` are then a
    #: fallback, not the freshness mechanism
    event_views: bool = False
    #: how far the serving TTL for view-managed sources is stretched when
    #: :attr:`event_views` is on (events keep entries correct; the long
    #: TTL only bounds staleness if the bus ever goes quiet)
    view_ttl_factor: float = 20.0

    def __post_init__(self) -> None:
        if not (0.0 < self.soft_ttl_fraction <= 1.0):
            raise ValueError(
                f"soft_ttl_fraction must be in (0, 1]: {self.soft_ttl_fraction}"
            )
        if self.refresh_deadline_s <= 0:
            raise ValueError(
                f"refresh_deadline_s must be positive: {self.refresh_deadline_s}"
            )
        if self.view_ttl_factor < 1.0:
            raise ValueError(
                f"view_ttl_factor must be >= 1: {self.view_ttl_factor}"
            )

    def ttl_for(self, source: str) -> float:
        """TTL (seconds) for a named data source; unknown sources get the default."""
        return float(getattr(self, source, self.default))

    def serve_ttl_for(self, source: str) -> float:
        """The TTL actually stored with a cache entry.

        Equal to :meth:`ttl_for` normally; for view-managed sources under
        :attr:`event_views` the base TTL is stretched by
        :attr:`view_ttl_factor` — events keep those entries correct, so
        the TTL is demoted to a staleness backstop."""
        ttl = self.ttl_for(source)
        if self.event_views and source in VIEW_SOURCES:
            return ttl * self.view_ttl_factor
        return ttl

    def timeout_for(self, source: str) -> float:
        """Latency budget (seconds) for one fetch of a named data source."""
        return float(self.timeouts_s.get(source, self.timeout_default_s))

    def soft_ttl_for(self, source: str, ttl: Optional[float] = None) -> Optional[float]:
        """Soft TTL (seconds) after which a hot key is revalidated in the
        background, or None when refresh-ahead is disabled.

        Derived from the *base* per-source TTL by default; pass ``ttl``
        to derive from an explicit hard TTL instead.  Kept independent of
        brownout TTL stretching on purpose: after recovery, refresh-ahead
        then naturally rewrites entries that brownout left with stretched
        expiries.
        """
        if not self.refresh_ahead:
            return None
        if self.event_views and source in VIEW_SOURCES:
            # the view hub re-materializes these on scheduler passes;
            # refresh-ahead on top would double every backend RPC
            return None
        base = self.ttl_for(source) if ttl is None else float(ttl)
        return self.soft_ttl_fraction * base

    def deadline_for(self, route: str) -> float:
        """Per-request deadline budget (seconds) for a named route,
        capped at :attr:`deadline_max_s`."""
        budget = float(self.deadlines_s.get(route, self.deadline_default_s))
        return min(budget, self.deadline_max_s)

    def clamp_deadline(self, budget_s: float) -> float:
        """Cap a client-requested deadline at :attr:`deadline_max_s`."""
        return min(float(budget_s), self.deadline_max_s)

    def as_dict(self) -> Dict[str, float]:
        """All per-source TTLs as a plain dict (for reporting)."""
        return {
            name: float(getattr(self, name))
            for name in (
                "squeue",
                "sinfo",
                "sacct",
                "scontrol_node",
                "scontrol_job",
                "scontrol_assoc",
                "news",
                "storage",
            )
        }
