"""Real-time job monitoring — the paper's §9 "real-time job monitoring"
future-work item, implemented as the documented extension.

Production Open OnDemand frontends poll; true push would need a message
bus.  :class:`JobWatcher` models the polling client cleanly: each
``poll()`` diffs the viewer's current job list against the previous
snapshot and emits typed events (submitted / started / finished /
reason-changed), which a frontend would surface as toast notifications.

The watcher reads through the same cached ``squeue`` path as the Recent
Jobs widget, so watching adds no extra slurmctld load beyond what the
dashboard already generates (§3.2's constraint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.auth import Viewer
from repro.slurm.model import JobState

from .records import JobRecord
from .routes import DashboardContext


@dataclass(frozen=True)
class JobEvent:
    """One observed change in a watched job."""

    kind: str  # "submitted" | "started" | "finished" | "reason_changed" | "requeued"
    job_id: int
    display_id: str
    name: str
    state: JobState
    detail: str = ""
    at: float = 0.0


@dataclass
class _Snapshot:
    state: JobState
    reason: str


class JobWatcher:
    """Polling monitor over one viewer's jobs."""

    def __init__(self, ctx: DashboardContext, viewer: Viewer):
        self.ctx = ctx
        self.viewer = viewer
        self._known: Dict[int, _Snapshot] = {}
        self._primed = False
        self.events_seen = 0

    def poll(self) -> List[JobEvent]:
        """Diff the viewer's job list against the last poll.

        The first poll primes the snapshot and emits nothing (a user who
        just opened the page should not be spammed with history).
        Terminal jobs eventually leave squeue output (MinJobAge); a job
        that disappears while active is reported as finished with an
        unknown final state.
        """
        now = self.ctx.now()
        records = self.ctx.recent_jobs_of(self.viewer.username)
        events: List[JobEvent] = []
        current: Dict[int, _Snapshot] = {}
        for rec in records:
            current[rec.job_id] = _Snapshot(state=rec.state, reason=rec.reason)
            if not self._primed:
                continue
            prev = self._known.get(rec.job_id)
            events.extend(self._diff(rec, prev, now))
        if self._primed:
            for job_id, prev in self._known.items():
                if job_id not in current and prev.state.is_active:
                    events.append(
                        JobEvent(
                            kind="finished",
                            job_id=job_id,
                            display_id=str(job_id),
                            name="",
                            state=prev.state,
                            detail="job left the queue",
                            at=now,
                        )
                    )
        self._known = current
        self._primed = True
        self.events_seen += len(events)
        return events

    def _diff(
        self, rec: JobRecord, prev: Optional[_Snapshot], now: float
    ) -> List[JobEvent]:
        out: List[JobEvent] = []
        if prev is None:
            out.append(self._event("submitted", rec, now))
            if rec.state is not JobState.PENDING:
                # submitted and progressed between polls
                kind = "started" if rec.state is JobState.RUNNING else "finished"
                out.append(self._event(kind, rec, now))
            return out
        if prev.state is rec.state:
            if (
                rec.state is JobState.PENDING
                and prev.reason != rec.reason
            ):
                out.append(
                    self._event(
                        "reason_changed",
                        rec,
                        now,
                        detail=f"{prev.reason} -> {rec.reason}",
                    )
                )
            return out
        if rec.state is JobState.PENDING:
            # active -> pending only happens on preemption/requeue
            out.append(
                self._event(
                    "requeued", rec, now, detail=f"was {prev.state.value}"
                )
            )
        elif rec.state is JobState.RUNNING:
            out.append(self._event("started", rec, now))
        elif rec.state.is_terminal:
            if prev.state is JobState.PENDING:
                # pending -> terminal skipped the running notification
                out.append(self._event("started", rec, now, detail="(implied)"))
            out.append(
                self._event("finished", rec, now, detail=rec.state.value)
            )
        return out

    @staticmethod
    def _event(kind: str, rec: JobRecord, now: float, detail: str = "") -> JobEvent:
        return JobEvent(
            kind=kind,
            job_id=rec.job_id,
            display_id=rec.display_id,
            name=rec.name,
            state=rec.state,
            detail=detail,
            at=now,
        )
