"""Query-parameter coercion and validation shared by the HTTP layer and
the route handlers.

The wire format only carries strings; :func:`coerce_params` types them
conservatively (ints, finite floats, booleans, else strings) and
:func:`positive_int_param` validates the common ``?limit=N`` shape.
Validation failures raise :class:`ParamError`, which the route
dispatcher and the HTTP server both render as a structured 400 — a bad
query string must never surface as a 500.

Historically these helpers lived in :mod:`repro.web.server`; they moved
here so widget handlers can validate their own params without importing
the HTTP layer (``repro.web.server`` re-exports them for backward
compatibility).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional


class ParamError(ValueError):
    """A query parameter failed validation — rendered as a structured 400."""


def coerce_params(pairs) -> Dict[str, Any]:
    """Type query-string values: ints, finite floats, booleans, else strings.

    Values like ``nan``, ``inf`` or ``1e309`` *parse* as floats but must
    stay strings: a NaN/Infinity that reaches a response payload makes
    ``json.dumps`` emit literals no JSON parser accepts.

    Python's ``int()``/``float()`` are also looser than the wire format:
    they accept ``_`` digit separators (``"1_000"`` -> 1000) and
    surrounding whitespace (``" 42 "`` -> 42).  Neither spelling is a
    number in a query string, so any value containing an underscore or
    whitespace skips numeric coercion and stays a string.

    Malformed *shapes* are the client's mistake and raise
    :class:`ParamError` (a structured 400) instead of being papered over:
    a blank value (``?limit=``, which ``parse_qsl`` silently dropped
    before callers passed ``keep_blank_values``) and a duplicate key
    (where last-one-wins would let ``?limit=1&limit=999`` smuggle the
    second value past anything that audited the first).
    """
    out: Dict[str, Any] = {}
    for key, value in pairs:
        if key in out:
            raise ParamError(f"duplicate query param {key!r}")
        if value == "":
            raise ParamError(f"query param {key!r} has a blank value")
        if value.lower() in ("true", "false"):
            out[key] = value.lower() == "true"
            continue
        if "_" in value or any(ch.isspace() for ch in value):
            out[key] = value
            continue
        try:
            out[key] = int(value)
            continue
        except ValueError:
            pass
        try:
            number = float(value)
            if math.isfinite(number):
                out[key] = number
                continue
        except ValueError:
            pass
        out[key] = value
    return out


def positive_int_param(
    params: Dict[str, Any], name: str, maximum: Optional[int] = None
) -> Optional[int]:
    """The value of an integer query param that must be >= 1 (or absent).

    ``coerce_params`` maps ``"true"``/``"false"`` to booleans, and
    ``isinstance(True, int)`` holds in Python — so a naive ``isinstance``
    check silently reads ``?limit=true`` as ``limit=1``.  Booleans,
    non-integers, zero and negative values are all rejected with a
    :class:`ParamError` instead of leaking into slicing arithmetic.
    """
    value = params.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ParamError(
            f"query param {name!r} must be a positive integer, got {value!r}"
        )
    if value < 1:
        raise ParamError(
            f"query param {name!r} must be >= 1, got {value}"
        )
    if maximum is not None and value > maximum:
        raise ParamError(
            f"query param {name!r} must be <= {maximum}, got {value}"
        )
    return value
