"""Dashboard pages/apps (paper §3–§7)."""

from . import (
    admin,
    cluster_status,
    homepage,
    job_overview,
    job_performance,
    my_jobs,
    news_page,
    node_overview,
    sessions_page,
)

ALL_PAGE_ROUTES = (
    homepage.ROUTE,
    my_jobs.ROUTE,
    job_performance.ROUTE,
    cluster_status.ROUTE,
    node_overview.ROUTE,
    job_overview.ROUTE,
    admin.ROUTE,
    news_page.ROUTE,
    sessions_page.ROUTE,
)

__all__ = [
    "admin",
    "cluster_status",
    "homepage",
    "job_overview",
    "job_performance",
    "my_jobs",
    "news_page",
    "node_overview",
    "sessions_page",
    "ALL_PAGE_ROUTES",
]
