"""Node Overview page (paper §6.1, Figure 4c).

A full look at one node: a status card (state + last-active timestamp)
and a resource-usage card (CPU / GPU / memory with bars) on top, and two
tabs below — node configuration details straight from ``scontrol show
node``, and the jobs currently running on the node.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.auth import Viewer
from repro.sim.clock import duration_hms
from repro.slurm.model import NodeState, format_memory

from ..colors import node_state_color, utilization_color
from ..records import NodeRecord
from ..rendering import card, data_table, el, progress_bar, tabs
from ..routes import ApiRoute, DashboardContext, scatter_sections

#: scontrol fields surfaced in the details tab, in display order
DETAIL_FIELDS = (
    ("NodeName", "Node name"),
    ("Arch", "Architecture"),
    ("CoresPerSocket", "Cores per socket"),
    ("Sockets", "Sockets"),
    ("CPUTot", "Total CPUs"),
    ("RealMemory", "Real memory (MB)"),
    ("Gres", "Generic resources"),
    ("AvailableFeatures", "Available features"),
    ("OS", "Operating system"),
    ("Version", "Slurmd version"),
    ("BootTime", "Boot time"),
    ("Partitions", "Partitions"),
)


def node_overview_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: cards + tabs for one node (``params['node']``)."""
    name = params.get("node")
    if not name:
        raise ValueError("missing required parameter 'node'")
    rec = ctx.node_record(str(name))
    now = ctx.now()
    # the four blocks derive independently from the record fetched above,
    # so they build concurrently on the shared worker pool
    data = scatter_sections(
        ctx,
        (
            ("status", lambda: _status_card(ctx, rec)),
            ("usage", lambda: _usage_card(rec)),
            ("details", lambda: _details(rec)),
            ("running_jobs", lambda: _running_jobs(ctx, rec, now)),
        ),
    )
    return {"node": rec.name, **data}


def _status_card(ctx: DashboardContext, rec: NodeRecord) -> Dict[str, Any]:
    state = NodeState(rec.state)
    return {
        "state": rec.state,
        "state_color": node_state_color(state),
        "online": state.is_online,
        "reason": rec.reason,
        "last_active": (
            ctx.clock.isoformat(rec.last_busy) if rec.last_busy is not None else "n/a"
        ),
    }


def _usage_card(rec: NodeRecord) -> Dict[str, Any]:
    return {
        "cpu": {
            "used": rec.cpus_alloc,
            "total": rec.cpus_total,
            "fraction": round(rec.cpu_fraction, 4),
            "color": utilization_color(rec.cpu_fraction),
            "load": rec.cpu_load,
        },
        "memory": {
            "used_mb": rec.memory_alloc_mb,
            "total_mb": rec.memory_total_mb,
            "display": f"{format_memory(rec.memory_alloc_mb)} / "
            f"{format_memory(rec.memory_total_mb)}",
            "fraction": round(rec.memory_fraction, 4),
            "color": utilization_color(rec.memory_fraction),
        },
        "gpu": (
            {
                "used": rec.gpus_alloc,
                "total": rec.gpus_total,
                "model": rec.gres_model,
                "fraction": round(rec.gpu_fraction, 4),
                "color": utilization_color(rec.gpu_fraction),
            }
            if rec.gpu_fraction is not None
            else None
        ),
    }


def _details(rec: NodeRecord) -> List[Dict[str, Any]]:
    return [
        {"field": label, "value": rec.raw.get(key, "")}
        for key, label in DETAIL_FIELDS
        if rec.raw.get(key) not in (None, "", "(null)")
    ]


def _running_jobs(
    ctx: DashboardContext, rec: NodeRecord, now: float
) -> List[Dict[str, Any]]:
    running = []
    for job in ctx.cluster.scheduler.jobs_on_node(rec.name):
        running.append(
            {
                "job_id": job.display_id,
                "name": job.name,
                "user": job.user,
                "partition": job.partition,
                "state": job.state.value,
                "allocated_memory": format_memory(
                    job.req.mem_mb // max(1, job.req.nodes)
                ),
                "allocated_cpus": -(-job.req.cpus // max(1, job.req.nodes)),
                "elapsed": duration_hms(job.elapsed(now)),
                "overview_url": f"/jobs/{job.job_id}",
            }
        )
    return running


def render_node_overview(data: Dict[str, Any]):
    """Frontend: two cards on top, two tabs below (Figure 4c)."""
    status = data["status"]
    usage = data["usage"]
    status_body = [
        el(
            "div",
            el("span", status["state"], cls=f"node-state text-{status['state_color']}"),
        ),
        el("div", f"Last active: {status['last_active']}"),
    ]
    if status["reason"]:
        status_body.append(el("div", f"Reason: {status['reason']}", cls="text-muted"))
    usage_body: List[object] = [
        el("div", f"CPUs: {usage['cpu']['used']}/{usage['cpu']['total']} "
                  f"(load {usage['cpu']['load']:g})"),
        progress_bar(usage["cpu"]["fraction"], label="CPU usage"),
        el("div", f"Memory: {usage['memory']['display']}"),
        progress_bar(usage["memory"]["fraction"], label="Memory usage"),
    ]
    if usage["gpu"] is not None:
        usage_body.append(
            el(
                "div",
                f"GPUs ({usage['gpu']['model']}): "
                f"{usage['gpu']['used']}/{usage['gpu']['total']}",
            )
        )
        usage_body.append(progress_bar(usage["gpu"]["fraction"], label="GPU usage"))

    details_tab = data_table(
        ["Field", "Value"],
        [[d["field"], d["value"]] for d in data["details"]],
        cls="node-details",
        sortable=False,
    )
    jobs_tab = data_table(
        ["Job", "Name", "User", "Partition", "State", "CPUs", "Memory", "Elapsed"],
        [
            [
                el("td", el("a", j["job_id"], href=j["overview_url"])),
                j["name"],
                j["user"],
                j["partition"],
                j["state"],
                str(j["allocated_cpus"]),
                j["allocated_memory"],
                j["elapsed"],
            ]
            for j in data["running_jobs"]
        ],
        cls="node-running-jobs",
    )
    return el(
        "section",
        el("header", el("h3", f"Node {data['node']}"), cls="page-header"),
        el(
            "div",
            card("Status", *status_body, cls="status-card"),
            card("Resource usage", *usage_body, cls="usage-card"),
            cls="card-row",
        ),
        tabs([("Node details", details_tab), ("Running jobs", jobs_tab)]),
        cls="page page-node-overview",
    )


ROUTE = ApiRoute(
    name="node_overview",
    path="/api/v1/node_overview",
    feature="Node Overview",
    data_sources=("scontrol show node (Slurm)",),
    handler=node_overview_data,
    client_max_age_s=30.0,
)
