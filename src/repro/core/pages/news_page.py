"""Full news listing — the Announcements widget's "view all news at the
click of a button ... navigate to a list of all cluster-related
articles" (§3.1).

Same accordion layout and color/past styling as the widget, but over
the complete article history, with a category filter.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.auth import Viewer
from repro.news.api import Category

from ..colors import announcement_color, announcement_style
from ..rendering import accordion, el
from ..routes import ApiRoute, DashboardContext


def news_page_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: every article, newest first, optional category."""
    category = params.get("category")
    cat: Category | None = None
    if category:
        try:
            cat = Category(str(category))
        except ValueError:
            raise ValueError(
                f"unknown category {category!r}; expected one of "
                f"{[c.value for c in Category]}"
            ) from None
    now = ctx.now()
    articles = sorted(ctx.news.all_articles(), key=lambda a: -a.posted_at)
    if cat is not None:
        articles = [a for a in articles if a.category is cat]
    return {
        "articles": [
            {
                "id": a.article_id,
                "title": a.title,
                "body": a.body,
                "category": a.category.value,
                "color": announcement_color(a.category),
                "style": announcement_style(a, now),
                "posted_at": ctx.clock.isoformat(a.posted_at),
                "starts_at": ctx.clock.isoformat(a.starts_at)
                if a.starts_at is not None
                else None,
                "ends_at": ctx.clock.isoformat(a.ends_at)
                if a.ends_at is not None
                else None,
            }
            for a in articles
        ],
        "categories": [c.value for c in Category],
        "filter": cat.value if cat else None,
    }


def render_news_page(data: Dict[str, Any]):
    """Frontend: category filter buttons + the full accordion."""
    filters = el(
        "div",
        el(
            "button",
            "All",
            cls="btn filter-option" + ("" if data["filter"] else " active"),
        ),
        *[
            el(
                "button",
                c.capitalize(),
                cls="btn filter-option"
                + (" active" if data["filter"] == c else ""),
                data_category=c,
            )
            for c in data["categories"]
        ],
        cls="category-filter",
        role="group",
        aria_label="Filter by category",
    )
    items = [
        (
            art["title"],
            art["body"],
            {
                "color": art["color"],
                "style": art["style"],
                "subtitle": art["posted_at"]
                + (
                    f" — window {art['starts_at']} to {art['ends_at']}"
                    if art["starts_at"]
                    else ""
                ),
            },
        )
        for art in data["articles"]
    ]
    return el(
        "section",
        el("header", el("h3", "Cluster News"), filters, cls="page-header"),
        accordion(items),
        cls="page page-news",
    )


ROUTE = ApiRoute(
    name="news_page",
    path="/api/v1/news",
    feature="News page (all articles)",
    data_sources=("API call to RCAC news page",),
    handler=news_page_data,
    client_max_age_s=600.0,
)
