"""My Jobs app (paper §4, Figure 3).

The job-accounting page that replaces Open OnDemand's Active Jobs app:

* a table of **all** the viewer's jobs and their groups' jobs — every
  state, not just queued — with QoS, start/end times, wait time, and
  (toggleable) time/CPU/memory efficiency columns;
* expandable per-job details (requested memory, GPU hours, allocated
  CPUs, session id, nodes);
* friendly explanations next to obscure Slurm reasons ("AssocGrpCpuLimit");
* efficiency warnings for over-requested jobs;
* the two §4.2 charts: job-state distribution and GPU-hour distribution,
  both grouped by user.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.auth import Viewer
from repro.sim.clock import duration_hms
from repro.slurm import reasons as R
from repro.slurm.hostlist import compress_hostlist
from repro.slurm.model import JobState, format_memory

from ..charts import gpu_hour_distribution, job_state_distribution
from ..colors import job_state_color, job_state_label
from ..efficiency import compute_efficiency, efficiency_warnings
from ..records import JobRecord
from ..rendering import badge, data_table, el, tooltip_span
from ..routes import ApiRoute, DashboardContext


def my_jobs_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler for the job table + charts."""
    now = ctx.now()
    start = params.get("start")
    end = params.get("end")
    state_filter: Optional[str] = params.get("state")
    search: str = str(params.get("search", "")).lower()
    show_efficiency = bool(params.get("efficiency", False))
    # experimental (§4.1: "currently underway"): GPU efficiency from the
    # telemetry collector rather than Slurm accounting
    show_gpu_efficiency = bool(params.get("gpu_efficiency", False))

    records = ctx.jobs_in_scope(viewer, start=start, end=end)
    if state_filter:
        try:
            wanted = JobState(state_filter)
        except ValueError:
            raise ValueError(f"unknown state filter {state_filter!r}") from None
        records = [r for r in records if r.state is wanted]
    if search:
        records = [
            r
            for r in records
            if search in r.name.lower()
            or search in r.user.lower()
            or search in r.display_id
        ]
    records.sort(key=lambda r: -r.submit_time)

    rows = [
        _job_row(
            ctx,
            r,
            now,
            show_efficiency=show_efficiency,
            show_gpu_efficiency=show_gpu_efficiency,
        )
        for r in records
    ]
    state_chart = job_state_distribution(records)
    gpu_chart = gpu_hour_distribution(records, now)
    return {
        "jobs": rows,
        "total": len(rows),
        "efficiency_enabled": show_efficiency,
        "gpu_efficiency_enabled": show_gpu_efficiency,
        "charts": {
            "state_distribution": state_chart.to_chartjs(),
            "gpu_hours": gpu_chart.to_chartjs(),
        },
    }


def _job_row(
    ctx: DashboardContext,
    rec: JobRecord,
    now: float,
    show_efficiency: bool,
    show_gpu_efficiency: bool = False,
) -> Dict[str, Any]:
    reason_info = R.explain(rec.reason)
    eff = compute_efficiency(rec, now)
    session_id = ""
    if rec.is_interactive:
        # resolve the OOD session id from job provenance (sacct text does
        # not carry it; the paper's backend asks OOD, as we do here)
        internal = ctx.cluster.accounting.get(rec.job_id)
        if internal is None:
            try:
                internal = ctx.cluster.scheduler.job(rec.job_id)
            except KeyError:
                internal = None
        if internal is not None and internal.spec.interactive is not None:
            session_id = internal.spec.interactive.session_id
    warnings = [
        {"kind": w.kind, "used_pct": round(w.used_pct, 1), "message": w.message}
        for w in efficiency_warnings(rec, now, eff)
    ]
    row: Dict[str, Any] = {
        "job_id": rec.display_id,
        "name": rec.name,
        "user": rec.user,
        "account": rec.account,
        "partition": rec.partition,
        "qos": rec.qos,
        "state": rec.state.value,
        "state_label": job_state_label(rec.state),
        "state_color": job_state_color(rec.state),
        "reason": rec.reason,
        "reason_friendly": (
            reason_info.friendly if rec.state is JobState.PENDING else ""
        ),
        "submit_time": ctx.clock.isoformat(rec.submit_time),
        "start_time": (
            ctx.clock.isoformat(rec.start_time) if rec.start_time is not None else ""
        ),
        "end_time": (
            ctx.clock.isoformat(rec.end_time) if rec.end_time is not None else ""
        ),
        "wait_time": duration_hms(rec.wait_time(now)),
        "elapsed": duration_hms(rec.elapsed(now)),
        "warnings": warnings,
        "overview_url": f"/jobs/{rec.job_id}",
        "details": {
            "requested_memory": format_memory(rec.req.mem_mb),
            "allocated_cpus": rec.req.cpus,
            "requested_nodes": rec.req.nodes,
            "gpu_hours": round(rec.gpu_hours(now), 2),
            "nodes": compress_hostlist(rec.nodes) if rec.nodes else "",
            "session_id": session_id,
            "interactive_app": rec.interactive_app or "",
            "exit_code": rec.exit_code,
            "time_limit": duration_hms(rec.time_limit),
        },
    }
    if show_efficiency:
        row["efficiency"] = {
            "time": eff.format("time"),
            "cpu": eff.format("cpu"),
            "memory": eff.format("memory"),
        }
        if show_gpu_efficiency:
            gpu_eff = ctx.cluster.gpu_telemetry.efficiency(rec.job_id)
            row["efficiency"]["gpu"] = (
                "n/a" if gpu_eff is None else f"{gpu_eff * 100:.0f}%"
            )
    return row


def render_my_jobs(data: Dict[str, Any]):
    """Frontend: the Figure 3 table (+ charts are consumed by Chart.js)."""
    headers = [
        "Job ID",
        "Name",
        "User",
        "QoS",
        "State",
        "Submitted",
        "Started",
        "Ended",
        "Wait",
    ]
    if data["efficiency_enabled"]:
        headers += ["Time eff.", "CPU eff.", "Mem eff."]
    rows = []
    row_attrs = []
    for job in data["jobs"]:
        state_cell = el(
            "td",
            badge(job["state_label"], job["state_color"]),
            (
                tooltip_span(job["reason"], job["reason_friendly"])
                if job["reason_friendly"]
                else None
            ),
        )
        cells: List[object] = [
            el("td", el("a", job["job_id"], href=job["overview_url"])),
            job["name"],
            job["user"],
            job["qos"],
            state_cell,
            job["submit_time"],
            job["start_time"],
            job["end_time"],
            job["wait_time"],
        ]
        if data["efficiency_enabled"]:
            eff = job["efficiency"]
            cells += [eff["time"], eff["cpu"], eff["memory"]]
        rows.append(cells)
        row_attrs.append(
            {
                "data-job-id": job["job_id"],
                "class": "job-row"
                + (" has-warnings" if job["warnings"] else ""),
            }
        )
    warning_banners = [
        el(
            "div",
            w["message"],
            cls="alert alert-warning efficiency-warning",
            role="alert",
        )
        for job in data["jobs"]
        for w in job["warnings"]
    ]
    return el(
        "section",
        el(
            "header",
            el("h3", "My Jobs"),
            el(
                "button",
                "Toggle Efficiency Data",
                cls="btn toggle-efficiency"
                + (" active" if data["efficiency_enabled"] else ""),
                aria_pressed="true" if data["efficiency_enabled"] else "false",
            ),
            cls="page-header",
        ),
        *warning_banners[:10],
        data_table(headers, rows, cls="my-jobs-table", row_attrs=row_attrs),
        el("div", cls="chart", id="state-distribution-chart", data_chart="state"),
        el("div", cls="chart", id="gpu-hours-chart", data_chart="gpu"),
        cls="page page-my-jobs",
    )


ROUTE = ApiRoute(
    name="my_jobs",
    path="/api/v1/my_jobs",
    feature="My Jobs",
    data_sources=("sacct (Slurm)",),
    handler=my_jobs_data,
    client_max_age_s=60.0,
)
