"""Job Performance Metrics app (paper §5, Figure 4a).

Aggregate metrics over a selectable time range: total job count, average
queue wait, mean job duration, total wall time, plus the mean time/CPU/
memory efficiencies.  Ranges span "the last 24 hours to all time", plus a
custom date range.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.auth import Viewer
from repro.sim.clock import duration_hms

from ..efficiency import mean_efficiency
from ..rendering import card, el
from ..routes import ApiRoute, DashboardContext

#: named ranges the UI offers (label -> seconds back from now; None = all)
TIME_RANGES: Dict[str, Optional[float]] = {
    "24h": 24 * 3600.0,
    "7d": 7 * 86400.0,
    "30d": 30 * 86400.0,
    "90d": 90 * 86400.0,
    "all": None,
}


def resolve_range(
    ctx: DashboardContext, params: Dict[str, Any]
) -> Tuple[Optional[float], Optional[float], str]:
    """Resolve the requested range to (start, end, label).

    ``range`` names one of :data:`TIME_RANGES`; ``start``/``end`` (ISO
    strings) select a custom range, which wins if present.
    """
    now = ctx.now()
    if "start" in params or "end" in params:
        start = ctx.clock.parse_iso(params["start"]) if "start" in params else None
        end = ctx.clock.parse_iso(params["end"]) if "end" in params else None
        if start is not None and end is not None and end < start:
            raise ValueError("custom range ends before it starts")
        return start, end, "custom"
    name = str(params.get("range", "7d"))
    if name not in TIME_RANGES:
        raise ValueError(
            f"unknown range {name!r}; expected one of {sorted(TIME_RANGES)}"
        )
    back = TIME_RANGES[name]
    return (None, None, name) if back is None else (now - back, None, name)


def job_performance_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: the §5 aggregate metric summary."""
    now = ctx.now()
    start, end, label = resolve_range(ctx, params)
    records = ctx.jobs_in_scope(viewer, start=start, end=end)
    # metrics describe the viewer's own jobs; the group view stays in My Jobs
    own = [r for r in records if r.user == viewer.username]

    started = [r for r in own if r.start_time is not None]
    waits = [r.wait_time(now) for r in own]
    durations = [r.elapsed(now) for r in started]
    total_wall = sum(durations)
    metrics = {
        "job_count": len(own),
        "avg_queue_wait": duration_hms(sum(waits) / len(waits)) if waits else "n/a",
        "avg_queue_wait_s": round(sum(waits) / len(waits), 1) if waits else None,
        "mean_duration": (
            duration_hms(total_wall / len(durations)) if durations else "n/a"
        ),
        "mean_duration_s": (
            round(total_wall / len(durations), 1) if durations else None
        ),
        "total_wall_time": duration_hms(total_wall),
        "total_wall_time_s": round(total_wall, 1),
        "total_cpu_hours": round(sum(r.cpu_hours(now) for r in own), 2),
        "total_gpu_hours": round(sum(r.gpu_hours(now) for r in own), 2),
        "mean_time_efficiency": _pct(mean_efficiency(own, now, "time")),
        "mean_cpu_efficiency": _pct(mean_efficiency(own, now, "cpu")),
        "mean_memory_efficiency": _pct(mean_efficiency(own, now, "memory")),
    }
    return {
        "range": label,
        "available_ranges": list(TIME_RANGES),
        "metrics": metrics,
    }


def _pct(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value * 100, 1)


def render_job_performance(data: Dict[str, Any]):
    """Frontend: metric cards + range selector (Figure 4a)."""
    m = data["metrics"]
    selector = el(
        "div",
        *[
            el(
                "button",
                label,
                cls="btn range-option" + (" active" if label == data["range"] else ""),
                data_range=label,
            )
            for label in data["available_ranges"]
        ],
        el("button", "Custom…", cls="btn range-option", data_range="custom"),
        cls="range-selector",
        role="group",
        aria_label="Time range",
    )
    cards = [
        card("Total jobs", str(m["job_count"])),
        card("Average queue wait", m["avg_queue_wait"]),
        card("Mean job duration", m["mean_duration"]),
        card("Total wall time", m["total_wall_time"]),
        card(
            "Efficiency",
            el("div", f"Time: {_fmt_pct(m['mean_time_efficiency'])}"),
            el("div", f"CPU: {_fmt_pct(m['mean_cpu_efficiency'])}"),
            el("div", f"Memory: {_fmt_pct(m['mean_memory_efficiency'])}"),
        ),
        card(
            "Usage",
            el("div", f"CPU hours: {m['total_cpu_hours']:g}"),
            el("div", f"GPU hours: {m['total_gpu_hours']:g}"),
        ),
    ]
    return el(
        "section",
        el("header", el("h3", "Job Performance Metrics"), selector, cls="page-header"),
        el("div", *cards, cls="metric-cards"),
        cls="page page-job-performance",
    )


def _fmt_pct(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:g}%"


ROUTE = ApiRoute(
    name="job_performance",
    path="/api/v1/job_performance",
    feature="Job Performance Metrics",
    data_sources=("sacct (Slurm)",),
    handler=job_performance_data,
    client_max_age_s=300.0,
)
