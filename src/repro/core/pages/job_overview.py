"""Job Overview page (paper §7, Figure 4d).

Single-job deep dive: a large header with the color-coded state, a
timeline (submitted -> eligible -> started -> ended), then tabs:

* **overview** — Job Information / Resources / Time / Efficiency cards;
* **session** — only for Open OnDemand interactive jobs: app name with a
  relaunch link, session id, working-directory link, connect controls;
* **output / error** — the job's logs, last 1000 lines with line numbers,
  permission-checked against the submitting user, with a files-app link
  to the full file;
* **job array** — only for array members: sibling tasks with states.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.auth import Viewer
from repro.ood import files_app_url
from repro.sim.clock import duration_hms
from repro.slurm import reasons as R
from repro.slurm.model import JobState, format_memory

from ..colors import job_state_color, job_state_label
from ..efficiency import compute_efficiency
from ..records import JobRecord
from ..rendering import badge, card, data_table, el, tabs, timeline
from ..routes import ApiRoute, DashboardContext, scatter_sections


def job_overview_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: everything the Job Overview page shows for one job."""
    raw_id = params.get("job_id")
    if raw_id is None:
        raise ValueError("missing required parameter 'job_id'")
    job_id = int(raw_id)
    rec = ctx.job_record(job_id)

    # privacy: the page itself is visible to the submitter and group
    # members (like My Jobs rows); logs are gated separately below.
    internal = _internal_job(ctx, job_id)
    if internal is not None and not ctx.policy.can_see_job(viewer, internal):
        from repro.auth import PermissionDenied

        raise PermissionDenied(
            f"user {viewer.username!r} may not view job {job_id}"
        )

    now = ctx.now()
    tz_offset = int(params.get("tz_offset_minutes", 0))
    # the six sections only depend on the record fetched above, so they
    # build concurrently on the shared worker pool (declared order kept)
    return scatter_sections(
        ctx,
        (
            ("header", lambda: _header(ctx, rec)),
            ("timeline", lambda: _timeline(ctx, rec, tz_offset)),
            ("overview", lambda: _overview_cards(ctx, rec, now)),
            ("session", lambda: _session_tab(ctx, rec, internal)),
            ("logs", lambda: _log_tabs(ctx, viewer, rec, internal, now)),
            ("array", lambda: _array_tab(ctx, rec)),
        ),
    )


def _internal_job(ctx: DashboardContext, job_id: int):
    try:
        return ctx.cluster.scheduler.job(job_id)
    except KeyError:
        return ctx.cluster.accounting.get(job_id)


def _header(ctx: DashboardContext, rec: JobRecord) -> Dict[str, Any]:
    reason = rec.reason
    return {
        "job_id": rec.display_id,
        "name": rec.name,
        "state": rec.state.value,
        "state_label": job_state_label(rec.state),
        "state_color": job_state_color(rec.state),
        "reason": reason if reason not in ("None", "") else "",
        "reason_friendly": (
            R.explain(reason).friendly
            if rec.state is JobState.PENDING and reason not in ("None", "")
            else ""
        ),
    }


def _timeline(
    ctx: DashboardContext, rec: JobRecord, tz_offset_minutes: int = 0
) -> Dict[str, Any]:
    """§7: submitted, eligible, started, ended markers, "adjusted for the
    user's local timezone" via the viewer-supplied offset."""

    def fmt(t):
        if t is None:
            return None
        if tz_offset_minutes:
            return ctx.clock.isoformat_tz(t, tz_offset_minutes)
        return ctx.clock.isoformat(t)

    events = []
    for label, t in (
        ("Submitted", rec.submit_time),
        ("Eligible", rec.eligible_time),
        ("Started", rec.start_time),
        ("Ended", rec.end_time),
    ):
        events.append(
            {"label": label, "time": fmt(t), "reached": t is not None}
        )
    return {
        "events": events,
        "color": job_state_color(rec.state),
        "tz_offset_minutes": tz_offset_minutes,
    }


def _overview_cards(ctx: DashboardContext, rec: JobRecord, now: float) -> Dict[str, Any]:
    eff = compute_efficiency(rec, now)
    return {
        "job_information": {
            "name": rec.name,
            "user": rec.user,
            "account": rec.account,
            "partition": rec.partition,
            "qos": rec.qos,
            "exit_code": rec.exit_code,
        },
        "resources": {
            "cpus": rec.req.cpus,
            "nodes": rec.req.nodes,
            "memory": format_memory(rec.req.mem_mb),
            "gpus": rec.req.gpus,
            "node_links": [
                {"name": n, "overview_url": f"/nodes/{n}"} for n in rec.nodes
            ],
        },
        "time": {
            "wall_time": duration_hms(rec.elapsed(now)),
            "time_limit": duration_hms(rec.time_limit),
            "time_remaining": (
                duration_hms(max(0.0, rec.time_limit - rec.elapsed(now)))
                if rec.state is JobState.RUNNING
                else None
            ),
            "cpu_time": duration_hms(rec.total_cpu_seconds),
            "queue_wait": duration_hms(rec.wait_time(now)),
        },
        "efficiency": {
            "time": eff.format("time"),
            "cpu": eff.format("cpu"),
            "memory": eff.format("memory"),
        },
    }


def _session_tab(
    ctx: DashboardContext, rec: JobRecord, internal
) -> Optional[Dict[str, Any]]:
    """Session tab data, or None for plain batch jobs (§7)."""
    if internal is None or internal.spec.interactive is None:
        return None
    info = internal.spec.interactive
    session = ctx.sessions.session_for_job(internal)
    connect = ctx.sessions.connect_url(session) if session else None
    app = ctx.apps.get(info.app_name) if info.app_name in ctx.apps else None
    return {
        "app": info.app_name,
        "app_title": app.title if app else info.app_name,
        "relaunch_url": app.form_url if app else "",
        "session_id": info.session_id,
        "working_dir": info.working_dir,
        "working_dir_url": files_app_url(info.working_dir),
        "connect_url": connect,
        "state": ctx.sessions.card_state(session) if session else "Completed",
    }


def _log_tabs(
    ctx: DashboardContext,
    viewer: Viewer,
    rec: JobRecord,
    internal,
    now: float,
) -> Dict[str, Any]:
    """Output/error tabs: tail of each log, or an access notice.

    Log visibility inherits file permissions: only the submitting user
    (§7) — group members can see the page but not the log contents.
    """
    if internal is None:
        return {"available": False, "reason": "log files no longer on disk"}
    if not ctx.policy.can_read_job_logs(viewer, internal):
        return {
            "available": False,
            "reason": f"permission denied: logs belong to {rec.user}",
        }
    out: Dict[str, Any] = {"available": True}
    for stream, path_fn in (("out", ctx.logs.stdout_path), ("err", ctx.logs.stderr_path)):
        lines, first_no, total = ctx.logs.tail(internal, stream, now)
        out[stream] = {
            "path": path_fn(internal),
            "full_file_url": files_app_url(path_fn(internal)),
            "first_line_number": first_no,
            "total_lines": total,
            "truncated": total > len(lines),
            "lines": lines,
        }
    return out


def _array_tab(ctx: DashboardContext, rec: JobRecord) -> Optional[Dict[str, Any]]:
    """Array tab: sibling tasks; None when the job is not part of an array."""
    if not rec.is_array_task:
        return None
    now = ctx.now()
    tasks = []
    siblings = ctx.cluster.accounting.jobs_of_array(rec.array_job_id)
    seen = {j.job_id for j in siblings}
    for job in ctx.cluster.scheduler.visible_jobs():
        if job.array_job_id == rec.array_job_id and job.job_id not in seen:
            siblings.append(job)
    siblings.sort(key=lambda j: j.array_task_id or 0)
    for job in siblings:
        tasks.append(
            {
                "job_id": job.display_id,
                "task_id": job.array_task_id,
                "state": job.state.value,
                "state_color": job_state_color(job.state),
                "submit_time": ctx.clock.isoformat(job.submit_time),
                "end_time": (
                    ctx.clock.isoformat(job.end_time)
                    if job.end_time is not None
                    else ""
                ),
                "nodes": ",".join(job.nodes),
                "elapsed": duration_hms(job.elapsed(now)),
                "overview_url": f"/jobs/{job.job_id}",
            }
        )
    return {"array_job_id": rec.array_job_id, "tasks": tasks}


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def render_job_overview(data: Dict[str, Any]):
    """Frontend: header + timeline + tab panes (Figure 4d)."""
    header = data["header"]
    head = el(
        "header",
        el("h2", f"Job {header['job_id']}: {header['name']}", cls="job-title"),
        badge(header["state_label"], header["state_color"]),
        (
            el("span", f"({header['reason']})", title=header["reason_friendly"],
               cls="job-reason")
            if header["reason"]
            else None
        ),
        cls="page-header job-header",
    )
    tl = timeline(
        [
            (ev["label"], ev["time"] or "—", ev["reached"])
            for ev in data["timeline"]["events"]
        ],
        data["timeline"]["color"],
    )
    panes = [("Overview", _render_overview_cards(data["overview"]))]
    if data["session"] is not None:
        panes.append(("Session", _render_session(data["session"])))
    logs = data["logs"]
    if logs["available"]:
        panes.append(("Output", _render_log(logs["out"])))
        panes.append(("Error", _render_log(logs["err"])))
    else:
        panes.append(("Output", el("div", logs["reason"], cls="log-unavailable")))
    if data["array"] is not None:
        panes.append(("Job array", _render_array(data["array"])))
    return el(
        "section",
        head,
        tl,
        tabs(panes),
        cls="page page-job-overview",
    )


def _render_overview_cards(ov: Dict[str, Any]):
    info = ov["job_information"]
    res = ov["resources"]
    tm = ov["time"]
    eff = ov["efficiency"]
    node_links = [
        el("a", n["name"], href=n["overview_url"], cls="node-link")
        for n in res["node_links"]
    ]
    return el(
        "div",
        card(
            "Job Information",
            el("div", f"Name: {info['name']}"),
            el("div", f"User: {info['user']}"),
            el("div", f"Allocation: {info['account']}"),
            el("div", f"Partition: {info['partition']}"),
            el("div", f"QoS: {info['qos']}"),
        ),
        card(
            "Resources",
            el("div", f"CPUs: {res['cpus']}"),
            el("div", f"Nodes: {res['nodes']}"),
            el("div", f"Memory: {res['memory']}"),
            el("div", f"GPUs: {res['gpus']}") if res["gpus"] else None,
            el("div", "Allocated nodes: ", *node_links) if node_links else None,
        ),
        card(
            "Time",
            el("div", f"Wall time: {tm['wall_time']}"),
            el("div", f"Time limit: {tm['time_limit']}"),
            (
                el("div", f"Time remaining: {tm['time_remaining']}")
                if tm["time_remaining"]
                else None
            ),
            el("div", f"CPU time: {tm['cpu_time']}"),
        ),
        card(
            "Efficiency",
            el("div", f"CPU efficiency: {eff['cpu']}"),
            el("div", f"Memory efficiency: {eff['memory']}"),
            el("div", f"Time efficiency: {eff['time']}"),
        ),
        cls="card-row overview-cards",
    )


def _render_session(sess: Dict[str, Any]):
    body = [
        el("div", "App: ", el("a", sess["app_title"], href=sess["relaunch_url"])),
        el("div", f"Session ID: {sess['session_id']}"),
        el(
            "div",
            "Working directory: ",
            el("a", sess["working_dir"], href=sess["working_dir_url"]),
        ),
        el("div", f"State: {sess['state']}"),
    ]
    if sess["connect_url"]:
        body.append(
            el("a", "Connect", href=sess["connect_url"], cls="btn btn-connect")
        )
    return el("div", *body, cls="session-tab")


def _render_log(log: Dict[str, Any]):
    gutter_start = log["first_line_number"]
    lines = [
        el(
            "div",
            el("span", str(gutter_start + i), cls="line-number"),
            el("span", line, cls="line-text"),
            cls="log-line",
        )
        for i, line in enumerate(log["lines"])
    ]
    notice = None
    if log["truncated"]:
        notice = el(
            "div",
            f"Showing the most recent {len(log['lines'])} of "
            f"{log['total_lines']} lines.",
            cls="log-truncation-notice",
        )
    return el(
        "div",
        el("a", "Open full file", href=log["full_file_url"], cls="full-file-link"),
        notice,
        el(
            "div",
            *lines,
            cls="log-view",
            role="log",
            data_autoscroll="bottom",
            tabindex="0",
        ),
        cls="log-tab",
    )


def _render_array(arr: Dict[str, Any]):
    return data_table(
        ["Task", "State", "Submitted", "Ended", "Nodes", "Elapsed"],
        [
            [
                el("td", el("a", t["job_id"], href=t["overview_url"])),
                el("td", el("span", t["state"], cls=f"text-{t['state_color']}")),
                t["submit_time"],
                t["end_time"],
                t["nodes"],
                t["elapsed"],
            ]
            for t in arr["tasks"]
        ],
        cls="array-table",
    )


ROUTE = ApiRoute(
    name="job_overview",
    path="/api/v1/job_overview",
    feature="Job Overview",
    data_sources=("scontrol show job (Slurm)",),
    handler=job_overview_data,
    client_max_age_s=15.0,
)
