"""Dashboard homepage (paper §3, Figure 2).

Assembles the five widgets into one page.  Crucially it does *not* wait
for any widget's data: the page shell renders immediately with loading
placeholders, and each widget is populated from its own API route (§2.3)
— that is what :func:`render_homepage_shell` vs :func:`render_homepage`
model.  Widget failures degrade to an inline error block instead of
taking the page down (§2.4 Modularity).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.auth import Viewer

from ..rendering import brownout_banner, el, loading_placeholder, page_shell
from ..routes import ApiRoute, DashboardContext, RouteRegistry
from ..widgets import ALL_WIDGET_ROUTES, WIDGET_RENDERERS

#: widget order on the homepage (Figure 2 layout)
HOMEPAGE_WIDGETS = tuple(route.name for route in ALL_WIDGET_ROUTES)


def homepage_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: the homepage *manifest* — which widgets to load and
    from where.  Widget payloads come from the individual routes."""
    return {
        "username": viewer.username,
        "widgets": [
            {"name": r.name, "path": r.path, "max_age_s": r.client_max_age_s}
            for r in ALL_WIDGET_ROUTES
        ],
    }


def render_homepage_shell(username: str):
    """The instantly-served page: chrome + a loading placeholder per
    widget (§2.3: 'the dashboard to load instantly and display a loading
    animation')."""
    slots = [
        el(
            "div",
            loading_placeholder(name),
            cls="widget-slot",
            data_widget=name,
        )
        for name in HOMEPAGE_WIDGETS
    ]
    return page_shell("homepage", username, el("div", *slots, cls="widget-grid"))


def render_homepage(
    ctx: DashboardContext,
    registry: RouteRegistry,
    viewer: Viewer,
) -> "HomepageRender":
    """Fetch every widget through its route and render the filled page.

    A failing widget renders an error block in its slot; the others are
    unaffected — the modularity contract the benchmarks verify.
    """
    slots = []
    failures: Dict[str, str] = {}
    degraded: Dict[str, float] = {}
    for name in HOMEPAGE_WIDGETS:
        response = registry.call(ctx, name, viewer)
        if response.ok:
            data = response.data
            if response.degraded:
                # serve-stale path: the widget renders its cached payload
                # under a degraded banner (§2.4 resilience)
                degraded[name] = response.stale_age_s or 0.0
                data = {**data, "_degraded": {"stale_age_s": degraded[name]}}
            body = WIDGET_RENDERERS[name](data)
        else:
            failures[name] = response.error or "unknown error"
            body = el(
                "div",
                f"The {name.replace('_', ' ')} widget is temporarily unavailable.",
                cls="widget-error alert alert-danger",
                role="alert",
            )
        slots.append(el("div", body, cls="widget-slot", data_widget=name))
    tier = ctx.admission.tier
    page = page_shell(
        "homepage",
        viewer.username,
        brownout_banner(tier) if tier != "normal" else None,
        el("div", *slots, cls="widget-grid"),
    )
    return HomepageRender(page=page, failures=failures, degraded=degraded, tier=tier)


class HomepageRender:
    """Rendered homepage plus which widgets failed or degraded."""

    def __init__(
        self,
        page,
        failures: Dict[str, str],
        degraded: Dict[str, float] | None = None,
        tier: str = "normal",
    ):
        self.page = page
        self.failures = failures
        #: widget name -> stale age (s) for widgets served from stale cache
        self.degraded = degraded or {}
        #: admission tier at render time ("normal", "brownout", "shed")
        self.tier = tier

    @property
    def html(self) -> str:
        return self.page.render()

    @property
    def document(self) -> str:
        """Complete standalone HTML document (with the stylesheet)."""
        from ..rendering import render_document

        return render_document("HPC Dashboard", self.page)

    @property
    def ok(self) -> bool:
        return not self.failures


ROUTE = ApiRoute(
    name="homepage",
    path="/api/v1/homepage",
    feature="Dashboard homepage",
    data_sources=("dashboard manifest",),
    handler=homepage_data,
    client_max_age_s=3600.0,
)
