"""Dashboard homepage (paper §3, Figure 2).

Assembles the five widgets into one page.  Crucially it does *not* wait
for any widget's data: the page shell renders immediately with loading
placeholders, and each widget is populated from its own API route (§2.3)
— that is what :func:`render_homepage_shell` vs :func:`render_homepage`
model.  Widget failures degrade to an inline error block instead of
taking the page down (§2.4 Modularity).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, List

from repro.auth import Viewer

from ..rendering import brownout_banner, el, loading_placeholder, page_shell
from ..routes import ApiRoute, DashboardContext, RouteRegistry, RouteResponse
from ..widgets import ALL_WIDGET_ROUTES, WIDGET_RENDERERS

#: widget order on the homepage (Figure 2 layout)
HOMEPAGE_WIDGETS = tuple(route.name for route in ALL_WIDGET_ROUTES)


def homepage_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: the homepage *manifest* — which widgets to load and
    from where.  Widget payloads come from the individual routes."""
    return {
        "username": viewer.username,
        "widgets": [
            {"name": r.name, "path": r.path, "max_age_s": r.client_max_age_s}
            for r in ALL_WIDGET_ROUTES
        ],
    }


def render_homepage_shell(username: str):
    """The instantly-served page: chrome + a loading placeholder per
    widget (§2.3: 'the dashboard to load instantly and display a loading
    animation')."""
    slots = [
        el(
            "div",
            loading_placeholder(name),
            cls="widget-slot",
            data_widget=name,
        )
        for name in HOMEPAGE_WIDGETS
    ]
    return page_shell("homepage", username, el("div", *slots, cls="widget-grid"))


def _widget_responses(
    ctx: DashboardContext,
    registry: RouteRegistry,
    viewer: Viewer,
    parallel: bool,
) -> List[RouteResponse]:
    """One :class:`RouteResponse` per homepage widget, in slot order.

    The parallel path scatter-gathers the five route calls on the shared
    worker pool — page latency becomes ≈max(widget) instead of
    Σ(widgets) — while keeping the sequential path's contract exactly:
    deterministic :data:`HOMEPAGE_WIDGETS` order, and per-widget failure
    isolation (``registry.call`` already catches handler errors; an
    escape from the fan-out machinery itself is synthesized into that
    slot's 500 envelope rather than breaking its siblings).
    """
    if not parallel:
        return [registry.call(ctx, name, viewer) for name in HOMEPAGE_WIDGETS]
    outcomes = ctx.scatter(
        [partial(registry.call, ctx, name, viewer) for name in HOMEPAGE_WIDGETS]
    )
    responses: List[RouteResponse] = []
    for name, outcome in zip(HOMEPAGE_WIDGETS, outcomes):
        if outcome.error is not None:
            responses.append(
                RouteResponse(
                    ok=False,
                    error=f"{type(outcome.error).__name__}: {outcome.error}",
                    status=500,
                    route=name,
                )
            )
        else:
            responses.append(outcome.value)
    return responses


def render_homepage(
    ctx: DashboardContext,
    registry: RouteRegistry,
    viewer: Viewer,
    parallel: bool = True,
) -> "HomepageRender":
    """Fetch every widget through its route and render the filled page.

    A failing widget renders an error block in its slot; the others are
    unaffected — the modularity contract the benchmarks verify.  Widget
    routes are fetched concurrently by default (``parallel=False`` keeps
    the historic sequential walk, the benchmark baseline); both paths
    produce byte-identical pages.
    """
    with ctx.obs.tracer.span(
        "page:homepage", kind="page",
        attrs={"viewer": viewer.username, "parallel": parallel},
    ):
        responses = _widget_responses(ctx, registry, viewer, parallel)
    slots = []
    failures: Dict[str, str] = {}
    degraded: Dict[str, float] = {}
    for name, response in zip(HOMEPAGE_WIDGETS, responses):
        if response.ok:
            data = response.data
            if response.degraded:
                # serve-stale path: the widget renders its cached payload
                # under a degraded banner (§2.4 resilience)
                degraded[name] = response.stale_age_s or 0.0
                data = {**data, "_degraded": {"stale_age_s": degraded[name]}}
            body = WIDGET_RENDERERS[name](data)
        else:
            failures[name] = response.error or "unknown error"
            body = el(
                "div",
                f"The {name.replace('_', ' ')} widget is temporarily unavailable.",
                cls="widget-error alert alert-danger",
                role="alert",
            )
        slots.append(el("div", body, cls="widget-slot", data_widget=name))
    tier = ctx.admission.tier
    page = page_shell(
        "homepage",
        viewer.username,
        brownout_banner(tier) if tier != "normal" else None,
        el("div", *slots, cls="widget-grid"),
    )
    return HomepageRender(page=page, failures=failures, degraded=degraded, tier=tier)


class HomepageRender:
    """Rendered homepage plus which widgets failed or degraded."""

    def __init__(
        self,
        page,
        failures: Dict[str, str],
        degraded: Dict[str, float] | None = None,
        tier: str = "normal",
    ):
        self.page = page
        self.failures = failures
        #: widget name -> stale age (s) for widgets served from stale cache
        self.degraded = degraded or {}
        #: admission tier at render time ("normal", "brownout", "shed")
        self.tier = tier

    @property
    def html(self) -> str:
        return self.page.render()

    @property
    def document(self) -> str:
        """Complete standalone HTML document (with the stylesheet)."""
        from ..rendering import render_document

        return render_document("HPC Dashboard", self.page)

    @property
    def ok(self) -> bool:
        return not self.failures


ROUTE = ApiRoute(
    name="homepage",
    path="/api/v1/homepage",
    feature="Dashboard homepage",
    data_sources=("dashboard manifest",),
    handler=homepage_data,
    client_max_age_s=3600.0,
)
