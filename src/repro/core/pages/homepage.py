"""Dashboard homepage (paper §3, Figure 2).

Assembles the five widgets into one page.  Crucially it does *not* wait
for any widget's data: the page shell renders immediately with loading
placeholders, and each widget is populated from its own API route (§2.3)
— that is what :func:`render_homepage_shell` vs :func:`render_homepage`
model.  Widget failures degrade to an inline error block instead of
taking the page down (§2.4 Modularity).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.auth import Viewer

from ..rendering import (
    RawHTML,
    brownout_banner,
    el,
    loading_placeholder,
    page_shell,
    render_document,
)
from ..routes import ApiRoute, DashboardContext, RouteRegistry, RouteResponse
from ..widgets import ALL_WIDGET_ROUTES, WIDGET_RENDERERS

#: widget order on the homepage (Figure 2 layout)
HOMEPAGE_WIDGETS = tuple(route.name for route in ALL_WIDGET_ROUTES)


def homepage_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: the homepage *manifest* — which widgets to load and
    from where.  Widget payloads come from the individual routes."""
    return {
        "username": viewer.username,
        "widgets": [
            {"name": r.name, "path": r.path, "max_age_s": r.client_max_age_s}
            for r in ALL_WIDGET_ROUTES
        ],
    }


def render_homepage_shell(username: str):
    """The instantly-served page: chrome + a loading placeholder per
    widget (§2.3: 'the dashboard to load instantly and display a loading
    animation')."""
    slots = [
        el(
            "div",
            loading_placeholder(name),
            cls="widget-slot",
            data_widget=name,
        )
        for name in HOMEPAGE_WIDGETS
    ]
    return page_shell("homepage", username, el("div", *slots, cls="widget-grid"))


def _widget_responses(
    ctx: DashboardContext,
    registry: RouteRegistry,
    viewer: Viewer,
    parallel: bool,
) -> List[RouteResponse]:
    """One :class:`RouteResponse` per homepage widget, in slot order.

    The parallel path scatter-gathers the five route calls on the shared
    worker pool — page latency becomes ≈max(widget) instead of
    Σ(widgets) — while keeping the sequential path's contract exactly:
    deterministic :data:`HOMEPAGE_WIDGETS` order, and per-widget failure
    isolation (``registry.call`` already catches handler errors; an
    escape from the fan-out machinery itself is synthesized into that
    slot's 500 envelope rather than breaking its siblings).
    """
    if not parallel:
        return [registry.call(ctx, name, viewer) for name in HOMEPAGE_WIDGETS]
    outcomes = ctx.scatter(
        [partial(registry.call, ctx, name, viewer) for name in HOMEPAGE_WIDGETS]
    )
    responses: List[RouteResponse] = []
    for name, outcome in zip(HOMEPAGE_WIDGETS, outcomes):
        if outcome.error is not None:
            responses.append(
                RouteResponse(
                    ok=False,
                    error=f"{type(outcome.error).__name__}: {outcome.error}",
                    status=500,
                    route=name,
                )
            )
        else:
            responses.append(outcome.value)
    return responses


def _render_slot(
    name: str, response: RouteResponse
) -> Tuple[Any, Optional[str], Optional[float]]:
    """Render one widget slot from its route response.

    Returns ``(slot_element, failure, stale_age_s)`` — the single code
    path both the batch render and the streamed render fill slots
    through, so the two can never drift apart byte-wise.
    """
    failure: Optional[str] = None
    stale_age: Optional[float] = None
    if response.ok:
        data = response.data
        if response.degraded:
            # serve-stale path: the widget renders its cached payload
            # under a degraded banner (§2.4 resilience)
            stale_age = response.stale_age_s or 0.0
            data = {**data, "_degraded": {"stale_age_s": stale_age}}
        body = WIDGET_RENDERERS[name](data)
    else:
        failure = response.error or "unknown error"
        body = el(
            "div",
            f"The {name.replace('_', ' ')} widget is temporarily unavailable.",
            cls="widget-error alert alert-danger",
            role="alert",
        )
    return el("div", body, cls="widget-slot", data_widget=name), failure, stale_age


def render_homepage(
    ctx: DashboardContext,
    registry: RouteRegistry,
    viewer: Viewer,
    parallel: bool = True,
) -> "HomepageRender":
    """Fetch every widget through its route and render the filled page.

    A failing widget renders an error block in its slot; the others are
    unaffected — the modularity contract the benchmarks verify.  Widget
    routes are fetched concurrently by default (``parallel=False`` keeps
    the historic sequential walk, the benchmark baseline); both paths
    produce byte-identical pages.
    """
    with ctx.obs.tracer.span(
        "page:homepage", kind="page",
        attrs={"viewer": viewer.username, "parallel": parallel},
    ):
        responses = _widget_responses(ctx, registry, viewer, parallel)
    slots = []
    failures: Dict[str, str] = {}
    degraded: Dict[str, float] = {}
    for name, response in zip(HOMEPAGE_WIDGETS, responses):
        slot, failure, stale_age = _render_slot(name, response)
        if failure is not None:
            failures[name] = failure
        if stale_age is not None:
            degraded[name] = stale_age
        slots.append(slot)
    tier = ctx.admission.tier
    page = page_shell(
        "homepage",
        viewer.username,
        brownout_banner(tier) if tier != "normal" else None,
        el("div", *slots, cls="widget-grid"),
    )
    return HomepageRender(page=page, failures=failures, degraded=degraded, tier=tier)


#: sentinel marking where one widget slot lands in the streamed document;
#: NUL can never appear in rendered (escaped) HTML, so splitting on it is safe
_SLOT_TOKEN = "\x00widget-slot:{name}\x00"


def _streaming_segments(username: str, tier: str) -> List[str]:
    """The homepage document split around its widget slots.

    Renders the full page *once* with a sentinel where each slot goes,
    then splits on the sentinels: ``segments[0]`` is the shell up to the
    first slot, ``segments[i]`` the static HTML between slot ``i-1`` and
    slot ``i``, and the last segment everything after the final slot.
    Interleaving the real slot HTML back between the segments reproduces
    the batch render byte-for-byte.
    """
    placeholders = [
        RawHTML(_SLOT_TOKEN.format(name=name)) for name in HOMEPAGE_WIDGETS
    ]
    page = page_shell(
        "homepage",
        username,
        brownout_banner(tier) if tier != "normal" else None,
        el("div", *placeholders, cls="widget-grid"),
    )
    document = render_document("HPC Dashboard", page)
    segments: List[str] = []
    rest = document
    for name in HOMEPAGE_WIDGETS:
        head, rest = rest.split(_SLOT_TOKEN.format(name=name), 1)
        segments.append(head)
    segments.append(rest)
    return segments


def stream_homepage(
    ctx: DashboardContext, registry: RouteRegistry, viewer: Viewer
) -> Iterator[str]:
    """Stream the homepage: shell first, widget slots as they complete.

    Yields the document in chunks — the static shell up to the first
    slot immediately (widget calls are already in flight on the worker
    pool by then), then each slot plus its trailing static HTML in
    :data:`HOMEPAGE_WIDGETS` order as the fan-out workers finish.
    Time-to-first-byte therefore decouples from the slowest widget.

    The concatenated chunks are byte-identical to
    ``render_homepage(...).document`` rendered at the same instant, with
    one documented divergence: the admission tier (brownout banner) is
    sampled *before* the widgets run — the shell must flush before any
    widget completes — while the batch render samples it after.
    """
    with ctx.obs.tracer.span(
        "page:homepage", kind="page",
        attrs={"viewer": viewer.username, "streamed": True},
    ):
        tier = ctx.admission.tier
        segments = _streaming_segments(viewer.username, tier)
        outcomes = ctx.scatter_stream(
            [partial(registry.call, ctx, name, viewer) for name in HOMEPAGE_WIDGETS]
        )
        yield segments[0]
        for i, (name, outcome) in enumerate(zip(HOMEPAGE_WIDGETS, outcomes)):
            if outcome.error is not None:
                response = RouteResponse(
                    ok=False,
                    error=f"{type(outcome.error).__name__}: {outcome.error}",
                    status=500,
                    route=name,
                )
            else:
                response = outcome.value
            slot, _, _ = _render_slot(name, response)
            yield slot.render() + segments[i + 1]


class HomepageRender:
    """Rendered homepage plus which widgets failed or degraded."""

    def __init__(
        self,
        page,
        failures: Dict[str, str],
        degraded: Dict[str, float] | None = None,
        tier: str = "normal",
    ):
        self.page = page
        self.failures = failures
        #: widget name -> stale age (s) for widgets served from stale cache
        self.degraded = degraded or {}
        #: admission tier at render time ("normal", "brownout", "shed")
        self.tier = tier

    @property
    def html(self) -> str:
        return self.page.render()

    @property
    def document(self) -> str:
        """Complete standalone HTML document (with the stylesheet)."""
        from ..rendering import render_document

        return render_document("HPC Dashboard", self.page)

    @property
    def ok(self) -> bool:
        return not self.failures


ROUTE = ApiRoute(
    name="homepage",
    path="/api/v1/homepage",
    feature="Dashboard homepage",
    data_sources=("dashboard manifest",),
    handler=homepage_data,
    client_max_age_s=3600.0,
)
