"""My Interactive Sessions page.

Open OnDemand's session list — the paper's Job Overview session tab
shows "the buttons and controls to launch the interactive app ...
identical to what is in the My Interactive Sessions page" (§7), so the
page itself belongs in the reproduction.  One card per session the user
has launched: app, backing job, state, connect controls, working-dir
link.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.auth import Viewer
from repro.ood import files_app_url
from ..colors import job_state_color
from ..rendering import card, el
from ..routes import ApiRoute, DashboardContext


def sessions_page_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: the viewer's sessions, newest job first.

    Covers sessions launched through this OOD instance *and* jobs that
    arrived pre-tagged with interactive provenance (e.g. launched from
    another login node) — the dashboard treats them identically.
    """
    cards: List[Dict[str, Any]] = []
    seen_session_ids: set[str] = set()

    for session in ctx.sessions.sessions_for(viewer.username):
        cards.append(_session_card(ctx, session))
        seen_session_ids.add(session.session_id)

    # interactive jobs not launched via this manager (workload-generated)
    for rec in ctx.jobs_in_scope(viewer):
        if rec.user != viewer.username or not rec.is_interactive:
            continue
        internal = ctx.cluster.accounting.get(rec.job_id)
        if internal is None:
            try:
                internal = ctx.cluster.scheduler.job(rec.job_id)
            except KeyError:
                continue
        session = ctx.sessions.session_for_job(internal)
        if session is None or session.session_id in seen_session_ids:
            continue
        cards.append(_session_card(ctx, session))
        seen_session_ids.add(session.session_id)

    cards.sort(key=lambda c: -c["job_id"])
    active = [c for c in cards if c["state"] in ("Queued", "Running")]
    return {
        "sessions": cards,
        "total": len(cards),
        "active": len(active),
    }


def _session_card(ctx: DashboardContext, session) -> Dict[str, Any]:
    app = ctx.apps.get(session.app_key) if session.app_key in ctx.apps else None
    state = ctx.sessions.card_state(session)
    job_state = None
    job = None
    try:
        job = ctx.cluster.scheduler.job(session.job_id)
    except KeyError:
        job = ctx.cluster.accounting.get(session.job_id)
    if job is not None:
        job_state = job.state
    return {
        "session_id": session.session_id,
        "app": session.app_key,
        "app_title": app.title if app else session.app_key,
        "relaunch_url": app.form_url if app else "",
        "job_id": session.job_id,
        "job_overview_url": f"/jobs/{session.job_id}",
        "state": state,
        "state_color": job_state_color(job_state)
        if job_state is not None
        else "gray",
        "connect_url": ctx.sessions.connect_url(session),
        "working_dir": session.working_dir(),
        "working_dir_url": files_app_url(session.working_dir()),
    }


def render_sessions_page(data: Dict[str, Any]):
    """Frontend: one card per session, Connect button when running."""
    cards = []
    for s in data["sessions"]:
        body = [
            el("div", "Backing job: ",
               el("a", f"#{s['job_id']}", href=s["job_overview_url"])),
            el("div", f"Session ID: {s['session_id']}"),
            el("div", "Working directory: ",
               el("a", s["working_dir"], href=s["working_dir_url"])),
            el("span", s["state"], cls=f"session-state text-{s['state_color']}"),
        ]
        if s["connect_url"]:
            body.append(
                el("a", "Connect", href=s["connect_url"], cls="btn btn-connect")
            )
        body.append(
            el("a", "Launch another", href=s["relaunch_url"], cls="relaunch-link")
        )
        cards.append(card(s["app_title"], *body, cls="session-card"))
    return el(
        "section",
        el(
            "header",
            el("h3", "My Interactive Sessions"),
            el("span", f"{data['active']} active / {data['total']} total",
               cls="text-muted"),
            cls="page-header",
        ),
        el("div", *cards, cls="session-card-list"),
        cls="page page-sessions",
    )


ROUTE = ApiRoute(
    name="my_sessions",
    path="/api/v1/sessions",
    feature="My Interactive Sessions",
    data_sources=("OOD session store", "sacct (Slurm)"),
    handler=sessions_page_data,
    client_max_age_s=30.0,
)
