"""Cluster Status app (paper §6, Figure 4b).

An interactive view of every node on the cluster, replacing manual
``scontrol show node`` runs.  Two modes:

* **grid view** — one color-coded square per node (green in-use, faded
  green idle, yellow drained, orange maintenance, red down), hover for
  CPU/memory usage and partitions, click through to Node Overview;
* **list view** — a sortable, searchable table of name, state,
  partitions, CPU load, memory load.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.auth import Viewer
from repro.slurm.model import NodeState

from ..colors import node_state_color
from ..records import NodeRecord
from ..rendering import data_table, el, node_grid_cell
from ..routes import ApiRoute, DashboardContext

#: list-view columns that may be sorted, mapping to row keys
SORTABLE_COLUMNS = {
    "name": "name",
    "state": "state",
    "cpu_load": "cpu_fraction",
    "memory_load": "memory_fraction",
}


def cluster_status_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler: per-node cells/rows for both view modes."""
    search = str(params.get("search", "")).lower()
    sort_by = str(params.get("sort", "name"))
    descending = bool(params.get("desc", False))
    if sort_by not in SORTABLE_COLUMNS:
        raise ValueError(
            f"cannot sort by {sort_by!r}; expected one of {sorted(SORTABLE_COLUMNS)}"
        )

    nodes = ctx.node_records()
    cells = [_node_cell(rec) for rec in nodes]
    if search:
        cells = [
            c
            for c in cells
            if search in c["name"].lower()
            or search in c["state"].lower()
            or any(search in p.lower() for p in c["partitions"])
        ]
    key = SORTABLE_COLUMNS[sort_by]
    cells.sort(key=lambda c: c[key], reverse=descending)

    state_counts: Dict[str, int] = {}
    for rec in nodes:
        state_counts[rec.state] = state_counts.get(rec.state, 0) + 1
    return {
        "nodes": cells,
        "total": len(nodes),
        "shown": len(cells),
        "state_counts": state_counts,
        "modes": ["grid", "list"],
    }


def _node_cell(rec: NodeRecord) -> Dict[str, Any]:
    state = NodeState(rec.state)
    tooltip = (
        f"{rec.name}: {rec.cpus_alloc}/{rec.cpus_total} CPUs, "
        f"{rec.memory_alloc_mb}/{rec.memory_total_mb} MB"
    )
    if rec.gpus_total:
        tooltip += f", {rec.gpus_alloc}/{rec.gpus_total} GPUs"
    tooltip += f" — partitions: {', '.join(rec.partitions)}"
    return {
        "name": rec.name,
        "state": rec.state,
        "color": node_state_color(state),
        "cpu_fraction": round(rec.cpu_fraction, 4),
        "memory_fraction": round(rec.memory_fraction, 4),
        "cpu_load": rec.cpu_load,
        "cpus": f"{rec.cpus_alloc}/{rec.cpus_total}",
        "memory": f"{rec.memory_alloc_mb}/{rec.memory_total_mb} MB",
        "gpus": f"{rec.gpus_alloc}/{rec.gpus_total}" if rec.gpus_total else "",
        "partitions": rec.partitions,
        "tooltip": tooltip,
        "overview_url": f"/nodes/{rec.name}",
    }


def render_cluster_status_grid(data: Dict[str, Any]):
    """Frontend grid view: color-coded node cells (§6)."""
    cells = [
        node_grid_cell(n["name"], n["color"], n["tooltip"], n["overview_url"])
        for n in data["nodes"]
    ]
    legend = el(
        "div",
        *[
            el("span", f"{state}: {count}", cls="legend-item")
            for state, count in sorted(data["state_counts"].items())
        ],
        cls="grid-legend",
    )
    return el(
        "section",
        el("header", el("h3", "Cluster Status"), _mode_switch("grid"), cls="page-header"),
        legend,
        el("div", *cells, cls="node-grid", role="grid"),
        cls="page page-cluster-status",
    )


def render_cluster_status_list(data: Dict[str, Any]):
    """Frontend list view: sortable/searchable table (§6)."""
    headers = ["Node", "State", "Partitions", "CPU load", "Memory load"]
    rows = []
    for n in data["nodes"]:
        rows.append(
            [
                el("td", el("a", n["name"], href=n["overview_url"])),
                el("td", el("span", n["state"], cls=f"text-{n['color']}")),
                ", ".join(n["partitions"]),
                f"{n['cpu_fraction'] * 100:.0f}% ({n['cpus']} CPUs)",
                f"{n['memory_fraction'] * 100:.0f}%",
            ]
        )
    search_bar = el(
        "input",
        type="search",
        placeholder="Filter nodes by name, state, or partition",
        cls="node-search",
        aria_label="Filter nodes",
    )
    return el(
        "section",
        el("header", el("h3", "Cluster Status"), _mode_switch("list"), cls="page-header"),
        search_bar,
        data_table(headers, rows, cls="node-list"),
        cls="page page-cluster-status",
    )


def _mode_switch(active: str):
    return el(
        "div",
        el("button", "Grid", cls="btn" + (" active" if active == "grid" else "")),
        el("button", "List", cls="btn" + (" active" if active == "list" else "")),
        cls="mode-switch",
        role="group",
        aria_label="View mode",
    )


ROUTE = ApiRoute(
    name="cluster_status",
    path="/api/v1/cluster_status",
    feature="Cluster Status",
    data_sources=("scontrol show node (Slurm)",),
    handler=cluster_status_data,
    client_max_age_s=60.0,
)
