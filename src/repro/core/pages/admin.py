"""Admin Overview page — the paper's §9 "permission-based job
accounting, such as administrator-only content" (listed as under
development; implemented here as the documented extension).

Admin-only: a cluster-wide operational snapshot no regular user may see

* queue health: jobs by state and by pending reason;
* top users by CPU hours over the last 24 h (cluster-wide, crossing the
  privacy scope — hence the admin gate);
* node fleet summary with problem nodes (drained/down, with reasons);
* backend health: daemon RPC load and server-cache hit rates.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict

from repro.auth import PermissionDenied, Viewer
from repro.slurm.commands import Sreport, parse_sreport
from repro.slurm.model import JobState, NodeState

from ..rendering import card, data_table, el
from ..routes import ApiRoute, DashboardContext


def admin_overview_data(
    ctx: DashboardContext, viewer: Viewer, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Route handler; raises PermissionDenied for non-admins."""
    if not viewer.is_admin:
        raise PermissionDenied(
            f"user {viewer.username!r} is not an administrator"
        )
    now = ctx.now()
    sched = ctx.cluster.scheduler

    live = sched.visible_jobs()
    by_state = Counter(j.state.value for j in live)
    pending_reasons = Counter(
        j.reason for j in live if j.state is JobState.PENDING
    )

    day_ago = now - 86400.0
    recent = ctx.cluster.accounting.query(start=day_ago)
    usage: Counter = Counter()
    for job in recent:
        usage[job.user] += job.cpu_hours(now)
    top_users = [
        {"user": user, "cpu_hours": round(hours, 2)}
        for user, hours in usage.most_common(10)
    ]

    node_states = Counter(n.state.value for n in ctx.cluster.nodes.values())
    problem_nodes = [
        {"name": n.name, "state": n.state.value, "reason": n.state_reason}
        for n in ctx.cluster.nodes.values()
        if n.state in (NodeState.DRAINED, NodeState.DRAINING, NodeState.DOWN,
                       NodeState.MAINT)
    ]

    # cluster utilization over the last 24 h, through sreport's text path
    util_start = max(0.0, day_ago)
    utilization = None
    if now > util_start:
        out = Sreport(ctx.cluster).cluster_utilization(util_start, now)
        row = parse_sreport(out.stdout)[0]
        utilization = {
            "allocated_cpu_s": int(row["Allocated"]),
            "idle_cpu_s": int(row["Idle"]),
            "down_cpu_s": int(row["Down"]),
            "allocated_pct": row["AllocatedPct"],
        }

    cache = ctx.cache.stats
    return {
        "utilization_24h": utilization,
        "queue": {
            "by_state": dict(by_state),
            "pending_reasons": dict(pending_reasons),
            "total_live": len(live),
        },
        "top_users_24h": top_users,
        "nodes": {
            "by_state": dict(node_states),
            "problems": problem_nodes,
        },
        "backend": {
            "daemons": ctx.cluster.daemons.snapshot(),
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": round(cache.hit_rate, 4),
                "entries": len(ctx.cache),
            },
        },
        "as_of": ctx.clock.isoformat(now),
    }


def render_admin_overview(data: Dict[str, Any]):
    """Frontend: operational cards + tables."""
    queue = data["queue"]
    queue_card = card(
        "Queue",
        el("div", f"Live jobs: {queue['total_live']}"),
        *[
            el("div", f"{state}: {count}")
            for state, count in sorted(queue["by_state"].items())
        ],
        el(
            "div",
            "Pending reasons: "
            + ", ".join(
                f"{r} ({c})" for r, c in sorted(queue["pending_reasons"].items())
            ),
            cls="pending-reasons",
        ),
    )
    users_table = data_table(
        ["User", "CPU hours (24h)"],
        [[u["user"], f"{u['cpu_hours']:g}"] for u in data["top_users_24h"]],
        cls="top-users",
    )
    node_card = card(
        "Node fleet",
        *[
            el("div", f"{state}: {count}")
            for state, count in sorted(data["nodes"]["by_state"].items())
        ],
    )
    problems = data_table(
        ["Node", "State", "Reason"],
        [[p["name"], p["state"], p["reason"]] for p in data["nodes"]["problems"]],
        cls="problem-nodes",
    )
    backend = data["backend"]
    util = data["utilization_24h"]
    util_card = card(
        "Utilization (24h)",
        el("div", f"Allocated: {util['allocated_pct']}" if util else "n/a"),
        (
            el(
                "div",
                f"Idle CPU-h: {util['idle_cpu_s'] / 3600:.0f}, "
                f"down CPU-h: {util['down_cpu_s'] / 3600:.0f}",
            )
            if util
            else None
        ),
    )
    backend_card = card(
        "Backend health",
        el(
            "div",
            f"slurmctld: {backend['daemons']['slurmctld']['recent_rate_rps']} rps, "
            f"{backend['daemons']['slurmctld']['current_latency_s'] * 1000:.1f} ms",
        ),
        el(
            "div",
            f"slurmdbd: {backend['daemons']['slurmdbd']['recent_rate_rps']} rps",
        ),
        el(
            "div",
            f"server cache: {backend['cache']['hit_rate'] * 100:.0f}% hit rate "
            f"({backend['cache']['entries']} entries)",
        ),
    )
    return el(
        "section",
        el("header", el("h3", "Admin Overview"),
           el("span", f"as of {data['as_of']}", cls="text-muted"),
           cls="page-header"),
        el("div", queue_card, node_card, util_card, backend_card, cls="card-row"),
        el("h4", "Top users by CPU hours (24h)"),
        users_table,
        el("h4", "Problem nodes"),
        problems,
        cls="page page-admin-overview",
    )


ROUTE = ApiRoute(
    name="admin_overview",
    path="/api/v1/admin/overview",
    feature="Admin Overview (admin-only)",
    data_sources=("slurmctld state", "sacct (Slurm)", "daemon metrics"),
    handler=admin_overview_data,
    client_max_age_s=30.0,
)
