"""Shared bounded worker pool for background refresh and request fan-out.

Two hot paths need threads that are not HTTP handler threads:

* **refresh-ahead** — :class:`~repro.core.caching.TTLCache` revalidates
  soft-expired hot keys *behind* the response, so a warm key never
  blocks a user request on a daemon RPC;
* **scatter-gather fan-out** — :func:`~repro.core.pages.homepage.render_homepage`
  (and the multi-section pages) issue their independent widget/section
  calls concurrently, collapsing page latency from the *sum* of the
  parts to roughly the *max*.

Both share one :class:`WorkerPool` per dashboard so background work and
foreground fan-out compete for the same bounded capacity — the pool can
never out-grow its configured thread count, and everything it does is
visible on ``/metrics`` (``repro_worker_pool_active``,
``repro_worker_pool_queue_depth``, ``repro_worker_pool_tasks_total``).

Design notes
------------
* Threads spawn lazily, one per submission that finds no idle worker,
  up to ``max_workers`` — a dashboard that never fans out never owns a
  thread.
* The queue is bounded.  :meth:`try_submit` (the refresh-ahead entry
  point) simply refuses when full — a dropped revalidation is harmless,
  the entry is still served until its hard TTL.  :meth:`scatter_gather`
  (the fan-out entry point) must run *every* task, so rejected tasks run
  inline on the calling thread instead.
* :meth:`scatter_gather` called **from a pool worker** runs everything
  inline: nested fan-out can therefore never deadlock the pool, however
  deep pages recurse.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Iterator, List, Optional, Sequence, Set

from repro.obs import MetricsRegistry

#: every value the ``result`` label of ``repro_worker_pool_tasks_total``
#: can take (pre-seeded so the family renders before any task runs)
TASK_RESULTS = (
    "ok",  # ran on a pool worker, returned
    "error",  # ran on a pool worker, raised
    "inline",  # queue full: a scatter_gather task ran on the caller
    "rejected",  # queue full: a try_submit task was dropped
)


class TaskOutcome:
    """Per-slot result of :meth:`WorkerPool.scatter_gather`.

    Exactly one of :attr:`value` / :attr:`error` is meaningful: a task
    that raised has ``error`` set and ``value`` ``None``.
    """

    __slots__ = ("value", "error")

    def __init__(self, value: Any = None, error: Optional[BaseException] = None):
        self.value = value
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.error is not None:
            return f"TaskOutcome(error={self.error!r})"
        return f"TaskOutcome(value={self.value!r})"


class _Task:
    """One queued unit of work and its completion state."""

    __slots__ = ("fn", "event", "value", "error")

    def __init__(self, fn: Callable[[], Any]):
        self.fn = fn
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


_SHUTDOWN = _Task(lambda: None)


class WorkerPool:
    """A bounded, lazily-spawned thread pool with queue-depth gauges.

    Thread-safe; one instance is shared by the TTL cache's refresh-ahead
    path and every page's scatter-gather fan-out.
    """

    def __init__(
        self,
        max_workers: int = 8,
        max_queue: int = 64,
        name: str = "core",
        registry: Optional[MetricsRegistry] = None,
        thread_name_prefix: str = "repro-worker",
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1: {max_workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1: {max_queue}")
        self.max_workers = max_workers
        self.max_queue = max_queue
        self.name = name
        self._thread_name_prefix = thread_name_prefix
        self._queue: "queue.Queue[_Task]" = queue.Queue(maxsize=max_queue)
        self._lock = threading.Lock()
        self._spawned = 0
        self._idle = 0
        self._queued = 0
        self._active = 0
        self._closed = False
        self._worker_idents: Set[int] = set()
        self.metrics = registry or MetricsRegistry()
        self._active_gauge = self.metrics.gauge(
            "repro_worker_pool_active",
            "Worker-pool tasks currently executing, per pool.",
            ("pool",),
        )
        self._queue_gauge = self.metrics.gauge(
            "repro_worker_pool_queue_depth",
            "Worker-pool tasks waiting for a thread, per pool.",
            ("pool",),
        )
        self._tasks = self.metrics.counter(
            "repro_worker_pool_tasks_total",
            "Worker-pool task dispositions, per pool and result.",
            ("pool", "result"),
        )
        for result in TASK_RESULTS:
            self._tasks.inc(0.0, pool=name, result=result)
        self._sync_gauges_locked()

    # -- bookkeeping ---------------------------------------------------------

    def _sync_gauges_locked(self) -> None:
        self._active_gauge.set(float(self._active), pool=self.name)
        self._queue_gauge.set(float(self._queued), pool=self.name)

    @property
    def workers_alive(self) -> int:
        """Threads currently spawned (for tests and reports)."""
        with self._lock:
            return self._spawned

    def in_worker(self) -> bool:
        """True when the calling thread is one of this pool's workers."""
        with self._lock:
            return threading.get_ident() in self._worker_idents

    # -- submission ----------------------------------------------------------

    def _spawn_locked(self) -> None:
        self._spawned += 1
        self._idle += 1
        thread = threading.Thread(
            target=self._worker,
            name=f"{self._thread_name_prefix}-{self.name}-{self._spawned}",
            daemon=True,
        )
        thread.start()

    def _submit(self, fn: Callable[[], Any]) -> Optional[_Task]:
        """Enqueue ``fn``; None when the queue is full or the pool closed."""
        task = _Task(fn)
        with self._lock:
            if self._closed:
                return None
            try:
                self._queue.put_nowait(task)
            except queue.Full:
                return None
            self._queued += 1
            self._sync_gauges_locked()
            # spawn while accepted work outnumbers idle workers — counting
            # idle (not just "any worker") keeps a burst of submissions
            # from stranding tasks behind one not-yet-started thread
            if self._queued > self._idle and self._spawned < self.max_workers:
                self._spawn_locked()
        return task

    def try_submit(self, fn: Callable[[], Any]) -> bool:
        """Fire-and-forget submission (the refresh-ahead entry point).

        Returns False — and counts a ``rejected`` task — when the queue
        is full; the caller is expected to treat that as "not now", not
        as an error.
        """
        task = self._submit(fn)
        if task is None:
            self._tasks.inc(pool=self.name, result="rejected")
            return False
        return True

    def scatter_gather(
        self, fns: Sequence[Callable[[], Any]]
    ) -> List[TaskOutcome]:
        """Run every ``fns[i]`` concurrently; outcomes in input order.

        Each slot isolates its own failure: a raising task yields a
        :class:`TaskOutcome` with ``error`` set and never disturbs its
        siblings.  Tasks the bounded queue refuses run inline on the
        calling thread (the caller participates instead of failing), and
        a call *from* a pool worker runs everything inline so nested
        fan-out cannot deadlock the pool.
        """
        fns = list(fns)
        if not fns:
            return []
        if self.in_worker():
            return [self._run_inline(fn) for fn in fns]
        tasks: List[Optional[_Task]] = [self._submit(fn) for fn in fns]
        outcomes: List[Optional[TaskOutcome]] = [None] * len(fns)
        # run the rejected tasks on this thread while workers chew the rest
        for i, task in enumerate(tasks):
            if task is None:
                outcomes[i] = self._run_inline(fns[i])
        for i, task in enumerate(tasks):
            if task is not None:
                task.event.wait()
                outcomes[i] = TaskOutcome(task.value, task.error)
        return outcomes  # type: ignore[return-value]

    def scatter_stream(
        self, fns: Sequence[Callable[[], Any]]
    ) -> "Iterator[TaskOutcome]":
        """:meth:`scatter_gather`, but yield each outcome in input order
        as soon as it is ready — no barrier on the slowest task.

        Every task is submitted *eagerly* (before the generator is first
        advanced), so all slots run concurrently while the consumer
        drains them one by one; slot ``i`` is yielded once it and every
        predecessor have completed.  Rejected tasks run inline at their
        turn, and a call from a pool worker runs everything inline —
        the same no-deadlock guarantees as :meth:`scatter_gather`.
        """
        fns = list(fns)
        if self.in_worker():
            def run_inline() -> "Iterator[TaskOutcome]":
                for fn in fns:
                    yield self._run_inline(fn)

            return run_inline()
        tasks: List[Optional[_Task]] = [self._submit(fn) for fn in fns]

        def drain() -> "Iterator[TaskOutcome]":
            for fn, task in zip(fns, tasks):
                if task is None:
                    yield self._run_inline(fn)
                else:
                    task.event.wait()
                    yield TaskOutcome(task.value, task.error)

        return drain()

    def _run_inline(self, fn: Callable[[], Any]) -> TaskOutcome:
        self._tasks.inc(pool=self.name, result="inline")
        try:
            return TaskOutcome(value=fn())
        except BaseException as exc:  # noqa: BLE001 - per-slot isolation
            return TaskOutcome(error=exc)

    # -- workers -------------------------------------------------------------

    def _worker(self) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._worker_idents.add(ident)
        try:
            while True:
                task = self._queue.get()
                if task is _SHUTDOWN:
                    return
                with self._lock:
                    self._idle -= 1
                    self._queued -= 1
                    self._active += 1
                    self._sync_gauges_locked()
                try:
                    task.value = task.fn()
                    self._tasks.inc(pool=self.name, result="ok")
                except BaseException as exc:  # noqa: BLE001 - isolated per task
                    task.error = exc
                    self._tasks.inc(pool=self.name, result="error")
                finally:
                    task.event.set()
                    with self._lock:
                        self._active -= 1
                        self._idle += 1
                        self._sync_gauges_locked()
        finally:
            with self._lock:
                self._worker_idents.discard(ident)
                self._spawned -= 1
                self._idle -= 1

    def shutdown(self) -> None:
        """Stop accepting work and retire every worker (best effort).

        Queued tasks already accepted still run; callers blocked in
        :meth:`scatter_gather` are not interrupted.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            spawned = self._spawned
        for _ in range(spawned):
            self._queue.put(_SHUTDOWN)
