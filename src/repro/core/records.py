"""Typed views over parsed Slurm command output.

The dashboard backend runs Slurm commands and parses their text (§2.2.2);
pages then need numeric fields (efficiencies, durations, GPU hours).
:class:`JobRecord` is that bridge: built from one parsed ``sacct`` row or
``scontrol show job`` block, it exposes the same accessors as the
simulator's internal ``Job`` (``elapsed``, ``wait_time``, ``gpu_hours``,
``req`` ...) so the efficiency/chart code is agnostic about which side of
the text boundary its input came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.clock import SimClock, parse_duration
from repro.slurm.hostlist import expand_hostlist
from repro.slurm.model import JobState, TRES, parse_memory_mb


def _parse_state(text: str) -> JobState:
    """Parse sacct's State column, tolerating 'CANCELLED by user'."""
    base = text.split()[0]
    try:
        return JobState(base)
    except ValueError:
        raise ValueError(f"unknown job state {text!r}") from None


def _parse_time(clock: SimClock, text: str) -> Optional[float]:
    if text in ("", "N/A", "None", "Unknown"):
        return None
    return clock.parse_iso(text)


@dataclass
class JobRecord:
    """One job as the dashboard understands it after parsing."""

    job_id: int
    display_id: str
    name: str
    user: str
    account: str
    partition: str
    qos: str
    state: JobState
    reason: str
    submit_time: float
    eligible_time: Optional[float]
    start_time: Optional[float]
    end_time: Optional[float]
    time_limit: float
    req: TRES
    total_cpu_seconds: float = 0.0
    max_rss_mb: int = 0
    exit_code: str = "0:0"
    nodes: List[str] = field(default_factory=list)
    raw: Dict[str, str] = field(default_factory=dict)
    #: name of the cluster this record came from ("" on the single-cluster
    #: path; federation stamps it so merged rollups can label provenance)
    cluster: str = ""

    # -- derived quantities (same contracts as slurm.model.Job) ------------

    def wait_time(self, now: float) -> float:
        """Queue wait: submit -> start (or submit -> now while pending)."""
        if self.start_time is not None:
            return max(0.0, self.start_time - self.submit_time)
        return max(0.0, now - self.submit_time)

    def elapsed(self, now: float) -> float:
        """Wall time used so far (0 while pending)."""
        if self.start_time is None:
            return 0.0
        end = self.end_time if self.end_time is not None else now
        return max(0.0, end - self.start_time)

    def gpu_hours(self, now: float) -> float:
        """Allocated GPUs x elapsed hours."""
        return self.req.gpus * self.elapsed(now) / 3600.0

    def cpu_hours(self, now: float) -> float:
        """Allocated CPUs x elapsed hours."""
        return self.req.cpus * self.elapsed(now) / 3600.0

    @property
    def is_array_task(self) -> bool:
        return "_" in self.display_id

    @property
    def array_job_id(self) -> Optional[int]:
        if not self.is_array_task:
            return None
        return int(self.display_id.split("_")[0])

    @property
    def is_interactive(self) -> bool:
        """OOD batch-connect jobs are named ``sys/dashboard/<app>``."""
        return self.name.startswith("sys/dashboard/")

    @property
    def interactive_app(self) -> Optional[str]:
        if not self.is_interactive:
            return None
        return self.name.rsplit("/", 1)[-1]

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_sacct_row(cls, row: Dict[str, str], clock: SimClock) -> "JobRecord":
        """Build from one parsed ``sacct --parsable2`` row."""
        req = TRES.parse(row["ReqTRES"]) if row.get("ReqTRES") else TRES(
            cpus=int(row["NCPUS"]),
            mem_mb=parse_memory_mb(row["ReqMem"]),
            nodes=int(row["NNodes"]),
        )
        max_rss = 0
        if row.get("MaxRSS"):
            max_rss = parse_memory_mb(row["MaxRSS"])
        nodelist = row.get("NodeList", "")
        nodes = [] if nodelist in ("", "None assigned") else expand_hostlist(nodelist)
        return cls(
            job_id=int(row.get("JobIDRaw") or row["JobID"].split("_")[0]),
            display_id=row["JobID"],
            name=row["JobName"],
            user=row["User"],
            account=row["Account"],
            partition=row["Partition"],
            qos=row.get("QOS", "normal"),
            state=_parse_state(row["State"]),
            reason=row.get("Reason", "None"),
            submit_time=_parse_time(clock, row["Submit"]) or 0.0,
            eligible_time=_parse_time(clock, row.get("Eligible", "")),
            start_time=_parse_time(clock, row.get("Start", "")),
            end_time=_parse_time(clock, row.get("End", "")),
            time_limit=parse_duration(row["Timelimit"]),
            req=req,
            total_cpu_seconds=parse_duration(row["TotalCPU"]) if row.get("TotalCPU") else 0.0,
            max_rss_mb=max_rss,
            exit_code=row.get("ExitCode", "0:0"),
            nodes=nodes,
            raw=row,
        )

    @classmethod
    def from_squeue_row(cls, row: Dict[str, str], clock: SimClock) -> "JobRecord":
        """Build from one parsed squeue row (Recent Jobs widget path)."""
        return cls(
            job_id=int(row["JOBID"].split("_")[0]),
            display_id=row["JOBID"],
            name=row["NAME"],
            user=row["USER"],
            account=row["ACCOUNT"],
            partition=row["PARTITION"],
            qos=row["QOS"],
            state=_parse_state(row["STATE"]),
            reason=row["REASON"],
            submit_time=_parse_time(clock, row["SUBMIT_TIME"]) or 0.0,
            eligible_time=None,
            start_time=_parse_time(clock, row["START_TIME"]),
            end_time=_parse_time(clock, row["END_TIME"]),
            time_limit=parse_duration(row["TIME_LIMIT"]),
            req=TRES.parse(row["TRES_PER_JOB"]),
            nodes=(
                expand_hostlist(row["NODELIST(REASON)"])
                if row["NODELIST(REASON)"] and not row["NODELIST(REASON)"].startswith("(")
                else []
            ),
            raw=row,
        )

    @classmethod
    def from_scontrol_block(cls, block: Dict[str, str], clock: SimClock) -> "JobRecord":
        """Build from one parsed ``scontrol show job`` block."""
        nodelist = block.get("NodeList", "(null)")
        nodes = [] if nodelist == "(null)" else expand_hostlist(nodelist)
        display = block["JobId"]
        if "ArrayJobId" in block:
            display = f"{block['ArrayJobId']}_{block['ArrayTaskId']}"
        return cls(
            job_id=int(block["JobId"]),
            display_id=display,
            name=block["JobName"],
            user=block["UserId"].split("(")[0],
            account=block["Account"],
            partition=block["Partition"],
            qos=block["QOS"],
            state=_parse_state(block["JobState"]),
            reason=block.get("Reason", "None"),
            submit_time=_parse_time(clock, block["SubmitTime"]) or 0.0,
            eligible_time=_parse_time(clock, block.get("EligibleTime", "")),
            start_time=_parse_time(clock, block.get("StartTime", "")),
            end_time=_parse_time(clock, block.get("EndTime", "")),
            time_limit=parse_duration(block["TimeLimit"]),
            req=TRES.parse(block["TRES"]),
            exit_code=block.get("ExitCode", "0:0"),
            nodes=nodes,
            raw=block,
        )


@dataclass
class NodeRecord:
    """One node parsed from ``scontrol show node`` (Cluster Status/Node
    Overview path)."""

    name: str
    cpus_total: int
    cpus_alloc: int
    cpu_load: float
    memory_total_mb: int
    memory_alloc_mb: int
    gpus_total: int
    gpus_alloc: int
    gres_model: str
    state: str
    partitions: List[str]
    features: List[str]
    os: str
    arch: str
    reason: str
    last_busy: Optional[float]
    raw: Dict[str, str] = field(default_factory=dict)
    #: name of the cluster this record came from (see JobRecord.cluster)
    cluster: str = ""

    @property
    def cpu_fraction(self) -> float:
        return self.cpus_alloc / self.cpus_total if self.cpus_total else 0.0

    @property
    def memory_fraction(self) -> float:
        return (
            self.memory_alloc_mb / self.memory_total_mb if self.memory_total_mb else 0.0
        )

    @property
    def gpu_fraction(self) -> Optional[float]:
        if self.gpus_total == 0:
            return None
        return self.gpus_alloc / self.gpus_total

    @classmethod
    def from_scontrol_block(cls, block: Dict[str, str], clock: SimClock) -> "NodeRecord":
        gpus_total = gpus_alloc = 0
        gres_model = ""
        gres = block.get("Gres", "(null)")
        if gres != "(null)":
            # "gpu:nvidia_a100:4"
            parts = gres.split(":")
            gres_model = parts[1] if len(parts) == 3 else ""
            gpus_total = int(parts[-1])
        gres_used = block.get("GresUsed", "(null)")
        if gres_used != "(null)":
            gpus_alloc = int(gres_used.split(":")[-1])
        features = (
            []
            if block.get("AvailableFeatures", "(null)") == "(null)"
            else block["AvailableFeatures"].split(",")
        )
        return cls(
            name=block["NodeName"],
            cpus_total=int(block["CPUTot"]),
            cpus_alloc=int(block["CPUAlloc"]),
            cpu_load=float(block["CPULoad"]),
            memory_total_mb=int(block["RealMemory"]),
            memory_alloc_mb=int(block["AllocMem"]),
            gpus_total=gpus_total,
            gpus_alloc=gpus_alloc,
            gres_model=gres_model,
            state=block["State"],
            partitions=block.get("Partitions", "").split(",") if block.get("Partitions") else [],
            features=features,
            os=block.get("OS", ""),
            arch=block.get("Arch", ""),
            reason=block.get("Reason", ""),
            last_busy=_parse_time(clock, block.get("LastBusyTime", "")),
            raw=block,
        )
