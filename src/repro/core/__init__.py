"""The paper's contribution: the modular HPC dashboard itself."""

from .caching import CachePolicy, CacheStats, TTLCache
from .charts import (
    StackedBar,
    StackedBarChart,
    StackedBarSegment,
    gpu_hour_distribution,
    job_state_distribution,
)
from .clientcache import ClientCache, FetchOutcome, IndexedDBStore
from .colors import (
    announcement_color,
    announcement_style,
    job_state_color,
    job_state_label,
    node_state_color,
    utilization_color,
)
from .dashboard import Dashboard, build_demo_dashboard
from .efficiency import (
    EfficiencyWarning,
    JobEfficiency,
    compute_efficiency,
    efficiency_warnings,
    mean_efficiency,
)
from .export import export_csv, export_excel_xml
from .monitor import JobEvent, JobWatcher
from .records import JobRecord, NodeRecord
from .routes import (
    ApiRoute,
    DashboardContext,
    RouteRegistry,
    RouteResponse,
)
from .workers import TaskOutcome, WorkerPool

__all__ = [
    "CachePolicy",
    "CacheStats",
    "TTLCache",
    "StackedBar",
    "StackedBarChart",
    "StackedBarSegment",
    "gpu_hour_distribution",
    "job_state_distribution",
    "ClientCache",
    "FetchOutcome",
    "IndexedDBStore",
    "announcement_color",
    "announcement_style",
    "job_state_color",
    "job_state_label",
    "node_state_color",
    "utilization_color",
    "Dashboard",
    "build_demo_dashboard",
    "EfficiencyWarning",
    "JobEfficiency",
    "compute_efficiency",
    "efficiency_warnings",
    "mean_efficiency",
    "export_csv",
    "export_excel_xml",
    "JobEvent",
    "JobWatcher",
    "JobRecord",
    "NodeRecord",
    "ApiRoute",
    "DashboardContext",
    "RouteRegistry",
    "RouteResponse",
    "TaskOutcome",
    "WorkerPool",
]
