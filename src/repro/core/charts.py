"""Chart series builders for the My Jobs visualizations (paper §4.2).

Two charts, both grouped by user (the Chart.js stacked bar charts of the
paper):

* **job state distribution** — per user, the percentage of jobs in each
  state; clicking a segment filters the table by that state, so each
  segment carries its filter key;
* **GPU hour distribution** — per user, GPU hours consumed by the jobs in
  the list, for allocation managers tracking group GPU usage.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.slurm.model import Job, JobState

from .colors import job_state_color


@dataclass
class StackedBarSegment:
    label: str
    value: float
    color: str
    filter_key: str


@dataclass
class StackedBar:
    category: str  # the user
    segments: List[StackedBarSegment] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(s.value for s in self.segments)


@dataclass
class StackedBarChart:
    title: str
    unit: str
    bars: List[StackedBar] = field(default_factory=list)

    def bar_for(self, category: str) -> StackedBar:
        """The bar for one category (KeyError if absent)."""
        for bar in self.bars:
            if bar.category == category:
                return bar
        raise KeyError(f"no bar for {category!r}")

    def to_chartjs(self) -> dict:
        """Chart.js ``data`` object (labels + one dataset per segment
        label), matching what the real frontend feeds the library."""
        labels = [b.category for b in self.bars]
        series: Dict[str, List[float]] = {}
        colors: Dict[str, str] = {}
        for bar in self.bars:
            for seg in bar.segments:
                series.setdefault(seg.label, [0.0] * len(labels))
                colors[seg.label] = seg.color
        for i, bar in enumerate(self.bars):
            for seg in bar.segments:
                series[seg.label][i] = seg.value
        return {
            "labels": labels,
            "datasets": [
                {
                    "label": name,
                    "data": values,
                    "backgroundColor": colors[name],
                }
                for name, values in series.items()
            ],
        }


def job_state_distribution(jobs: Sequence[Job]) -> StackedBarChart:
    """Percent of each user's jobs in each state (§4.2)."""
    by_user: Dict[str, Dict[JobState, int]] = defaultdict(lambda: defaultdict(int))
    for job in jobs:
        by_user[job.user][job.state] += 1
    chart = StackedBarChart(title="Job state distribution by user", unit="%")
    for user in sorted(by_user):
        counts = by_user[user]
        total = sum(counts.values())
        bar = StackedBar(category=user)
        for state in JobState:
            if counts.get(state):
                bar.segments.append(
                    StackedBarSegment(
                        label=state.value,
                        value=round(100.0 * counts[state] / total, 2),
                        color=job_state_color(state),
                        filter_key=f"state:{state.value}",
                    )
                )
        chart.bars.append(bar)
    return chart


def gpu_hour_distribution(jobs: Sequence[Job], now: float) -> StackedBarChart:
    """GPU hours per user in the job list (§4.2).  Users with zero GPU
    hours are omitted, as in the paper's chart."""
    hours: Dict[str, float] = defaultdict(float)
    for job in jobs:
        gh = job.gpu_hours(now)
        if gh > 0:
            hours[job.user] += gh
    chart = StackedBarChart(title="GPU hour distribution by user", unit="GPU-hours")
    for user in sorted(hours, key=lambda u: -hours[u]):
        chart.bars.append(
            StackedBar(
                category=user,
                segments=[
                    StackedBarSegment(
                        label="GPU hours",
                        value=round(hours[user], 2),
                        color="blue",
                        filter_key=f"user:{user}",
                    )
                ],
            )
        )
    return chart
