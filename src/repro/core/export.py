"""Account-usage export (paper §3.4).

"there is a dropdown for each account to allow users to export the
breakdown of account usage by user into an Excel or CSV file" — used by
group managers to spot members using more than their share.

CSV is plain RFC-4180-ish; the "Excel" flavour is SpreadsheetML 2003 XML,
which Excel opens natively and which we can emit without dependencies.
Both are manager-gated by :class:`~repro.auth.PermissionPolicy`.
"""

from __future__ import annotations

import csv
import io
from typing import List
from xml.sax.saxutils import escape as xml_escape

from repro.auth import Viewer
from repro.slurm.accounting import UsageRollup

from .routes import ApiRoute, DashboardContext

CSV_HEADERS = [
    "account",
    "user",
    "job_count",
    "cpu_hours",
    "gpu_hours",
    "wall_hours",
]


def usage_rows(ctx: DashboardContext, viewer: Viewer, account: str) -> List[UsageRollup]:
    """Manager-gated per-user usage breakdown for one account.

    The rollup read goes through the context's resilient fetch path
    (:meth:`~repro.core.routes.DashboardContext.account_usage`), so an
    export spends the request's deadline budget like any other route
    instead of silently bypassing it.
    """
    ctx.policy.require_export_access(viewer, account)
    return ctx.account_usage(account)


def export_csv(ctx: DashboardContext, viewer: Viewer, account: str) -> str:
    """CSV rendition of the §3.4 breakdown."""
    rows = usage_rows(ctx, viewer, account)
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(CSV_HEADERS)
    for r in rows:
        writer.writerow(
            [
                r.account,
                r.user,
                r.job_count,
                f"{r.cpu_hours:.2f}",
                f"{r.gpu_hours:.2f}",
                f"{r.wall_hours:.2f}",
            ]
        )
    return buf.getvalue()


def export_excel_xml(ctx: DashboardContext, viewer: Viewer, account: str) -> str:
    """SpreadsheetML 2003 rendition (opens directly in Excel)."""
    rows = usage_rows(ctx, viewer, account)
    cells_header = "".join(
        f'<Cell><Data ss:Type="String">{xml_escape(h)}</Data></Cell>'
        for h in CSV_HEADERS
    )
    body_rows = []
    for r in rows:
        body_rows.append(
            "<Row>"
            f'<Cell><Data ss:Type="String">{xml_escape(r.account)}</Data></Cell>'
            f'<Cell><Data ss:Type="String">{xml_escape(r.user)}</Data></Cell>'
            f'<Cell><Data ss:Type="Number">{r.job_count}</Data></Cell>'
            f'<Cell><Data ss:Type="Number">{r.cpu_hours:.2f}</Data></Cell>'
            f'<Cell><Data ss:Type="Number">{r.gpu_hours:.2f}</Data></Cell>'
            f'<Cell><Data ss:Type="Number">{r.wall_hours:.2f}</Data></Cell>'
            "</Row>"
        )
    return (
        '<?xml version="1.0"?>\n'
        '<Workbook xmlns="urn:schemas-microsoft-com:office:spreadsheet" '
        'xmlns:ss="urn:schemas-microsoft-com:office:spreadsheet">'
        f'<Worksheet ss:Name="{xml_escape(account)} usage"><Table>'
        f"<Row>{cells_header}</Row>"
        + "".join(body_rows)
        + "</Table></Worksheet></Workbook>"
    )


def export_route_handler(ctx: DashboardContext, viewer: Viewer, params: dict) -> dict:
    """Route handler: export payload as JSON-wrapped text."""
    account = params.get("account")
    if not account:
        raise ValueError("missing required parameter 'account'")
    fmt = str(params.get("format", "csv"))
    if fmt == "csv":
        content, mime = export_csv(ctx, viewer, str(account)), "text/csv"
    elif fmt in ("xls", "xlsx", "excel"):
        content, mime = (
            export_excel_xml(ctx, viewer, str(account)),
            "application/vnd.ms-excel",
        )
    else:
        raise ValueError(f"unknown export format {fmt!r}")
    return {
        "account": account,
        "format": fmt,
        "mime_type": mime,
        "filename": f"{account}_usage.{ 'csv' if fmt == 'csv' else 'xls' }",
        "content": content,
    }


ROUTE = ApiRoute(
    name="account_usage_export",
    path="/api/v1/export/account_usage",
    feature="Accounts widget (export)",
    data_sources=("sacct (Slurm)",),
    handler=export_route_handler,
    client_max_age_s=0.001,  # exports are never client-cached
)
