"""Users, Unix groups, and Slurm accounts (allocations).

The paper's privacy rules (§2.4) are phrased in terms of three identities:

* the *user* (who is logged into Open OnDemand),
* the *allocation/account* a job was charged to (a Slurm account — the
  paper calls these "allocations" or "groups" interchangeably), and
* the Unix *group* owning shared storage directories.

We model a directory of users and accounts.  An account has members and
optionally managers (PIs / group managers who may export per-user usage,
per §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class User:
    """A cluster user.

    Attributes
    ----------
    username:
        Unix login name; unique key.
    full_name:
        Display name shown by the dashboard shell.
    uid:
        Numeric uid; used for file-permission checks on job logs.
    """

    username: str
    full_name: str = ""
    uid: int = 0

    def __post_init__(self) -> None:
        if not self.username:
            raise ValueError("username must be non-empty")


@dataclass
class Account:
    """A Slurm account / allocation ("group" in the paper's UI copy).

    Attributes
    ----------
    name:
        Account name, e.g. ``physics-lab``.
    members:
        Usernames allowed to charge jobs to this account.
    managers:
        Subset of members allowed to export per-user usage breakdowns.
    description:
        Free-text shown in the Accounts widget.
    """

    name: str
    members: List[str] = field(default_factory=list)
    managers: List[str] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("account name must be non-empty")
        for m in self.managers:
            if m not in self.members:
                raise ValueError(f"manager {m!r} is not a member of {self.name!r}")

    def is_member(self, username: str) -> bool:
        """True if ``username`` belongs to this account."""
        return username in self.members

    def is_manager(self, username: str) -> bool:
        """True if ``username`` manages this account."""
        return username in self.managers


class Directory:
    """In-memory directory of users and accounts.

    This replaces LDAP + the Slurm association database for identity
    purposes.  It is the single source of truth that both the scheduler
    (for association limits) and the dashboard (for privacy filtering)
    consult.
    """

    def __init__(self) -> None:
        self._users: Dict[str, User] = {}
        self._accounts: Dict[str, Account] = {}
        self._next_uid = 10001

    # -- users -----------------------------------------------------------

    def add_user(self, username: str, full_name: str = "", uid: Optional[int] = None) -> User:
        """Register a new user, auto-assigning a uid when omitted."""
        if username in self._users:
            raise ValueError(f"duplicate user {username!r}")
        if uid is None:
            uid = self._next_uid
            self._next_uid += 1
        user = User(username=username, full_name=full_name or username, uid=uid)
        self._users[username] = user
        return user

    def user(self, username: str) -> User:
        """Look up a user by login (KeyError if unknown)."""
        try:
            return self._users[username]
        except KeyError:
            raise KeyError(f"unknown user {username!r}") from None

    def has_user(self, username: str) -> bool:
        """True if a user with this login exists."""
        return username in self._users

    def users(self) -> List[User]:
        """All users in the directory."""
        return list(self._users.values())

    # -- accounts ---------------------------------------------------------

    def add_account(
        self,
        name: str,
        members: Iterable[str] = (),
        managers: Iterable[str] = (),
        description: str = "",
    ) -> Account:
        """Register a new account; members must already exist."""
        if name in self._accounts:
            raise ValueError(f"duplicate account {name!r}")
        members = list(members)
        for m in members:
            if m not in self._users:
                raise KeyError(f"account {name!r} references unknown user {m!r}")
        acct = Account(
            name=name,
            members=members,
            managers=list(managers),
            description=description,
        )
        self._accounts[name] = acct
        return acct

    def account(self, name: str) -> Account:
        """Look up an account by name (KeyError if unknown)."""
        try:
            return self._accounts[name]
        except KeyError:
            raise KeyError(f"unknown account {name!r}") from None

    def has_account(self, name: str) -> bool:
        """True if an account with this name exists."""
        return name in self._accounts

    def accounts(self) -> List[Account]:
        """All accounts in the directory."""
        return list(self._accounts.values())

    def accounts_of(self, username: str) -> List[Account]:
        """All accounts the user belongs to (Accounts widget scope)."""
        return [a for a in self._accounts.values() if a.is_member(username)]

    def account_names_of(self, username: str) -> List[str]:
        """Names of the accounts ``username`` belongs to."""
        return [a.name for a in self.accounts_of(username)]

    def colleagues_of(self, username: str) -> List[str]:
        """Everyone sharing at least one account with ``username`` —
        the visibility set for the My Jobs group view (§2.4)."""
        seen: dict[str, None] = {}
        for acct in self.accounts_of(username):
            for member in acct.members:
                seen.setdefault(member, None)
        return list(seen)
