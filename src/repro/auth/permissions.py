"""Privacy / permission filters (paper §2.4, "Privacy").

The dashboard is "personal to the user": every route filters what it
returns down to the requesting user's own scope.

* Homepage: only the user's allocations and disks.
* My Jobs: only jobs the user submitted, or jobs charged to an
  account/group the user is a member of.
* Job Overview logs: only readable by the submitting user (file
  permissions are inherited from the filesystem).
* Account usage export: account managers only (§3.4 use case).

These checks are centralized here so every page applies identical rules
and tests can exercise them in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Sequence

from .users import Directory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.slurm.model import Job


class PermissionDenied(Exception):
    """Raised when a user requests data outside their privacy scope."""


@dataclass(frozen=True)
class Viewer:
    """The authenticated identity making a dashboard request."""

    username: str
    is_admin: bool = False


class PermissionPolicy:
    """Centralized implementation of the paper's privacy rules."""

    def __init__(self, directory: Directory):
        self.directory = directory

    # -- job visibility ----------------------------------------------------

    def can_see_job(self, viewer: Viewer, job: "Job") -> bool:
        """My Jobs rule: own jobs, or jobs under a shared account."""
        if viewer.is_admin:
            return True
        if job.user == viewer.username:
            return True
        return job.account in self.directory.account_names_of(viewer.username)

    def filter_jobs(self, viewer: Viewer, jobs: Iterable["Job"]) -> List["Job"]:
        """Subset of ``jobs`` visible to the viewer (My Jobs scope)."""
        return [j for j in jobs if self.can_see_job(viewer, j)]

    # -- log visibility ------------------------------------------------------

    def can_read_job_logs(self, viewer: Viewer, job: "Job") -> bool:
        """Logs inherit file permissions: only the submitting user (§7)."""
        if viewer.is_admin:
            return True
        return job.user == viewer.username

    def require_log_access(self, viewer: Viewer, job: "Job") -> None:
        """Raise :class:`PermissionDenied` unless the viewer may read the job's logs."""
        if not self.can_read_job_logs(viewer, job):
            raise PermissionDenied(
                f"user {viewer.username!r} may not read logs of job "
                f"{job.job_id} owned by {job.user!r}"
            )

    # -- account scoping -----------------------------------------------------

    def visible_accounts(self, viewer: Viewer) -> List[str]:
        """Accounts widget rule: only the user's own allocations."""
        if viewer.is_admin:
            return [a.name for a in self.directory.accounts()]
        return self.directory.account_names_of(viewer.username)

    def require_account_member(self, viewer: Viewer, account: str) -> None:
        """Raise :class:`PermissionDenied` unless the viewer belongs to ``account``."""
        if viewer.is_admin:
            return
        if account not in self.directory.account_names_of(viewer.username):
            raise PermissionDenied(
                f"user {viewer.username!r} is not a member of account {account!r}"
            )

    def can_export_account_usage(self, viewer: Viewer, account: str) -> bool:
        """Per-user usage export (§3.4) is for managers and admins.

        Regular members may still *view* aggregate usage.
        """
        if viewer.is_admin:
            return True
        acct = self.directory.account(account)
        return acct.is_manager(viewer.username)

    def require_export_access(self, viewer: Viewer, account: str) -> None:
        """Raise :class:`PermissionDenied` unless the viewer may export ``account``."""
        if not self.can_export_account_usage(viewer, account):
            raise PermissionDenied(
                f"user {viewer.username!r} may not export usage for {account!r}"
            )

    # -- storage scoping -------------------------------------------------------

    def visible_storage_owners(self, viewer: Viewer) -> List[str]:
        """Keys whose storage directories the user may see: their own
        username plus their accounts (group directories)."""
        owners = [viewer.username]
        owners.extend(self.directory.account_names_of(viewer.username))
        return owners


def assert_all_visible(
    policy: PermissionPolicy, viewer: Viewer, jobs: Sequence["Job"]
) -> None:
    """Test/benchmark helper: verify a response leaked nothing."""
    for job in jobs:
        if not policy.can_see_job(viewer, job):
            raise PermissionDenied(
                f"leak: job {job.job_id} (user={job.user}, account={job.account}) "
                f"is visible to {viewer.username}"
            )
