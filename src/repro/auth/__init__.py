"""Identity substrate: users, accounts/allocations, and privacy policy."""

from .permissions import PermissionDenied, PermissionPolicy, Viewer, assert_all_visible
from .users import Account, Directory, User

__all__ = [
    "Account",
    "Directory",
    "User",
    "PermissionDenied",
    "PermissionPolicy",
    "Viewer",
    "assert_all_visible",
]
