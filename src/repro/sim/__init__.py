"""Deterministic simulation kernel: virtual clock, event loop, RNG streams."""

from .clock import DEFAULT_EPOCH, SimClock, duration_hms, parse_duration
from .events import EventHandle, EventLoop
from .rng import RandomStreams, bounded_lognormal, zipf_weights

__all__ = [
    "DEFAULT_EPOCH",
    "SimClock",
    "duration_hms",
    "parse_duration",
    "EventHandle",
    "EventLoop",
    "RandomStreams",
    "bounded_lognormal",
    "zipf_weights",
]
