"""Seeded random streams for reproducible synthetic workloads.

A single integer seed fans out into independent named streams, so adding a
new consumer (say, a new kind of synthetic job) does not perturb the draws
seen by existing consumers.  This is the standard trick for keeping large
simulations reproducible while they grow.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """A family of independent, named :class:`numpy.random.Generator` streams.

    >>> rs = RandomStreams(seed=7)
    >>> a = rs.stream("arrivals").integers(0, 100, 3)
    >>> b = RandomStreams(seed=7).stream("arrivals").integers(0, 100, 3)
    >>> (a == b).all()
    np.True_
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive(name))
            self._streams[name] = gen
        return gen

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def fork(self, name: str) -> "RandomStreams":
        """A child family, independent of this one and of siblings."""
        return RandomStreams(self._derive(f"fork:{name}"))


def zipf_weights(n: int, s: float = 1.2) -> np.ndarray:
    """Normalized Zipf weights over ``n`` items — a realistic skew for
    per-user job counts (a few heavy users, a long tail)."""
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-s)
    return w / w.sum()


def bounded_lognormal(
    gen: np.random.Generator, mean: float, sigma: float, low: float, high: float
) -> float:
    """Draw a lognormal value clamped into [low, high].

    Used for job durations and memory footprints, which are heavy-tailed in
    real accounting data but must respect partition limits.
    """
    if low > high:
        raise ValueError(f"low {low} > high {high}")
    val = float(gen.lognormal(np.log(max(mean, 1e-9)), sigma))
    return float(min(max(val, low), high))
