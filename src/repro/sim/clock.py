"""Virtual clock for deterministic simulation.

Every substrate in :mod:`repro` (the Slurm scheduler, the TTL caches, the
news feed, ...) takes time from a :class:`SimClock` instead of
``time.time()``.  This makes the whole dashboard deterministic and lets
tests and benchmarks advance hours of simulated wall time instantly.

The clock counts seconds since a configurable epoch.  Helpers convert
between the float timestamp used internally and the ISO-8601 strings that
Slurm command output uses (``2025-11-16T08:30:00``).
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, List

#: Default simulation epoch: the first day of SC'25, where the paper was
#: presented.  Any fixed date works; tests rely on determinism, not the
#: particular value.
DEFAULT_EPOCH = _dt.datetime(2025, 11, 16, 0, 0, 0)

ISO_FORMAT = "%Y-%m-%dT%H:%M:%S"


class SimClock:
    """A monotonically advancing virtual clock.

    Parameters
    ----------
    start:
        Initial timestamp in seconds since the epoch.  Defaults to 0.
    epoch:
        Calendar datetime corresponding to ``t == 0``.
    """

    __slots__ = ("_now", "_epoch", "_observers")

    def __init__(self, start: float = 0.0, epoch: _dt.datetime = DEFAULT_EPOCH):
        if start < 0:
            raise ValueError(f"clock cannot start before the epoch: {start}")
        self._now = float(start)
        self._epoch = epoch
        self._observers: List[Callable[[float], None]] = []

    # -- reading ---------------------------------------------------------

    def now(self) -> float:
        """Current simulated time in seconds since the epoch."""
        return self._now

    @property
    def epoch(self) -> _dt.datetime:
        return self._epoch

    def datetime(self, t: float | None = None) -> _dt.datetime:
        """Calendar datetime for ``t`` (default: now)."""
        if t is None:
            t = self._now
        return self._epoch + _dt.timedelta(seconds=t)

    def isoformat(self, t: float | None = None) -> str:
        """ISO-8601 string Slurm-style (no timezone) for ``t``."""
        return self.datetime(t).strftime(ISO_FORMAT)

    def isoformat_tz(self, t: float | None = None, offset_minutes: int = 0) -> str:
        """ISO-8601 string shifted into a viewer's local timezone.

        The simulation epoch is treated as UTC; the dashboard's frontend
        adjusts display times "for the user's local timezone" (paper §7),
        which we model with an explicit offset.

        >>> SimClock().isoformat_tz(0, offset_minutes=-300)
        '2025-11-15T19:00:00-05:00'
        """
        if not -24 * 60 <= offset_minutes <= 24 * 60:
            raise ValueError(f"implausible timezone offset: {offset_minutes} min")
        if t is None:
            t = self._now
        local = self.datetime(t) + _dt.timedelta(minutes=offset_minutes)
        sign = "+" if offset_minutes >= 0 else "-"
        hh, mm = divmod(abs(offset_minutes), 60)
        return f"{local.strftime(ISO_FORMAT)}{sign}{hh:02d}:{mm:02d}"

    def parse_iso(self, s: str) -> float:
        """Inverse of :meth:`isoformat`: seconds since the epoch."""
        dt = _dt.datetime.strptime(s, ISO_FORMAT)
        return (dt - self._epoch).total_seconds()

    # -- advancing -------------------------------------------------------

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"time cannot move backwards: {seconds}")
        self._now += float(seconds)
        for obs in self._observers:
            obs(self._now)
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t`` (>= now)."""
        if t < self._now:
            raise ValueError(
                f"advance_to({t}) would move time backwards from {self._now}"
            )
        return self.advance(t - self._now)

    def subscribe(self, fn: Callable[[float], None]) -> None:
        """Call ``fn(now)`` after every advance (used by daemons)."""
        self._observers.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(t={self._now:.1f}, {self.isoformat()})"


class RelayClock:
    """A clock facade whose advances are relayed to an external driver.

    The multi-process fleet holds one *logical* sim clock whose real
    instances live in worker processes.  Harness code written against
    the single-process API (``dash.clock.advance(...)`` between ticks)
    keeps working unchanged: a ``RelayClock`` tracks the ensemble's
    time cursor locally and hands every ``advance`` to ``relay`` — the
    fleet's broadcast-and-barrier — which moves every worker clock in
    lockstep before the call returns.

    Only the advancing/reading subset of :class:`SimClock` is exposed;
    anything needing calendar conversion belongs in the workers, next
    to a real clock.
    """

    __slots__ = ("_now", "_relay")

    def __init__(self, start: float, relay: Callable[[float], None]):
        if start < 0:
            raise ValueError(f"clock cannot start before the epoch: {start}")
        self._now = float(start)
        self._relay = relay

    def now(self) -> float:
        """The ensemble's current simulated time (seconds)."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Relay one lockstep advance; returns the new ensemble time."""
        if seconds < 0:
            raise ValueError(f"time cannot move backwards: {seconds}")
        self._relay(float(seconds))
        self._now += float(seconds)
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance the ensemble to absolute time ``t`` (>= now)."""
        if t < self._now:
            raise ValueError(
                f"advance_to({t}) would move time backwards from {self._now}"
            )
        return self.advance(t - self._now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelayClock(t={self._now:.1f})"


def duration_hms(seconds: float) -> str:
    """Format a duration the way Slurm does: ``D-HH:MM:SS`` or ``HH:MM:SS``.

    >>> duration_hms(3661)
    '01:01:01'
    >>> duration_hms(90061)
    '1-01:01:01'
    """
    seconds = int(max(0, round(seconds)))
    days, rem = divmod(seconds, 86400)
    hours, rem = divmod(rem, 3600)
    minutes, secs = divmod(rem, 60)
    if days:
        return f"{days}-{hours:02d}:{minutes:02d}:{secs:02d}"
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


def parse_duration(text: str) -> float:
    """Parse Slurm duration strings: ``MM:SS``, ``HH:MM:SS``, ``D-HH:MM:SS``,
    ``D-HH``, ``D-HH:MM`` and bare minutes (``sbatch --time=30``).

    Returns seconds.  Raises :class:`ValueError` on malformed input.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty duration")
    if text in ("UNLIMITED", "INFINITE", "NOT_SET"):
        return float("inf")
    days = 0
    if "-" in text:
        day_part, _, text = text.partition("-")
        days = int(day_part)
        parts = text.split(":")
        if len(parts) == 1:
            h, m, s = int(parts[0]), 0, 0
        elif len(parts) == 2:
            h, m = int(parts[0]), int(parts[1])
            s = 0
        elif len(parts) == 3:
            h, m, s = (int(p) for p in parts)
        else:
            raise ValueError(f"bad duration: {text!r}")
    else:
        parts = text.split(":")
        if len(parts) == 1:
            # Bare number = minutes, per sbatch(1).
            h, m, s = 0, int(parts[0]), 0
        elif len(parts) == 2:
            h, m, s = 0, int(parts[0]), int(parts[1])
        elif len(parts) == 3:
            h, m, s = (int(p) for p in parts)
        else:
            raise ValueError(f"bad duration: {text!r}")
    if m >= 60 and len(parts) > 1:
        raise ValueError(f"minutes out of range in {text!r}")
    if s >= 60:
        raise ValueError(f"seconds out of range in {text!r}")
    return float(days * 86400 + h * 3600 + m * 60 + s)
