"""Discrete-event loop driving the cluster simulation.

The Slurm simulator is event-driven: job submission, job completion, node
state changes and scheduler passes are all events on a single priority
queue keyed by simulated time.  :class:`EventLoop` owns a
:class:`~repro.sim.clock.SimClock` and pops events in time order,
advancing the clock to each event's timestamp.

Events scheduled for the same instant run in FIFO order of scheduling
(stable tie-break by a monotonically increasing sequence number), which
keeps the simulation fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .clock import SimClock

EventCallback = Callable[[], Any]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label


class EventLoop:
    """Deterministic discrete-event loop over a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._processed = 0

    # -- scheduling ------------------------------------------------------

    def schedule_at(self, t: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated time ``t``."""
        if t < self.clock.now():
            raise ValueError(
                f"cannot schedule event at {t} in the past (now={self.clock.now()})"
            )
        ev = _ScheduledEvent(t, next(self._seq), callback, label)
        heapq.heappush(self._queue, ev)
        return EventHandle(ev)

    def schedule_in(self, delay: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.clock.now() + delay, callback, label)

    def schedule_every(
        self,
        interval: float,
        callback: EventCallback,
        label: str = "",
        first_delay: float | None = None,
    ) -> EventHandle:
        """Schedule a recurring event.  Cancelling the returned handle stops
        the recurrence at the next firing."""
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        handle_box: list[EventHandle] = []

        def _fire() -> None:
            if handle_box and handle_box[0].cancelled:
                return
            callback()
            if handle_box and handle_box[0].cancelled:
                # the callback cancelled its own recurrence: scheduling the
                # next firing would re-point the handle at a fresh,
                # uncancelled event and silently undo the cancel
                return
            nxt = self.schedule_in(interval, _fire, label)
            # keep the user's handle pointed at the live event so cancel()
            # keeps working across firings
            if handle_box:
                handle_box[0]._event = nxt._event  # noqa: SLF001

        first = self.schedule_in(
            interval if first_delay is None else first_delay, _fire, label
        )
        handle_box.append(first)
        return first

    # -- running ---------------------------------------------------------

    def _compact_head(self) -> None:
        """Pop cancelled tombstones off the queue head (lazy removal).

        Every reader of the queue — :meth:`peek_time`, :meth:`step`, and
        the :attr:`pending` counter — goes through the same compaction,
        so they can never disagree about whether anything is left to
        fire: ``pending == 0`` exactly when ``peek_time()`` is ``None``.
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending (non-cancelled) event, or None."""
        self._compact_head()
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        while self._queue:
            self._compact_head()
            if not self._queue:
                break
            ev = heapq.heappop(self._queue)
            # If someone advanced the clock directly past this event's
            # timestamp, run the event now rather than failing: overdue
            # events fire immediately.
            self.clock.advance_to(max(ev.time, self.clock.now()))
            ev.callback()
            self._processed += 1
            return True
        return False

    def run_until(self, t: float) -> int:
        """Run all events with timestamp <= ``t``, then advance the clock to
        ``t``.  Returns the number of events processed."""
        count = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > t:
                break
            self.step()
            count += 1
        self.clock.advance_to(max(t, self.clock.now()))
        return count

    def run_for(self, seconds: float) -> int:
        """Run the simulation forward ``seconds`` of virtual time."""
        return self.run_until(self.clock.now() + seconds)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely (bounded by ``max_events``)."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise RuntimeError(
                    f"event loop did not quiesce within {max_events} events"
                )
        return count

    @property
    def pending(self) -> int:
        """Events still due to fire (cancelled tombstones excluded).

        Shares :meth:`_compact_head` with :meth:`peek_time` so the two
        always agree: a queue holding only cancelled events reports
        ``pending == 0`` and ``peek_time() is None``.
        """
        self._compact_head()
        return sum(1 for ev in self._queue if not ev.cancelled)

    @property
    def processed(self) -> int:
        return self._processed

    def __repr__(self) -> str:  # pragma: no cover
        return f"EventLoop(t={self.clock.now():.1f}, pending={self.pending})"
