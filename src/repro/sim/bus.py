"""In-process event bus carrying typed cluster state changes.

The simulator is already event-driven (:mod:`repro.sim.events`); this bus
is the tap the serving layer subscribes to.  The scheduler publishes a
:class:`StateChange` for every externally-visible transition — job
submitted / started / ended, node state change, scheduler pass — and
subscribers (the materialized-view hub in :mod:`repro.core.views`) turn
those into targeted cache invalidations and view refreshes instead of
waiting out TTLs.

Dispatch is synchronous and in-order: ``publish`` calls every subscriber
before returning, on the simulation thread.  Subscriber exceptions are
isolated (counted, never propagated into the scheduler), mirroring how a
real message bus decouples producer health from consumer bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .clock import SimClock


@dataclass(frozen=True)
class StateChange:
    """One externally-visible cluster state transition.

    ``kind`` is one of ``job_submitted``, ``job_started``, ``job_ended``,
    ``node_state``, ``sched_pass``.  ``seq`` is a bus-wide monotonic
    sequence number, so subscribers can order and deduplicate.
    """

    kind: str
    at: float
    seq: int
    job_id: Optional[int] = None
    user: str = ""
    account: str = ""
    nodes: Tuple[str, ...] = ()
    detail: str = ""


Subscriber = Callable[[StateChange], None]


class EventBus:
    """Synchronous pub/sub for :class:`StateChange` records."""

    def __init__(self, clock: SimClock):
        self.clock = clock
        self._subscribers: List[Subscriber] = []
        self._seq = 0
        self.published = 0
        #: subscriber callbacks that raised (isolated, not propagated)
        self.subscriber_errors = 0
        #: ring of the most recent changes, for debugging/inspection
        self.recent: List[StateChange] = []
        self._recent_cap = 256

    def subscribe(self, fn: Subscriber) -> Callable[[], None]:
        """Register ``fn``; returns an unsubscribe callable."""
        self._subscribers.append(fn)

        def _unsubscribe() -> None:
            try:
                self._subscribers.remove(fn)
            except ValueError:
                pass

        return _unsubscribe

    def publish(
        self,
        kind: str,
        *,
        job_id: Optional[int] = None,
        user: str = "",
        account: str = "",
        nodes: Tuple[str, ...] = (),
        detail: str = "",
    ) -> StateChange:
        """Publish one state change to every subscriber, in order."""
        self._seq += 1
        change = StateChange(
            kind=kind,
            at=self.clock.now(),
            seq=self._seq,
            job_id=job_id,
            user=user,
            account=account,
            nodes=tuple(nodes),
            detail=detail,
        )
        self.published += 1
        self.recent.append(change)
        if len(self.recent) > self._recent_cap:
            del self.recent[: len(self.recent) - self._recent_cap]
        for fn in list(self._subscribers):
            try:
                fn(change)
            except Exception:
                self.subscriber_errors += 1
        return change

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"EventBus(subscribers={len(self._subscribers)}, "
            f"published={self.published})"
        )
