"""Cluster assembly: nodes + partitions + scheduler + accounting + daemons.

:class:`SlurmCluster` is the top-level handle every other subsystem talks
to — the moral equivalent of "the cluster" in the paper's Figure 1.  It
wires the event loop, slurmctld (scheduler), slurmdbd (accounting
archive) and the daemon load model together and offers a small
convenience API for building clusters in tests, examples and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.bus import EventBus
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop

from .accounting import AccountingDatabase
from .daemon import DaemonBus
from .gpumetrics import GpuTelemetry
from .model import (
    Association,
    Job,
    JobSpec,
    Node,
    NodeState,
    Partition,
    QoS,
    TRES,
)
from .scheduler import SchedulerConfig, SlurmScheduler


@dataclass
class NodeGroupSpec:
    """A homogeneous rack of nodes, e.g. 32x 128-core CPU nodes."""

    prefix: str
    count: int
    cpus: int
    memory_mb: int
    gpus: int = 0
    gres_model: str = ""
    features: List[str] = field(default_factory=list)
    os: str = "Linux 5.14.0-el9"
    start_index: int = 1
    pad: int = 3

    def build(self) -> List[Node]:
        """Materialize the group's Node objects."""
        if self.count <= 0:
            raise ValueError(f"node group {self.prefix!r}: count must be positive")
        nodes = []
        for i in range(self.start_index, self.start_index + self.count):
            nodes.append(
                Node(
                    name=f"{self.prefix}{i:0{self.pad}d}",
                    cpus=self.cpus,
                    real_memory_mb=self.memory_mb,
                    gpus=self.gpus,
                    gres_model=self.gres_model,
                    features=list(self.features),
                    os=self.os,
                )
            )
        return nodes


@dataclass
class PartitionSpec:
    """Partition over one or more node groups (by prefix)."""

    name: str
    node_prefixes: List[str]
    max_time_s: float = 14 * 86400.0
    is_default: bool = False
    priority_tier: int = 1


@dataclass
class ClusterSpec:
    """Declarative description of a cluster to simulate."""

    name: str
    node_groups: List[NodeGroupSpec]
    partitions: List[PartitionSpec]
    qos: List[QoS] = field(default_factory=list)
    associations: List[Association] = field(default_factory=list)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)


class SlurmCluster:
    """A live simulated cluster: submit jobs, advance time, query state."""

    def __init__(self, spec: ClusterSpec, loop: Optional[EventLoop] = None):
        self.spec = spec
        self.name = spec.name
        self.loop = loop if loop is not None else EventLoop(SimClock())
        self.clock = self.loop.clock
        self.accounting = AccountingDatabase()
        self.daemons = DaemonBus(self.clock)
        #: typed state-change stream the serving layer subscribes to for
        #: event-driven cache invalidation and materialized views
        self.bus = EventBus(self.clock)
        self.gpu_telemetry = GpuTelemetry()

        nodes: List[Node] = []
        by_prefix: Dict[str, List[str]] = {}
        for group in spec.node_groups:
            built = group.build()
            nodes.extend(built)
            by_prefix[group.prefix] = [n.name for n in built]

        partitions: List[Partition] = []
        for pspec in spec.partitions:
            node_names: List[str] = []
            for prefix in pspec.node_prefixes:
                if prefix not in by_prefix:
                    raise ValueError(
                        f"partition {pspec.name!r}: unknown node group {prefix!r}"
                    )
                node_names.extend(by_prefix[prefix])
            partitions.append(
                Partition(
                    name=pspec.name,
                    node_names=node_names,
                    max_time=pspec.max_time_s,
                    is_default=pspec.is_default,
                    priority_tier=pspec.priority_tier,
                )
            )

        self.scheduler = SlurmScheduler(
            loop=self.loop,
            nodes=nodes,
            partitions=partitions,
            qos=spec.qos,
            associations=spec.associations,
            config=spec.scheduler,
            on_job_end=self._on_job_end,
            bus=self.bus,
        )

    def _on_job_end(self, job: Job) -> None:
        self.accounting.record(job)
        self.gpu_telemetry.record_job_end(job, self.clock.now())

    # -- convenience -------------------------------------------------------

    def submit(self, spec: JobSpec, held: bool = False) -> List[Job]:
        """Submit a job spec; returns the created job(s)."""
        return self.scheduler.submit(spec, held=held)

    def advance(self, seconds: float) -> None:
        """Run the simulation forward (jobs start/finish, daemons tick)."""
        self.loop.run_for(seconds)

    def now(self) -> float:
        """Current simulated time (seconds since the epoch)."""
        return self.clock.now()

    @property
    def nodes(self) -> Dict[str, Node]:
        return self.scheduler.nodes

    @property
    def partitions(self) -> Dict[str, Partition]:
        return self.scheduler.partitions

    def default_partition(self) -> Partition:
        """The default partition (first one if none is flagged)."""
        for p in self.partitions.values():
            if p.is_default:
                return p
        return next(iter(self.partitions.values()))

    def counts_by_node_state(self) -> Dict[NodeState, int]:
        """Histogram of node states across the cluster."""
        out: Dict[NodeState, int] = {}
        for node in self.nodes.values():
            out[node.state] = out.get(node.state, 0) + 1
        return out

    def total_capacity(self) -> TRES:
        """Sum of configured resources across nodes."""
        cap = TRES()
        for node in self.nodes.values():
            cap = cap + node.capacity
        return cap

    def total_allocated(self) -> TRES:
        """Sum of currently allocated resources across nodes."""
        alloc = TRES()
        for node in self.nodes.values():
            alloc = alloc + node.alloc
        return alloc


def small_test_cluster(
    name: str = "anvil",
    cpu_nodes: int = 8,
    gpu_nodes: int = 2,
    cpus_per_node: int = 64,
    mem_per_node_mb: int = 256_000,
    gpus_per_node: int = 4,
    associations: Sequence[Association] = (),
    qos: Sequence[QoS] = (),
    scheduler: Optional[SchedulerConfig] = None,
    loop: Optional[EventLoop] = None,
) -> SlurmCluster:
    """A compact cluster used across the test suite: one CPU partition
    (default) and one GPU partition, modeled on the paper's Anvil host.

    ``loop`` lets federated setups hand every member cluster an event
    loop over one shared :class:`~repro.sim.clock.SimClock` (each member
    keeps its own queue; only the timeline is shared)."""
    spec = ClusterSpec(
        name=name,
        node_groups=[
            NodeGroupSpec(
                prefix="a",
                count=cpu_nodes,
                cpus=cpus_per_node,
                memory_mb=mem_per_node_mb,
                features=["avx512", "icelake"],
            ),
            NodeGroupSpec(
                prefix="g",
                count=gpu_nodes,
                cpus=cpus_per_node,
                memory_mb=2 * mem_per_node_mb,
                gpus=gpus_per_node,
                gres_model="nvidia_a100",
                features=["avx512", "icelake", "gpu"],
            ),
        ],
        partitions=[
            PartitionSpec(
                name="cpu", node_prefixes=["a"], is_default=True, max_time_s=4 * 86400.0
            ),
            PartitionSpec(name="gpu", node_prefixes=["g"], max_time_s=2 * 86400.0),
        ],
        qos=list(qos),
        associations=list(associations),
        scheduler=scheduler or SchedulerConfig(),
    )
    return SlurmCluster(spec, loop=loop)
