"""Ready-made cluster configurations.

The paper deploys "across multiple HPC clusters at RCAC"; these presets
approximate the public shapes of those systems (node counts and sizes
from their published specs, rounded) so examples and benchmarks can run
against realistic fleets without hand-building specs.

All presets return a :class:`~repro.slurm.cluster.ClusterSpec`; pass it
to :class:`~repro.slurm.cluster.SlurmCluster` (optionally scaled down
via ``scale`` for fast tests).
"""

from __future__ import annotations

from .cluster import ClusterSpec, NodeGroupSpec, PartitionSpec
from .model import QoS


def _scaled(count: int, scale: float) -> int:
    return max(1, int(round(count * scale)))


def anvil_like(scale: float = 1.0) -> ClusterSpec:
    """Anvil-shaped: ~1000 CPU nodes (128 cores, 256 GB), 16 GPU nodes
    (4x A100), plus a large-memory pool."""
    return ClusterSpec(
        name="anvil",
        node_groups=[
            NodeGroupSpec(
                prefix="a",
                count=_scaled(1000, scale),
                cpus=128,
                memory_mb=257_000,
                features=["milan", "avx2"],
                pad=4,
            ),
            NodeGroupSpec(
                prefix="b",
                count=_scaled(32, scale),
                cpus=128,
                memory_mb=1_031_000,
                features=["milan", "avx2", "bigmem"],
                pad=3,
            ),
            NodeGroupSpec(
                prefix="g",
                count=_scaled(16, scale),
                cpus=128,
                memory_mb=515_000,
                gpus=4,
                gres_model="nvidia_a100",
                features=["milan", "avx2", "gpu"],
                pad=3,
            ),
        ],
        partitions=[
            PartitionSpec(
                name="wholenode",
                node_prefixes=["a"],
                is_default=True,
                max_time_s=4 * 86400.0,
            ),
            PartitionSpec(
                name="highmem", node_prefixes=["b"], max_time_s=2 * 86400.0
            ),
            PartitionSpec(name="gpu", node_prefixes=["g"], max_time_s=2 * 86400.0),
        ],
        qos=[
            QoS(name="standby", priority=0, preempt_mode="requeue"),
            QoS(name="normal", priority=1),
        ],
    )


def bell_like(scale: float = 1.0) -> ClusterSpec:
    """Bell-shaped community cluster: ~450 nodes of 128 cores."""
    return ClusterSpec(
        name="bell",
        node_groups=[
            NodeGroupSpec(
                prefix="bell-a",
                count=_scaled(450, scale),
                cpus=128,
                memory_mb=257_000,
                features=["rome", "avx2"],
                pad=3,
            ),
        ],
        partitions=[
            PartitionSpec(
                name="bell",
                node_prefixes=["bell-a"],
                is_default=True,
                max_time_s=14 * 86400.0,
            ),
        ],
        qos=[
            QoS(name="standby", priority=0, preempt_mode="requeue"),
            QoS(name="normal", priority=1),
        ],
    )


def teaching_cluster() -> ClusterSpec:
    """A tiny 4-node cluster for demos and documentation examples."""
    return ClusterSpec(
        name="scholar",
        node_groups=[
            NodeGroupSpec(prefix="s", count=3, cpus=32, memory_mb=128_000),
            NodeGroupSpec(
                prefix="sg",
                count=1,
                cpus=32,
                memory_mb=192_000,
                gpus=2,
                gres_model="nvidia_t4",
                features=["gpu"],
            ),
        ],
        partitions=[
            PartitionSpec(
                name="scholar", node_prefixes=["s"], is_default=True,
                max_time_s=86400.0,
            ),
            PartitionSpec(name="gpu", node_prefixes=["sg"], max_time_s=43200.0),
        ],
    )


PRESETS = {
    "anvil": anvil_like,
    "bell": bell_like,
    "scholar": lambda scale=1.0: teaching_cluster(),
}
