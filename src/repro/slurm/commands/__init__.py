"""Simulated Slurm command-line layer (the dashboard's data access path)."""

from .base import CommandResult, SlurmCommand, parse_pipe_table, pipe_join
from .sacct import Sacct, parse_sacct
from .scontrol import Scontrol, parse_scontrol_blocks
from .sinfo import Sinfo, parse_sinfo
from .squeue import Squeue, parse_squeue
from .sprio import Sprio, parse_sprio
from .sreport import Sreport, parse_sreport

__all__ = [
    "CommandResult",
    "SlurmCommand",
    "parse_pipe_table",
    "pipe_join",
    "Sacct",
    "parse_sacct",
    "Scontrol",
    "parse_scontrol_blocks",
    "Sinfo",
    "parse_sinfo",
    "Squeue",
    "parse_squeue",
    "Sreport",
    "parse_sreport",
    "Sprio",
    "parse_sprio",
]
