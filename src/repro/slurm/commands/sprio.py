"""Simulated ``sprio`` — pending-job priority factors.

Shows why the queue is ordered the way it is: per-job totals decomposed
into the multifactor components (age, QoS, fairshare).  Useful for
explaining "why isn't my job starting" beyond the reason code, and for
testing the fairshare factor observably.
"""

from __future__ import annotations

from typing import List, Optional

from .base import CommandResult, SlurmCommand, parse_pipe_table, pipe_join

HEADER = [
    "JOBID",
    "USER",
    "ACCOUNT",
    "PRIORITY",
    "AGE",
    "QOS",
    "FAIRSHARE",
]


class Sprio(SlurmCommand):
    """``sprio`` over the simulated slurmctld."""

    command = "squeue"  # sprio talks to slurmctld like squeue does

    def run(self, user: Optional[str] = None) -> CommandResult:
        """Render priority factors for pending jobs, highest first."""
        sched = self.cluster.scheduler
        now = self.cluster.clock.now()
        jobs = sched.pending_jobs()
        if user is not None:
            jobs = [j for j in jobs if j.user == user]
        jobs = sorted(
            jobs, key=lambda j: -sum(sched.priority_components(j, now).values())
        )
        lines = [pipe_join(HEADER)]
        for job in jobs:
            parts = sched.priority_components(job, now)
            lines.append(
                pipe_join(
                    [
                        job.display_id,
                        job.user,
                        job.account,
                        f"{sum(parts.values()):.0f}",
                        f"{parts['age']:.1f}",
                        f"{parts['qos']:.0f}",
                        f"{parts['fairshare']:.1f}",
                    ]
                )
            )
        return self._finish("\n".join(lines) + "\n", kind="sprio")


def parse_sprio(text: str) -> List[dict]:
    """Parse sprio output into records."""
    return parse_pipe_table(text)
