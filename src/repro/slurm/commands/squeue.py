"""Simulated ``squeue`` — the Recent Jobs widget's data source (Table 1).

Output follows ``squeue --Format`` parsable conventions: a pipe-separated
table with a header row, covering the columns the dashboard consumes.
Querying squeue hits **slurmctld**, which is exactly why the paper caches
its results aggressively (§3.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.clock import duration_hms
from repro.slurm.hostlist import compress_hostlist
from repro.slurm.model import Job, JobState

from .base import CommandResult, SlurmCommand, parse_pipe_table, pipe_join

HEADER = [
    "JOBID",
    "PARTITION",
    "NAME",
    "USER",
    "ACCOUNT",
    "STATE",
    "REASON",
    "QOS",
    "SUBMIT_TIME",
    "START_TIME",
    "EST_START",
    "END_TIME",
    "TIME",
    "TIME_LIMIT",
    "NODES",
    "CPUS",
    "TRES_PER_JOB",
    "NODELIST(REASON)",
]


class Squeue(SlurmCommand):
    """``squeue`` over the simulated slurmctld."""

    command = "squeue"

    def run(
        self,
        user: Optional[str] = None,
        users: Optional[Sequence[str]] = None,
        partition: Optional[str] = None,
        states: Optional[Sequence[JobState]] = None,
        include_finished: bool = True,
    ) -> CommandResult:
        """Render the queue.  By default shows pending + running + recently
        finished jobs, like real squeue does within MinJobAge."""
        sched = self.cluster.scheduler
        clock = self.cluster.clock
        now = clock.now()
        jobs = sched.visible_jobs()
        if not include_finished:
            jobs = [j for j in jobs if j.state.is_active]
        if user is not None:
            jobs = [j for j in jobs if j.user == user]
        if users is not None:
            allowed = set(users)
            jobs = [j for j in jobs if j.user in allowed]
        if partition is not None:
            jobs = [j for j in jobs if j.partition == partition]
        if states is not None:
            wanted = set(states)
            jobs = [j for j in jobs if j.state in wanted]
        jobs = sorted(jobs, key=lambda j: (-j.submit_time, -j.job_id))

        lines = [pipe_join(HEADER)]
        for job in jobs:
            lines.append(pipe_join(self._render_row(job, now)))
        return self._finish("\n".join(lines) + "\n", kind="squeue")

    def _render_row(self, job: Job, now: float) -> List[str]:
        clock = self.cluster.clock
        if job.state is JobState.PENDING:
            nodelist = f"({job.reason})"
        elif job.nodes:
            nodelist = compress_hostlist(job.nodes)
        else:
            nodelist = ""
        est = None
        if job.state is JobState.PENDING:
            est = self.cluster.scheduler.estimate_start(job.job_id)
        return [
            job.display_id,
            job.partition,
            job.name,
            job.user,
            job.account,
            job.state.value,
            job.reason,
            job.qos,
            clock.isoformat(job.submit_time),
            clock.isoformat(job.start_time) if job.start_time is not None else "N/A",
            clock.isoformat(est) if est is not None else "N/A",
            clock.isoformat(job.end_time) if job.end_time is not None else "N/A",
            duration_hms(job.elapsed(now)),
            duration_hms(job.time_limit),
            str(job.req.nodes),
            str(job.req.cpus),
            job.req.format(),
            nodelist,
        ]


def parse_squeue(text: str) -> List[dict]:
    """Parse squeue output back into records, the way the dashboard's
    backend route does after shelling out."""
    return parse_pipe_table(text)
