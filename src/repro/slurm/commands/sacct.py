"""Simulated ``sacct`` — data source for My Jobs and Job Performance
Metrics (Table 1).

Unlike squeue, sacct queries **slurmdbd**, so heavy use does not degrade
scheduling (§3.2) — the daemon bus routes it accordingly.  Output follows
``sacct --parsable2`` conventions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.clock import duration_hms
from repro.slurm.hostlist import compress_hostlist
from repro.slurm.model import Job, JobState, format_exit_code, format_memory

from .base import CommandResult, SlurmCommand, parse_pipe_table, pipe_join

HEADER = [
    "JobID",
    "JobIDRaw",
    "JobName",
    "User",
    "Account",
    "Partition",
    "QOS",
    "State",
    "Reason",
    "Submit",
    "Eligible",
    "Start",
    "End",
    "Elapsed",
    "Timelimit",
    "NCPUS",
    "NNodes",
    "ReqMem",
    "ReqTRES",
    "TotalCPU",
    "MaxRSS",
    "ExitCode",
    "NodeList",
]


class Sacct(SlurmCommand):
    """``sacct`` over the simulated slurmdbd, including still-live jobs
    (real sacct also shows running/pending jobs via the dbd)."""

    command = "sacct"

    def run(
        self,
        users: Optional[Sequence[str]] = None,
        accounts: Optional[Sequence[str]] = None,
        states: Optional[Sequence[JobState]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
        partition: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> CommandResult:
        """Render accounting rows for the given filters (sacct --parsable2)."""
        db = self.cluster.accounting
        archived = db.query(
            users=users,
            accounts=accounts,
            states=states,
            start=start,
            end=end,
            partition=partition,
        )
        # live jobs (pending/running) come from ctld state but are reported
        # through the dbd, mirroring production data flow
        seen = {j.job_id for j in archived}
        live: List[Job] = []
        for job in self.cluster.scheduler.visible_jobs():
            if job.job_id in seen or job.state.is_terminal:
                continue
            if users is not None and accounts is not None:
                if job.user not in users and job.account not in accounts:
                    continue
            elif users is not None and job.user not in users:
                continue
            elif accounts is not None and job.account not in accounts:
                continue
            if states is not None and job.state not in states:
                continue
            if partition is not None and job.partition != partition:
                continue
            if end is not None and job.submit_time > end:
                continue
            live.append(job)
        jobs = sorted(archived + live, key=lambda j: (j.submit_time, j.job_id))
        if limit is not None:
            jobs = jobs[-limit:]

        now = self.cluster.clock.now()
        lines = [pipe_join(HEADER)]
        for job in jobs:
            lines.append(pipe_join(self._render_row(job, now)))
        return self._finish("\n".join(lines) + "\n", kind="sacct")

    def _render_row(self, job: Job, now: float) -> List[str]:
        clock = self.cluster.clock
        state = job.state.value
        if job.state is JobState.CANCELLED:
            state = f"CANCELLED by {job.user}"
        return [
            job.display_id,
            str(job.job_id),
            job.name,
            job.user,
            job.account,
            job.partition,
            job.qos,
            state,
            job.reason,
            clock.isoformat(job.submit_time),
            clock.isoformat(job.eligible_time),
            clock.isoformat(job.start_time) if job.start_time is not None else "None",
            clock.isoformat(job.end_time) if job.end_time is not None else "Unknown",
            duration_hms(job.elapsed(now)),
            duration_hms(job.time_limit),
            str(job.req.cpus),
            str(job.req.nodes),
            format_memory(job.req.mem_mb),
            job.req.format(),
            duration_hms(job.total_cpu_seconds),
            f"{job.max_rss_mb}M" if job.max_rss_mb else "",
            format_exit_code(job.exit_code),
            compress_hostlist(job.nodes) if job.nodes else "None assigned",
        ]


def parse_sacct(text: str) -> List[dict]:
    """Parse sacct --parsable2 output into records."""
    rows = parse_pipe_table(text)
    for row in rows:
        # normalize the CANCELLED-by-user decoration back to a base state
        row["base_state"] = row["State"].split()[0]
    return rows
