"""Simulated ``sinfo`` — the System Status widget's data source (Table 1).

Each partition gets one summary row with Slurm's A/I/O/T (allocated /
idle / other / total) convention for both nodes and CPUs, plus GPU
aggregate columns the dashboard uses to draw its utilization bars (§3.3).
"""

from __future__ import annotations

from typing import List

from repro.sim.clock import duration_hms
from repro.slurm.hostlist import compress_hostlist
from repro.slurm.model import NodeState, Partition

from .base import CommandResult, SlurmCommand, parse_pipe_table, pipe_join

HEADER = [
    "PARTITION",
    "AVAIL",
    "TIMELIMIT",
    "NODES(A/I/O/T)",
    "CPUS(A/I/O/T)",
    "GPUS(A/T)",
    "STATE",
    "NODELIST",
]


NODE_HEADER = [
    "NODELIST",
    "NODES",
    "PARTITION",
    "STATE",
    "CPUS",
    "MEMORY",
    "GRES",
]


class Sinfo(SlurmCommand):
    """``sinfo`` over the simulated slurmctld."""

    command = "sinfo"

    def run_node_oriented(self, partition: str | None = None) -> CommandResult:
        """``sinfo --Node``: one row per (node, partition) pair."""
        parts = self.cluster.partitions
        names = [partition] if partition is not None else list(parts)
        lines = [pipe_join(NODE_HEADER)]
        for pname in names:
            if pname not in parts:
                raise KeyError(f"unknown partition {pname!r}")
            for nn in parts[pname].node_names:
                node = self.cluster.nodes[nn]
                gres = (
                    f"gpu:{node.gres_model}:{node.gpus}" if node.gpus else "(null)"
                )
                lines.append(
                    pipe_join(
                        [
                            node.name,
                            "1",
                            pname,
                            node.state.value.lower(),
                            str(node.cpus),
                            str(node.real_memory_mb),
                            gres,
                        ]
                    )
                )
        return self._finish("\n".join(lines) + "\n", kind="sinfo")

    def run(self, partition: str | None = None) -> CommandResult:
        """Render one summary row per partition."""
        parts = self.cluster.partitions
        names = [partition] if partition is not None else list(parts)
        lines = [pipe_join(HEADER)]
        for name in names:
            if name not in parts:
                raise KeyError(f"unknown partition {name!r}")
            lines.append(pipe_join(self._render_row(parts[name])))
        return self._finish("\n".join(lines) + "\n", kind="sinfo")

    def _render_row(self, part: Partition) -> List[str]:
        nodes = [self.cluster.nodes[n] for n in part.node_names]
        alloc_nodes = sum(
            1 for n in nodes if n.state in (NodeState.ALLOCATED, NodeState.MIXED)
        )
        idle_nodes = sum(1 for n in nodes if n.state is NodeState.IDLE)
        other_nodes = len(nodes) - alloc_nodes - idle_nodes
        alloc_cpus = sum(n.alloc.cpus for n in nodes)
        total_cpus = sum(n.cpus for n in nodes)
        other_cpus = sum(n.cpus for n in nodes if not n.state.is_schedulable)
        idle_cpus = total_cpus - alloc_cpus - other_cpus
        alloc_gpus = sum(n.alloc.gpus for n in nodes)
        total_gpus = sum(n.gpus for n in nodes)
        # dominant state label, like sinfo's STATE column for grouped rows
        state = _dominant_state(nodes)
        return [
            f"{part.name}{'*' if part.is_default else ''}",
            "up" if part.state == "UP" else "down",
            duration_hms(part.max_time),
            f"{alloc_nodes}/{idle_nodes}/{other_nodes}/{len(nodes)}",
            f"{alloc_cpus}/{max(0, idle_cpus)}/{other_cpus}/{total_cpus}",
            f"{alloc_gpus}/{total_gpus}",
            state,
            compress_hostlist(n.name for n in nodes),
        ]


def _dominant_state(nodes) -> str:
    counts: dict[str, int] = {}
    for n in nodes:
        label = n.state.value.lower()
        counts[label] = counts.get(label, 0) + 1
    if not counts:
        return "n/a"
    return max(counts.items(), key=lambda kv: kv[1])[0]


def parse_sinfo(text: str) -> List[dict]:
    """Parse sinfo output, splitting the A/I/O/T composites into ints."""
    rows = parse_pipe_table(text)
    for row in rows:
        a, i, o, t = (int(x) for x in row["NODES(A/I/O/T)"].split("/"))
        row["nodes_alloc"], row["nodes_idle"] = a, i
        row["nodes_other"], row["nodes_total"] = o, t
        a, i, o, t = (int(x) for x in row["CPUS(A/I/O/T)"].split("/"))
        row["cpus_alloc"], row["cpus_idle"] = a, i
        row["cpus_other"], row["cpus_total"] = o, t
        ga, gt = (int(x) for x in row["GPUS(A/T)"].split("/"))
        row["gpus_alloc"], row["gpus_total"] = ga, gt
        row["partition"] = row["PARTITION"].rstrip("*")
        row["is_default"] = row["PARTITION"].endswith("*")
    return rows
