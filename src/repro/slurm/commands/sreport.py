"""Simulated ``sreport`` — slurmdbd's reporting tool.

Two reports the dashboard's admin page and center staff actually use:

* ``cluster utilization``: allocated / idle / down CPU-time over a
  window, as percentages of cluster capacity;
* ``user top``: the heaviest users by CPU-hours over a window.

Like real sreport, queries hit **slurmdbd**, not the scheduler.
"""

from __future__ import annotations

from collections import defaultdict
from typing import List, Optional

from repro.slurm.model import JobState

from .base import CommandResult, SlurmCommand, parse_pipe_table, pipe_join

UTILIZATION_HEADER = [
    "Cluster",
    "Allocated",
    "Idle",
    "Down",
    "Reported",
    "AllocatedPct",
]

TOP_HEADER = ["Cluster", "Login", "Account", "CPUHours", "JobCount"]


class Sreport(SlurmCommand):
    """``sreport`` over the simulated slurmdbd."""

    command = "sreport"

    def cluster_utilization(
        self, start: float, end: Optional[float] = None
    ) -> CommandResult:
        """CPU-second accounting over [start, end] (end defaults to now).

        ``Allocated`` sums each job's in-window CPU-seconds; ``Down``
        charges currently-down/drained nodes for the whole window (a
        simplification of Slurm's event-table bookkeeping, adequate for
        trend reporting); ``Idle`` is the remainder of capacity.
        """
        now = self.cluster.clock.now()
        if end is None:
            end = now
        if end <= start:
            raise ValueError("report window must have positive duration")
        window = end - start

        total_cpus = sum(n.cpus for n in self.cluster.nodes.values())
        reported = total_cpus * window

        allocated = 0.0
        jobs = self.cluster.accounting.query(start=start, end=end)
        live = [
            j
            for j in self.cluster.scheduler.visible_jobs()
            if j.state is JobState.RUNNING
        ]
        seen = {j.job_id for j in jobs}
        for job in jobs + [j for j in live if j.job_id not in seen]:
            if job.start_time is None:
                continue
            s = max(start, job.start_time)
            e = min(end, job.end_time if job.end_time is not None else end)
            if e > s:
                allocated += (e - s) * job.req.cpus

        down = sum(
            n.cpus * window
            for n in self.cluster.nodes.values()
            if not n.state.is_schedulable
        )
        idle = max(0.0, reported - allocated - down)
        row = [
            self.cluster.name,
            f"{allocated:.0f}",
            f"{idle:.0f}",
            f"{down:.0f}",
            f"{reported:.0f}",
            f"{100 * allocated / reported:.2f}%" if reported else "0.00%",
        ]
        text = pipe_join(UTILIZATION_HEADER) + "\n" + pipe_join(row) + "\n"
        return self._finish(text, kind="sreport_utilization")

    def user_top(
        self,
        start: float,
        end: Optional[float] = None,
        top: int = 10,
    ) -> CommandResult:
        """Heaviest users by CPU-hours over the window (``sreport user top``)."""
        now = self.cluster.clock.now()
        if end is None:
            end = now
        usage: dict[tuple[str, str], dict] = defaultdict(
            lambda: {"cpu_hours": 0.0, "jobs": 0}
        )
        for job in self.cluster.accounting.query(start=start, end=end):
            if job.start_time is None:
                continue
            s = max(start, job.start_time)
            e = min(end, job.end_time if job.end_time is not None else end)
            if e <= s:
                continue
            key = (job.user, job.account)
            usage[key]["cpu_hours"] += (e - s) * job.req.cpus / 3600.0
            usage[key]["jobs"] += 1
        ranked = sorted(usage.items(), key=lambda kv: -kv[1]["cpu_hours"])[:top]
        lines = [pipe_join(TOP_HEADER)]
        for (user, account), stats in ranked:
            lines.append(
                pipe_join(
                    [
                        self.cluster.name,
                        user,
                        account,
                        f"{stats['cpu_hours']:.2f}",
                        str(stats["jobs"]),
                    ]
                )
            )
        return self._finish("\n".join(lines) + "\n", kind="sreport_top")


def parse_sreport(text: str) -> List[dict]:
    """Parse either sreport table back into records."""
    return parse_pipe_table(text)
