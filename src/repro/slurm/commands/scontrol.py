"""Simulated ``scontrol show job|node|partition|assoc`` — data source for
the Job Overview, Node Overview, Cluster Status pages and the Accounts
widget (Table 1).

Output uses scontrol's ``Key=Value`` block format, and
:func:`parse_scontrol_blocks` parses it back — the dashboard backend
shells out and parses exactly like this in production.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.sim.clock import duration_hms
from repro.slurm.hostlist import compress_hostlist
from repro.slurm.model import Job, Node, Partition, format_memory

from .base import CommandResult, SlurmCommand


class Scontrol(SlurmCommand):
    """``scontrol`` over the simulated slurmctld."""

    command = "scontrol"

    # -- show job -----------------------------------------------------------

    def show_job(self, job_id: int) -> CommandResult:
        """Render one job's Key=Value block."""
        job = self.cluster.scheduler.job(job_id)
        return self._finish(self._render_job(job), kind="scontrol_show_job")

    def show_jobs(self) -> CommandResult:
        """Render blocks for every job ctld still remembers."""
        blocks = [
            self._render_job(j) for j in self.cluster.scheduler.visible_jobs()
        ]
        return self._finish("\n".join(blocks), kind="scontrol_show_job")

    def _render_job(self, job: Job) -> str:
        clock = self.cluster.clock
        now = clock.now()
        lines = [
            f"JobId={job.job_id} JobName={job.name}",
            f"   UserId={job.user}(0) GroupId={job.account}(0) MCS_label=N/A",
            f"   Priority={int(job.priority)} Nice=0 Account={job.account} QOS={job.qos}",
            f"   JobState={job.state.value} Reason={job.reason} Dependency=(null)",
            f"   Requeue=0 Restarts=0 BatchFlag=1 Reboot=0 ExitCode={job.exit_code}:0",
            f"   RunTime={duration_hms(job.elapsed(now))} TimeLimit={duration_hms(job.time_limit)} TimeMin=N/A",
            f"   SubmitTime={clock.isoformat(job.submit_time)} EligibleTime={clock.isoformat(job.eligible_time)}",
            f"   StartTime={clock.isoformat(job.start_time) if job.start_time is not None else 'Unknown'} "
            f"EndTime={clock.isoformat(job.end_time) if job.end_time is not None else 'Unknown'} Deadline=N/A",
            f"   Partition={job.partition} AllocNode:Sid=login01:12345",
            f"   ReqNodeList=(null) ExcNodeList=(null)",
            f"   NodeList={compress_hostlist(job.nodes) if job.nodes else '(null)'}",
            f"   NumNodes={job.req.nodes} NumCPUs={job.req.cpus} NumTasks={job.req.cpus} CPUs/Task=1",
            f"   TRES={job.req.format()}",
            f"   MinMemoryNode={format_memory(max(1, job.req.mem_mb // max(1, job.req.nodes)))} MinTmpDiskNode=0",
            f"   Features={','.join(job.spec.features) if job.spec.features else '(null)'} DelayBoot=00:00:00",
            f"   WorkDir={job.spec.work_dir or '/home/' + job.user}",
            f"   StdErr={job.spec.std_err or ''}",
            f"   StdOut={job.spec.std_out or ''}",
        ]
        if job.is_array_task:
            lines.insert(
                1,
                f"   ArrayJobId={job.array_job_id} ArrayTaskId={job.array_task_id}",
            )
        return "\n".join(lines) + "\n"

    # -- show node -----------------------------------------------------------

    def show_node(self, name: str) -> CommandResult:
        """Render one node's Key=Value block."""
        node = self.cluster.scheduler.node(name)
        self.cluster.scheduler.refresh_node_loads()
        return self._finish(self._render_node(node), kind="scontrol_show_node")

    def show_nodes(self) -> CommandResult:
        """Render blocks for every node."""
        self.cluster.scheduler.refresh_node_loads()
        blocks = [self._render_node(n) for n in self.cluster.nodes.values()]
        return self._finish("\n".join(blocks), kind="scontrol_show_node")

    def _render_node(self, node: Node) -> str:
        clock = self.cluster.clock
        gres = (
            f"gpu:{node.gres_model}:{node.gpus}" if node.gpus else "(null)"
        )
        gres_used = (
            f"gpu:{node.gres_model}:{node.alloc.gpus}" if node.gpus else "(null)"
        )
        features = ",".join(node.features) if node.features else "(null)"
        lines = [
            f"NodeName={node.name} Arch={node.arch} CoresPerSocket={max(1, node.cpus // 2)}",
            f"   CPUAlloc={node.alloc.cpus} CPUTot={node.cpus} CPULoad={node.cpu_load:.2f}",
            f"   AvailableFeatures={features}",
            f"   ActiveFeatures={features}",
            f"   Gres={gres}",
            f"   GresUsed={gres_used}",
            f"   NodeAddr={node.name} NodeHostName={node.name} Version=23.11.4",
            f"   OS={node.os}",
            f"   RealMemory={node.real_memory_mb} AllocMem={node.alloc.mem_mb} "
            f"FreeMem={node.real_memory_mb - node.alloc.mem_mb} Sockets=2 Boards=1",
            f"   State={node.state.value} ThreadsPerCore=1 TmpDisk=0 Weight=1",
            f"   Partitions={','.join(node.partitions)}",
            f"   BootTime={clock.isoformat(node.boot_time)} SlurmdStartTime={clock.isoformat(node.boot_time)}",
            f"   LastBusyTime={clock.isoformat(node.last_busy)}",
        ]
        if node.state_reason:
            lines.append(f"   Reason={node.state_reason}")
        return "\n".join(lines) + "\n"

    # -- show partition ---------------------------------------------------------

    def show_partition(self, name: Optional[str] = None) -> CommandResult:
        """Render partition blocks (one or all)."""
        parts = self.cluster.partitions
        names = [name] if name is not None else list(parts)
        blocks = []
        for n in names:
            if n not in parts:
                raise KeyError(f"unknown partition {n!r}")
            blocks.append(self._render_partition(parts[n]))
        return self._finish("\n".join(blocks), kind="scontrol_show_partition")

    def _render_partition(self, part: Partition) -> str:
        nodes = [self.cluster.nodes[n] for n in part.node_names]
        total_cpus = sum(n.cpus for n in nodes)
        lines = [
            f"PartitionName={part.name}",
            f"   AllowQos={','.join(part.allowed_qos)}",
            f"   Default={'YES' if part.is_default else 'NO'} State={part.state}",
            f"   MaxTime={duration_hms(part.max_time)} PriorityTier={part.priority_tier}",
            f"   Nodes={compress_hostlist(n.name for n in nodes)}",
            f"   TotalCPUs={total_cpus} TotalNodes={len(nodes)}",
        ]
        return "\n".join(lines) + "\n"

    # -- show reservation -----------------------------------------------------

    def show_reservation(self, name: Optional[str] = None) -> CommandResult:
        """Render reservation blocks (one or all)."""
        res_map = self.cluster.scheduler.reservations
        names = [name] if name is not None else sorted(res_map)
        blocks = []
        for n in names:
            if n not in res_map:
                raise KeyError(f"unknown reservation {n!r}")
            blocks.append(self._render_reservation(res_map[n]))
        if not blocks:
            return self._finish(
                "No reservations in the system\n", kind="scontrol_show_resv"
            )
        return self._finish("\n".join(blocks), kind="scontrol_show_resv")

    def _render_reservation(self, res) -> str:
        clock = self.cluster.clock
        nodes = [self.cluster.nodes[n] for n in res.node_names]
        lines = [
            f"ReservationName={res.name} StartTime={clock.isoformat(res.start)} "
            f"EndTime={clock.isoformat(res.end)} Duration={duration_hms(res.end - res.start)}",
            f"   Nodes={compress_hostlist(n.name for n in nodes)} "
            f"NodeCnt={len(nodes)} CoreCnt={sum(n.cpus for n in nodes)}",
            f"   Flags={res.flags} State="
            f"{'ACTIVE' if res.is_active(clock.now()) else 'INACTIVE'}",
        ]
        return "\n".join(lines) + "\n"

    # -- show assoc ---------------------------------------------------------

    def show_assoc(self, account: Optional[str] = None) -> CommandResult:
        """Association records with group limits and live usage — the
        Accounts widget's data source (``scontrol show assoc``, Table 1)."""
        sched = self.cluster.scheduler
        accounts = (
            [account] if account is not None else sorted(sched.associations)
        )
        blocks = []
        for name in accounts:
            assoc = sched.associations.get(name)
            if assoc is None:
                raise KeyError(f"unknown association for account {name!r}")
            usage = sched.association_usage(name)
            grp = assoc.grp_tres.format() if assoc.grp_tres else ""
            gpu_limit = (
                f"{assoc.grp_gpu_hours_limit:.0f}"
                if assoc.grp_gpu_hours_limit is not None
                else "N"
            )
            blocks.append(
                "\n".join(
                    [
                        f"ClusterName={self.cluster.name} Account={name} UserName= Partition= Priority=0",
                        f"   GrpTRES={grp}",
                        f"   GrpTRESAlloc={usage.alloc.format()}",
                        f"   GrpJobs={usage.running_jobs}",
                        f"   GrpGPUHoursLimit={gpu_limit} GPUHoursUsed={usage.gpu_hours_used:.2f}",
                        f"   CPUHoursUsed={usage.cpu_hours_used:.2f} Fairshare={assoc.fairshare}",
                    ]
                )
                + "\n"
            )
        return self._finish("\n".join(blocks), kind="scontrol_show_assoc")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_KV_RE = re.compile(r"(\S+?)=((?:[^\s=]|=(?=\S*\s))*?)(?=\s+\S+=|\s*$)")


def parse_scontrol_blocks(text: str) -> List[Dict[str, str]]:
    """Parse scontrol's Key=Value block output into dicts, one per block.

    Blocks are separated by lines that start at column 0; continuation
    lines are indented, exactly as scontrol prints them.  Values may
    contain ``:`` and ``/`` (paths, TRES strings); keys never contain
    whitespace.
    """
    blocks: List[Dict[str, str]] = []
    current: Dict[str, str] = {}
    for raw in text.splitlines():
        if not raw.strip():
            continue
        if not raw.startswith(" ") and current:
            blocks.append(current)
            current = {}
        _parse_kv_line(raw.strip(), current)
    if current:
        blocks.append(current)
    return blocks


def _parse_kv_line(line: str, out: Dict[str, str]) -> None:
    """Parse one ``A=1 B=two words C=3`` line.

    scontrol packs several pairs per line; values can contain spaces only
    when they are the last pair on the line (e.g. ``Reason=node down``),
    so we split greedily on `` key=`` boundaries.
    """
    # Find all "key=" starts, then slice values between them.
    starts = [(m.start(), m.group(1)) for m in re.finditer(r"(?:^|\s)([A-Za-z_:/][\w:/.-]*)=", line)]
    for i, (pos, key) in enumerate(starts):
        val_start = pos + (0 if pos == 0 else 1) + len(key) + 1
        val_end = starts[i + 1][0] if i + 1 < len(starts) else len(line)
        out[key] = line[val_start:val_end].strip()
