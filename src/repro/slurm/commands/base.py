"""Shared plumbing for the simulated Slurm command-line tools.

Each command object wraps the cluster, renders text output in the same
shape the real tool produces, and records an RPC against the appropriate
daemon (squeue/sinfo/scontrol -> slurmctld, sacct -> slurmdbd) so the
load model can price the traffic the dashboard generates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.faults.errors import DaemonError

if TYPE_CHECKING:  # pragma: no cover
    from repro.slurm.cluster import SlurmCluster


@dataclass(frozen=True)
class CommandResult:
    """Outcome of one simulated command invocation.

    Attributes
    ----------
    stdout:
        The rendered text output (what a shell pipeline would see).
    latency_s:
        Simulated daemon round-trip latency, from the load model.
    command:
        The binary name ("squeue", "sacct", ...), for instrumentation.
    """

    stdout: str
    latency_s: float
    command: str

    @property
    def lines(self) -> List[str]:
        return [ln for ln in self.stdout.splitlines() if ln.strip()]


class SlurmCommand:
    """Base class: holds the cluster and meters daemon traffic."""

    #: binary name; subclasses override
    command = "slurm"

    def __init__(self, cluster: "SlurmCluster"):
        self.cluster = cluster

    def _count_run(self, outcome: str) -> None:
        registry = self.cluster.daemons.metrics
        if registry is None:
            return
        registry.counter(
            "repro_command_runs_total",
            "Simulated Slurm command invocations by binary and outcome.",
            ("command", "outcome"),
        ).inc(command=self.command, outcome=outcome)

    def _finish(self, stdout: str, kind: str = "") -> CommandResult:
        try:
            latency = self.cluster.daemons.record(self.command, kind or self.command)
        except DaemonError as exc:
            # the real tool prints e.g. "slurm_load_jobs error: Unable to
            # contact slurm controller" — keep the failing binary visible
            exc.command = self.command
            self._count_run("error")
            raise
        self._count_run("ok")
        return CommandResult(stdout=stdout, latency_s=latency, command=self.command)


def sanitize_field(value: str) -> str:
    """Make a value safe for one pipe-table cell.

    User-controlled strings (job names, reasons) may contain the ``|``
    separator or line breaks (including Unicode ones like NEL/LS/PS that
    ``str.splitlines`` honours); the command layer substitutes
    lookalikes so parsable output stays parsable.
    """
    value = value.replace("|", "/")
    if any(ch.isspace() and ch not in " \t" for ch in value):
        value = "".join(
            " " if (ch.isspace() and ch not in " \t") else ch for ch in value
        )
    return value


def pipe_join(fields: List[str]) -> str:
    """Join fields --parsable2 style (pipe separated, no trailing pipe)."""
    return "|".join(sanitize_field(f) for f in fields)


def parse_pipe_table(text: str) -> List[dict]:
    """Parse pipe-separated output whose first line is the header."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        return []
    header = lines[0].split("|")
    rows = []
    for ln in lines[1:]:
        values = ln.split("|")
        if len(values) != len(header):
            raise ValueError(
                f"malformed row (expected {len(header)} fields, got {len(values)}): {ln!r}"
            )
        rows.append(dict(zip(header, values)))
    return rows
