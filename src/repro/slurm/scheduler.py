"""slurmctld simulator: job queue, priority, FIFO + conservative backfill.

The scheduler is intentionally a faithful-but-compact model of the parts
of slurmctld the dashboard observes:

* jobs move PENDING -> RUNNING -> {COMPLETED, FAILED, TIMEOUT, CANCELLED,
  OUT_OF_MEMORY, NODE_FAIL} with authentic reason codes while pending;
* association **GrpTRES** limits produce ``AssocGrpCpuLimit`` /
  ``AssocGrpGRES`` — the reasons the paper's My Jobs table explains to
  users (§4.1);
* QoS per-user caps produce ``QOSMaxJobsPerUserLimit`` and
  ``QOSMaxTresPerUser``;
* node selection is best-fit over schedulable nodes, with feature
  constraints, producing MIXED/ALLOCATED node states the Cluster Status
  grid colors (§6);
* a conservative backfill pass lets small jobs jump the queue when they
  cannot delay the highest-priority blocked job.

Completed jobs stay visible to ``squeue``/``scontrol`` for ``min_job_age``
seconds (like Slurm's MinJobAge) and are archived forever in
:class:`~repro.slurm.accounting.AccountingDatabase`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.bus import EventBus
from repro.sim.events import EventLoop

from . import reasons as R
from .model import (
    Association,
    AssociationUsage,
    Job,
    JobSpec,
    JobState,
    Node,
    Partition,
    QoS,
    Reservation,
    TRES,
)


@dataclass
class SchedulerConfig:
    """Tunables mirroring common slurm.conf knobs."""

    sched_interval: float = 30.0  # periodic schedule pass
    min_job_age: float = 300.0  # keep finished jobs in ctld memory this long
    backfill: bool = True
    #: how deep past the first blocked job the backfill scan looks
    #: (slurm.conf bf_max_job_test)
    backfill_depth: int = 100
    age_weight: float = 1.0 / 60.0  # priority points per minute of queue age
    qos_weight: float = 1000.0
    #: multifactor fairshare: accounts that consumed a larger share of the
    #: cluster's recent CPU-hours get up to this many points *less*
    fairshare_weight: float = 200.0
    base_priority: float = 1000.0


@dataclass
class _RunInfo:
    """Per running job: what was carved out of each node."""

    per_node: TRES
    utilization: float
    finish_handle: object = None
    #: runtime still owed when the job resumes (set while SUSPENDED)
    remaining_runtime: Optional[float] = None
    final_state: Optional[JobState] = None
    final_exit_code: int = 0


class SlurmScheduler:
    """The cluster's central management daemon (slurmctld)."""

    def __init__(
        self,
        loop: EventLoop,
        nodes: Sequence[Node],
        partitions: Sequence[Partition],
        qos: Sequence[QoS] = (),
        associations: Sequence[Association] = (),
        config: Optional[SchedulerConfig] = None,
        on_job_end: Optional[Callable[[Job], None]] = None,
        bus: Optional[EventBus] = None,
    ):
        self.loop = loop
        self.clock = loop.clock
        #: optional state-change bus; None keeps the scheduler standalone
        self.bus = bus
        self.config = config or SchedulerConfig()
        self.nodes: Dict[str, Node] = {}
        for n in nodes:
            if n.name in self.nodes:
                raise ValueError(f"duplicate node {n.name!r}")
            self.nodes[n.name] = n
        self.partitions: Dict[str, Partition] = {}
        for p in partitions:
            if p.name in self.partitions:
                raise ValueError(f"duplicate partition {p.name!r}")
            for nn in p.node_names:
                if nn not in self.nodes:
                    raise ValueError(f"partition {p.name!r}: unknown node {nn!r}")
                node = self.nodes[nn]
                if p.name not in node.partitions:
                    node.partitions.append(p.name)
            self.partitions[p.name] = p
        self.qos: Dict[str, QoS] = {q.name: q for q in qos}
        self.qos.setdefault("normal", QoS(name="normal", priority=0))
        self.associations: Dict[str, Association] = {}
        for assoc in associations:
            if assoc.user:
                continue  # only account-level associations carry group limits
            self.associations[assoc.account] = assoc
        self._usage: Dict[str, AssociationUsage] = {}

        self.jobs: Dict[int, Job] = {}  # everything ctld still remembers
        self._pending: List[int] = []
        self._running: Dict[int, _RunInfo] = {}
        self._held: set[int] = set()
        self._in_pass = False
        self._pass_requested = False
        #: final state of every job ever seen, for dependency resolution
        #: after the job itself is purged from ctld memory
        self._outcomes: Dict[int, JobState] = {}
        self._next_job_id = 1000
        self._on_job_end = on_job_end
        self.reservations: Dict[str, Reservation] = {}
        self._purge_queue: List[tuple[float, int]] = []

        # periodic schedule pass, like slurmctld's sched cycle
        loop.schedule_every(self.config.sched_interval, self.schedule_pass, "sched")

        # instrumentation the daemon-load model reads
        self.stats = {
            "submitted": 0,
            "started": 0,
            "completed": 0,
            "cancelled": 0,
            "backfilled": 0,
            "schedule_passes": 0,
        }

    # ------------------------------------------------------------------
    # submission & lifecycle
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec, held: bool = False) -> List[Job]:
        """Submit a job (or a whole array).  Returns the created job records.

        Raises :class:`ValueError` for requests no partition could ever
        satisfy is *not* Slurm behaviour — Slurm queues them with a
        blocking reason — so invalid jobs are queued with their permanent
        reason instead.
        """
        if spec.partition not in self.partitions:
            raise ValueError(f"unknown partition {spec.partition!r}")
        if spec.qos not in self.qos:
            raise ValueError(f"unknown QOS {spec.qos!r}")
        for dep in spec.depends_on:
            if dep not in self.jobs and dep not in self._outcomes:
                raise ValueError(f"dependency on unknown job {dep}")
        now = self.clock.now()
        created: List[Job] = []
        count = max(1, spec.array_size)
        array_job_id = self._next_job_id if spec.array_size else None
        for idx in range(count):
            job = Job(
                job_id=self._next_job_id,
                spec=spec,
                submit_time=now,
                eligible_time=now,
                array_job_id=array_job_id,
                array_task_id=idx if spec.array_size else None,
            )
            self._next_job_id += 1
            self.jobs[job.job_id] = job
            if held:
                self._held.add(job.job_id)
                job.reason = R.JOB_HELD_USER
            self._pending.append(job.job_id)
            created.append(job)
            self.stats["submitted"] += 1
            if self.bus is not None:
                self.bus.publish(
                    "job_submitted",
                    job_id=job.job_id,
                    user=spec.user,
                    account=spec.account,
                )
        self.schedule_pass()
        return created

    def cancel(self, job_id: int) -> Job:
        """Cancel a pending or running job."""
        job = self._get(job_id)
        now = self.clock.now()
        if job.state is JobState.PENDING:
            self._pending.remove(job_id)
            self._held.discard(job_id)
            job.state = JobState.CANCELLED
            job.end_time = now
            job.reason = R.NONE
            self._retire(job)
        elif job.state in (JobState.RUNNING, JobState.SUSPENDED):
            info = self._running[job_id]
            if info.finish_handle is not None:
                info.finish_handle.cancel()
            self._end_job(job, JobState.CANCELLED, exit_code=0)
        else:
            raise ValueError(f"job {job_id} already finished ({job.state.value})")
        self.stats["cancelled"] += 1
        return job

    def hold(self, job_id: int) -> Job:
        """Hold a pending job (it will not be scheduled)."""
        job = self._get(job_id)
        if job.state is not JobState.PENDING:
            raise ValueError(f"can only hold pending jobs; {job_id} is {job.state.value}")
        self._held.add(job_id)
        job.reason = R.JOB_HELD_USER
        return job

    def release(self, job_id: int) -> Job:
        """Release a held job back into the queue."""
        job = self._get(job_id)
        if job_id not in self._held:
            raise ValueError(f"job {job_id} is not held")
        self._held.discard(job_id)
        job.reason = R.NONE
        job.eligible_time = self.clock.now()
        self.schedule_pass()
        return job

    def suspend(self, job_id: int) -> Job:
        """Suspend a running job (``scontrol suspend``).

        The job keeps its full node allocation (gang-scheduling style —
        a simplification: real Slurm releases CPUs but pins memory) and
        its remaining runtime is owed back on resume.  Suspended wall
        time counts toward elapsed, as sacct reports it.
        """
        job = self._get(job_id)
        if job.state is not JobState.RUNNING:
            raise ValueError(
                f"can only suspend running jobs; {job_id} is {job.state.value}"
            )
        info = self._running[job_id]
        now = self.clock.now()
        end_at = info.finish_handle.time if info.finish_handle else now
        info.finish_handle.cancel()
        info.finish_handle = None
        info.remaining_runtime = max(0.0, end_at - now)
        job.state = JobState.SUSPENDED
        return job

    def resume_job(self, job_id: int) -> Job:
        """Resume a suspended job (``scontrol resume``)."""
        job = self._get(job_id)
        if job.state is not JobState.SUSPENDED:
            raise ValueError(
                f"can only resume suspended jobs; {job_id} is {job.state.value}"
            )
        info = self._running[job_id]
        remaining = info.remaining_runtime or 0.0
        info.remaining_runtime = None
        job.state = JobState.RUNNING
        info.finish_handle = self.loop.schedule_in(
            max(remaining, 0.001),
            lambda j=job, st=info.final_state, ec=info.final_exit_code: (
                self._end_job(j, st or JobState.COMPLETED, ec)
            ),
            f"end job {job.job_id}",
        )
        return job

    def _get(self, job_id: int) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown or purged job id {job_id}") from None

    # ------------------------------------------------------------------
    # queries used by the command layer
    # ------------------------------------------------------------------

    def pending_jobs(self) -> List[Job]:
        """All jobs waiting in the queue."""
        return [self.jobs[j] for j in self._pending]

    def running_jobs(self) -> List[Job]:
        """All jobs currently executing."""
        return [self.jobs[j] for j in self._running]

    def visible_jobs(self) -> List[Job]:
        """Everything squeue would show (pending + running + recently done)."""
        self._purge_old()
        return list(self.jobs.values())

    def job(self, job_id: int) -> Job:
        """Look up a job ctld still remembers (KeyError if purged)."""
        return self._get(job_id)

    def node(self, name: str) -> Node:
        """Look up a node by name (KeyError if unknown)."""
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def jobs_on_node(self, name: str) -> List[Job]:
        """Jobs currently running on the named node."""
        node = self.node(name)
        return [self.jobs[j] for j in node.running_job_ids if j in self.jobs]

    def association_usage(self, account: str) -> AssociationUsage:
        """Live usage counters for an account (created on demand)."""
        return self._usage.setdefault(account, AssociationUsage())

    #: pending reasons that will never clear on their own — no start estimate
    _PERMANENT_REASONS = frozenset(
        {
            R.PARTITION_TIME_LIMIT,
            R.PARTITION_NODE_LIMIT,
            R.BAD_CONSTRAINTS,
            R.DEPENDENCY_NEVER,
            R.JOB_HELD_USER,
            R.JOB_HELD_ADMIN,
            R.QOS_MAX_WALL,
        }
    )

    def estimate_start(self, job_id: int) -> Optional[float]:
        """Expected start time for a pending job (``squeue --start``).

        Uses the conservative shadow-time projection the backfill pass
        already computes; returns None for jobs blocked on conditions
        that cannot clear by themselves (bad constraints, holds, ...).
        """
        job = self._get(job_id)
        if job.state is not JobState.PENDING:
            return None
        if job.reason in self._PERMANENT_REASONS:
            return None
        now = self.clock.now()
        if self._select_nodes(job) is not None:
            return now  # would start on the next pass
        return max(now, self._projected_start(job))

    def refresh_node_loads(self) -> None:
        """Recompute per-node cpu_load from the utilization ground truth of
        the jobs running there (what `scontrol show node` reports)."""
        for node in self.nodes.values():
            load = 0.0
            for jid in node.running_job_ids:
                info = self._running.get(jid)
                if info is None:
                    continue
                load += info.per_node.cpus * info.utilization
            node.cpu_load = round(load, 2)

    # ------------------------------------------------------------------
    # the scheduling pass
    # ------------------------------------------------------------------

    def schedule_pass(self) -> int:
        """One pass of the main scheduler plus backfill.  Returns the number
        of jobs started.

        Re-entrant calls (a preempted job's teardown ends inside a pass)
        are deferred: the outer pass reruns until quiescent.
        """
        if self._in_pass:
            self._pass_requested = True
            return 0
        self._in_pass = True
        started = 0
        try:
            while True:
                self._pass_requested = False
                started += self._schedule_pass_once()
                if not self._pass_requested:
                    break
        finally:
            self._in_pass = False
        if self.bus is not None:
            # published once per *outer* pass, after the queue quiesced —
            # the materialized-view hub uses this as its flush trigger
            self.bus.publish("sched_pass", detail=str(started))
        return started

    def _schedule_pass_once(self) -> int:
        self.stats["schedule_passes"] += 1
        self._purge_old()
        started = 0
        now = self.clock.now()

        queue = sorted(
            (self.jobs[j] for j in self._pending),
            key=lambda j: (-self._priority(j, now), j.job_id),
        )
        blocked_job: Optional[Job] = None
        shadow_time: Optional[float] = None
        examined_after_block = 0
        # Within one pass, identical (partition, shape) requests that failed
        # to fit will fail again unless something started meanwhile; memoize
        # to keep a deep backlog cheap (cleared whenever a job starts).
        no_fit: set = set()

        for job in queue:
            if job.state is not JobState.PENDING or job.job_id not in self._pending:
                continue  # state changed mid-pass (e.g. preemption teardown)
            job.priority = self._priority(job, now)
            if job.job_id in self._held:
                continue
            if blocked_job is not None:
                examined_after_block += 1
                if examined_after_block > self.config.backfill_depth:
                    job.reason = R.PRIORITY
                    continue
            reason = self._limit_reason(job)
            if reason is not None:
                job.reason = reason
                continue
            sig = (
                job.partition,
                job.req.cpus,
                job.req.mem_mb,
                job.req.gpus,
                job.req.nodes,
                tuple(sorted(job.spec.features)),
            )
            if sig in no_fit:
                job.reason = R.PRIORITY if blocked_job is not None else R.RESOURCES
                if blocked_job is None:
                    blocked_job = job
                    shadow_time = self._projected_start(job)
                continue
            nodes = self._select_nodes(job)
            if nodes is not None:
                if blocked_job is None:
                    self._start_job(job, nodes)
                    no_fit.clear()
                    started += 1
                    continue
                # backfill candidate: must finish before the blocked job's
                # projected start to be conservative
                if (
                    self.config.backfill
                    and shadow_time is not None
                    and now + job.time_limit <= shadow_time
                ):
                    self._start_job(job, nodes)
                    no_fit.clear()
                    self.stats["backfilled"] += 1
                    started += 1
                    continue
                job.reason = R.PRIORITY
                continue
            # cannot start now
            if (
                self.reservations
                and self._select_nodes(job, honor_reservations=False) is not None
            ):
                # only a reservation stands in the way (e.g. upcoming
                # maintenance): Slurm reports ReqNodeNotAvail
                job.reason = R.REQ_NODE_NOT_AVAIL
                continue
            # higher-priority QoS may preempt preemptible running jobs
            if blocked_job is None and self._try_preempt(job):
                nodes = self._select_nodes(job)
                if nodes is not None:
                    self._start_job(job, nodes)
                    no_fit.clear()
                    self.stats["preemptions_for"] = (
                        self.stats.get("preemptions_for", 0) + 1
                    )
                    started += 1
                    continue
            no_fit.add(sig)
            if blocked_job is None:
                blocked_job = job
                job.reason = R.RESOURCES
                shadow_time = self._projected_start(job)
            else:
                job.reason = R.PRIORITY
        return started

    def priority_components(self, job: Job, now: Optional[float] = None) -> Dict[str, float]:
        """Multifactor priority decomposition (what ``sprio`` reports)."""
        if now is None:
            now = self.clock.now()
        qos = self.qos[job.qos]
        age = max(0.0, now - job.eligible_time)
        return {
            "base": self.config.base_priority,
            "qos": qos.priority * self.config.qos_weight,
            "age": age * self.config.age_weight,
            "fairshare": self._fairshare_factor(job.account),
        }

    def _priority(self, job: Job, now: float) -> float:
        return sum(self.priority_components(job, now).values())

    def _fairshare_factor(self, account: str) -> float:
        """Fairshare points: the account's complement of its share of all
        accounts' consumed CPU-hours (a compact stand-in for Slurm's
        fair-tree algorithm)."""
        weight = self.config.fairshare_weight
        if weight <= 0:
            return 0.0
        total = sum(u.cpu_hours_used for u in self._usage.values())
        if total <= 0:
            return weight
        used = self._usage.get(account)
        share = (used.cpu_hours_used / total) if used is not None else 0.0
        return weight * (1.0 - share)

    # -- limit checks ----------------------------------------------------

    def _dependency_state(self, dep: int) -> JobState:
        live = self.jobs.get(dep)
        if live is not None:
            return live.state
        return self._outcomes[dep]

    def _limit_reason(self, job: Job) -> Optional[str]:
        for dep in job.spec.depends_on:
            state = self._dependency_state(dep)
            if state.is_active:
                return R.DEPENDENCY
            if state is not JobState.COMPLETED:
                # afterok: a failed/cancelled dependency blocks forever
                return R.DEPENDENCY_NEVER
        part = self.partitions[job.partition]
        if part.state != "UP":
            return R.PARTITION_DOWN
        if job.time_limit > part.max_time:
            return R.PARTITION_TIME_LIMIT
        if job.req.nodes > len(part.node_names):
            return R.PARTITION_NODE_LIMIT
        if job.spec.features and not self._features_satisfiable(job, part):
            return R.BAD_CONSTRAINTS

        assoc = self.associations.get(job.account)
        if assoc is not None:
            usage = self.association_usage(job.account)
            if assoc.max_jobs is not None and usage.running_jobs >= assoc.max_jobs:
                return R.ASSOC_MAX_JOBS_LIMIT
            if assoc.grp_tres is not None:
                after = usage.alloc + job.req
                if assoc.grp_tres.cpus and after.cpus > assoc.grp_tres.cpus:
                    return R.ASSOC_GRP_CPU_LIMIT
                if assoc.grp_tres.gpus and after.gpus > assoc.grp_tres.gpus:
                    return R.ASSOC_GRP_GRES_LIMIT

        qos = self.qos[job.qos]
        if qos.max_wall is not None and job.time_limit > qos.max_wall:
            return R.QOS_MAX_WALL
        if qos.max_jobs_per_user is not None:
            running = sum(
                1
                for info_id in self._running
                if self.jobs[info_id].user == job.user
                and self.jobs[info_id].qos == job.qos
            )
            if running >= qos.max_jobs_per_user:
                return R.QOS_MAX_JOBS_PER_USER
        if qos.max_tres_per_user is not None:
            held = TRES()
            for jid in self._running:
                other = self.jobs[jid]
                if other.user == job.user and other.qos == job.qos:
                    held = held + other.req
            after = held + job.req
            cap = qos.max_tres_per_user
            if (cap.cpus and after.cpus > cap.cpus) or (
                cap.gpus and after.gpus > cap.gpus
            ):
                return R.QOS_MAX_TRES_PER_USER
        return None

    def _features_satisfiable(self, job: Job, part: Partition) -> bool:
        want = set(job.spec.features)
        return any(
            want.issubset(set(self.nodes[nn].features)) for nn in part.node_names
        )

    # -- reservations --------------------------------------------------------

    def create_reservation(self, reservation: Reservation) -> Reservation:
        """Register a reservation (duplicate names rejected)."""
        if reservation.name in self.reservations:
            raise ValueError(f"duplicate reservation {reservation.name!r}")
        for name in reservation.node_names:
            if name not in self.nodes:
                raise ValueError(
                    f"reservation {reservation.name!r}: unknown node {name!r}"
                )
        self.reservations[reservation.name] = reservation
        return reservation

    def delete_reservation(self, name: str) -> None:
        """Remove a reservation by name."""
        if name not in self.reservations:
            raise KeyError(f"no reservation {name!r}")
        del self.reservations[name]

    def _node_reserved_against(self, node_name: str, job: Job, now: float) -> bool:
        """True if a reservation forbids starting ``job`` on this node now:
        the job's [now, now + limit] window would overlap the reservation."""
        for res in self.reservations.values():
            if node_name in res.node_names and res.overlaps(
                now, now + job.time_limit
            ):
                return True
        return False

    # -- node selection ----------------------------------------------------

    def _per_node_share(self, job: Job) -> TRES:
        n = job.req.nodes
        return TRES(
            cpus=math.ceil(job.req.cpus / n),
            mem_mb=math.ceil(job.req.mem_mb / n),
            gpus=math.ceil(job.req.gpus / n),
            nodes=1,
        )

    def _select_nodes(
        self, job: Job, honor_reservations: bool = True
    ) -> Optional[List[Node]]:
        """Best-fit selection of ``job.req.nodes`` distinct nodes."""
        part = self.partitions[job.partition]
        share = self._per_node_share(job)
        want = set(job.spec.features)
        now = self.clock.now()
        candidates = [
            node
            for nn in part.node_names
            if (node := self.nodes[nn]).can_fit(share)
            and want.issubset(set(node.features))
            and not (
                honor_reservations and self._node_reserved_against(nn, job, now)
            )
        ]
        if len(candidates) < job.req.nodes:
            return None
        candidates.sort(
            key=lambda n: (
                n.cpus - n.alloc.cpus,
                n.real_memory_mb - n.alloc.mem_mb,
                n.name,
            )
        )
        return candidates[: job.req.nodes]

    def _projected_start(self, job: Job) -> float:
        """Conservative estimate of when the blocked job could start: when
        enough running jobs have hit their time limits.  Used as the
        backfill shadow time."""
        now = self.clock.now()
        ends = sorted(
            (self.jobs[jid].start_time or now) + self.jobs[jid].time_limit
            for jid in self._running
        )
        if not ends:
            return now
        # Conservative: assume the blocked job can start once as many running
        # jobs have reached their limits as it needs nodes.
        needed = min(job.req.nodes, len(ends))
        return ends[needed - 1]

    # -- preemption ----------------------------------------------------------

    def _try_preempt(self, job: Job) -> bool:
        """Free resources for ``job`` by preempting lower-priority-QoS
        running jobs whose QoS allows it.  Victims are chosen lowest
        priority first, and only actually preempted when a sufficient set
        exists (dry-run first).  Returns True if preemption happened."""
        my_prio = self.qos[job.qos].priority
        part_nodes = set(self.partitions[job.partition].node_names)
        candidates = []
        for jid in self._running:
            victim = self.jobs[jid]
            vqos = self.qos[victim.qos]
            if vqos.preempt_mode == "off" or vqos.priority >= my_prio:
                continue
            if not set(victim.nodes) & part_nodes:
                continue
            candidates.append(victim)
        if not candidates:
            return False
        candidates.sort(key=lambda v: (self.qos[v.qos].priority, v.job_id))
        chosen: List[Job] = []
        for victim in candidates:
            chosen.append(victim)
            if self._fits_with_victims(job, chosen):
                for v in chosen:
                    self._preempt(v)
                self.stats["preempted"] = self.stats.get("preempted", 0) + len(
                    chosen
                )
                # requeued victims deserve a fresh pass once this one ends
                self._pass_requested = True
                return True
        return False

    def _fits_with_victims(self, job: Job, victims: Sequence[Job]) -> bool:
        """Would ``job`` fit if the victims' allocations were returned?"""
        share = self._per_node_share(job)
        want = set(job.spec.features)
        now = self.clock.now()
        avail: Dict[str, TRES] = {}
        for nn in self.partitions[job.partition].node_names:
            node = self.nodes[nn]
            if not node.state.is_schedulable:
                continue
            if not want.issubset(set(node.features)):
                continue
            if self._node_reserved_against(nn, job, now):
                continue
            avail[nn] = node.available
        for victim in victims:
            vshare = self._running[victim.job_id].per_node
            for nn in victim.nodes:
                if nn in avail:
                    avail[nn] = avail[nn] + TRES(
                        vshare.cpus, vshare.mem_mb, vshare.gpus, 0
                    )
        fitting = sum(
            1
            for a in avail.values()
            if a.cpus >= share.cpus
            and a.mem_mb >= share.mem_mb
            and a.gpus >= share.gpus
        )
        return fitting >= job.req.nodes

    def _preempt(self, victim: Job) -> None:
        mode = self.qos[victim.qos].preempt_mode
        info = self._running[victim.job_id]
        if info.finish_handle is not None:
            info.finish_handle.cancel()
        if mode == "cancel":
            self._end_job(victim, JobState.PREEMPTED, exit_code=0)
            return
        # requeue: return the allocation and put the job back in the queue
        now = self.clock.now()
        self._running.pop(victim.job_id)
        for name in victim.nodes:
            self.nodes[name].release(info.per_node, victim.job_id)
        usage = self.association_usage(victim.account)
        usage.alloc = usage.alloc - victim.req
        usage.running_jobs -= 1
        usage.cpu_hours_used += victim.cpu_hours(now)
        usage.gpu_hours_used += victim.gpu_hours(now)
        victim.state = JobState.PENDING
        victim.reason = R.PRIORITY
        victim.nodes = []
        victim.start_time = None
        victim.end_time = None
        victim.eligible_time = now
        self._pending.append(victim.job_id)

    # -- node failure ---------------------------------------------------------

    def fail_node(self, name: str, reason: str = "node failure") -> List[Job]:
        """Hard-fail a node: it goes DOWN and every job running on it ends
        as NODE_FAIL.  Returns the killed jobs."""
        node = self.node(name)
        victims = [self.jobs[jid] for jid in list(node.running_job_ids)]
        node.set_down(reason)
        if self.bus is not None:
            self.bus.publish("node_state", nodes=(name,), detail=reason)
        for job in victims:
            info = self._running[job.job_id]
            if info.finish_handle is not None:
                info.finish_handle.cancel()
            self._end_job(job, JobState.NODE_FAIL, exit_code=1)
        self.schedule_pass()
        return victims

    # -- start / end ----------------------------------------------------------

    def _start_job(self, job: Job, nodes: List[Node]) -> None:
        now = self.clock.now()
        share = self._per_node_share(job)
        for node in nodes:
            node.allocate(share, job.job_id)
            node.last_busy = now
        job.nodes = [n.name for n in nodes]
        job.state = JobState.RUNNING
        job.reason = R.NONE
        job.start_time = now
        self._pending.remove(job.job_id)

        spec = job.spec
        runtime = min(spec.actual_runtime, job.time_limit)
        final_state = JobState.COMPLETED
        exit_code = spec.exit_code
        if spec.fail_state is not None:
            final_state = spec.fail_state
            if exit_code == 0 and final_state in (JobState.FAILED, JobState.NODE_FAIL):
                exit_code = 1
            runtime = min(runtime, spec.actual_runtime)
        elif spec.actual_max_rss_mb and spec.actual_max_rss_mb > share.mem_mb:
            final_state = JobState.OUT_OF_MEMORY
            exit_code = 137  # SIGKILL by the OOM killer
            runtime = min(runtime, max(1.0, 0.5 * runtime))
        elif spec.actual_runtime > job.time_limit:
            final_state = JobState.TIMEOUT
            exit_code = 0
            runtime = job.time_limit
        elif exit_code != 0:
            final_state = JobState.FAILED

        info = _RunInfo(per_node=share, utilization=spec.actual_cpu_utilization)
        info.final_state = final_state
        info.final_exit_code = exit_code
        info.finish_handle = self.loop.schedule_in(
            runtime,
            lambda j=job, st=final_state, ec=exit_code: self._end_job(j, st, ec),
            f"end job {job.job_id}",
        )
        self._running[job.job_id] = info

        usage = self.association_usage(job.account)
        usage.alloc = usage.alloc + job.req
        usage.running_jobs += 1
        self.stats["started"] += 1
        if self.bus is not None:
            self.bus.publish(
                "job_started",
                job_id=job.job_id,
                user=job.user,
                account=job.account,
                nodes=tuple(job.nodes),
            )

    def _end_job(self, job: Job, final_state: JobState, exit_code: int) -> None:
        now = self.clock.now()
        info = self._running.pop(job.job_id)
        for name in job.nodes:
            self.nodes[name].release(info.per_node, job.job_id)
        job.state = final_state
        job.end_time = now
        job.exit_code = exit_code
        elapsed = job.elapsed(now)
        job.total_cpu_seconds = elapsed * job.req.cpus * info.utilization
        job.max_rss_mb = job.spec.actual_max_rss_mb or max(
            1, int(info.per_node.mem_mb * 0.5)
        )

        usage = self.association_usage(job.account)
        usage.alloc = usage.alloc - job.req
        usage.running_jobs -= 1
        usage.gpu_hours_used += job.gpu_hours(now)
        usage.cpu_hours_used += job.cpu_hours(now)

        self.stats["completed"] += 1
        self._retire(job)
        self.schedule_pass()

    def _retire(self, job: Job) -> None:
        """Archive the job and queue it for purge after min_job_age."""
        self._outcomes[job.job_id] = job.state
        if self._on_job_end is not None:
            self._on_job_end(job.clone())
        if self.bus is not None:
            self.bus.publish(
                "job_ended",
                job_id=job.job_id,
                user=job.user,
                account=job.account,
                nodes=tuple(job.nodes),
                detail=job.state.value,
            )
        self._purge_queue.append(
            (self.clock.now() + self.config.min_job_age, job.job_id)
        )

    def _purge_old(self) -> None:
        now = self.clock.now()
        keep: List[tuple[float, int]] = []
        for t, jid in self._purge_queue:
            if t <= now:
                self.jobs.pop(jid, None)
            else:
                keep.append((t, jid))
        self._purge_queue = keep
