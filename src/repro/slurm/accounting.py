"""slurmdbd simulator: the job accounting archive behind ``sacct``.

Every job the scheduler retires is archived here.  Queries support the
filters the dashboard needs: by user, by account set, by state, and by
time window (sacct's ``--starttime/--endtime`` semantics: a job matches if
its [submit, end] interval overlaps the window).

The database also maintains per-(account, user) usage rollups that feed
the Accounts widget (§3.4) and its CSV/Excel export.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from .model import Job, JobState


@dataclass
class UsageRollup:
    """Accumulated usage for one (account, user) pair."""

    account: str
    user: str
    job_count: int = 0
    cpu_hours: float = 0.0
    gpu_hours: float = 0.0
    wall_hours: float = 0.0
    mem_mb_hours: float = 0.0

    def add(self, job: Job, now: float) -> None:
        """Fold one finished job into the rollup."""
        elapsed_h = job.elapsed(now) / 3600.0
        self.job_count += 1
        self.cpu_hours += job.req.cpus * elapsed_h
        self.gpu_hours += job.req.gpus * elapsed_h
        self.wall_hours += elapsed_h
        self.mem_mb_hours += job.req.mem_mb * elapsed_h


class AccountingDatabase:
    """In-memory archive of finished (and optionally live) job records."""

    def __init__(self) -> None:
        self._jobs: Dict[int, Job] = {}
        self._by_user: Dict[str, List[int]] = defaultdict(list)
        self._by_account: Dict[str, List[int]] = defaultdict(list)
        self._rollups: Dict[tuple[str, str], UsageRollup] = {}

    def __len__(self) -> int:
        return len(self._jobs)

    # -- ingestion ---------------------------------------------------------

    def record(self, job: Job) -> None:
        """Archive a retired job (idempotent per job id: newest wins)."""
        fresh = job.job_id not in self._jobs
        self._jobs[job.job_id] = job
        if fresh:
            self._by_user[job.user].append(job.job_id)
            self._by_account[job.account].append(job.job_id)
            if job.end_time is not None:
                key = (job.account, job.user)
                rollup = self._rollups.get(key)
                if rollup is None:
                    rollup = UsageRollup(account=job.account, user=job.user)
                    self._rollups[key] = rollup
                rollup.add(job, job.end_time)

    # -- queries -----------------------------------------------------------

    def get(self, job_id: int) -> Optional[Job]:
        """The archived record for a job id, or None."""
        return self._jobs.get(job_id)

    def query(
        self,
        users: Optional[Sequence[str]] = None,
        accounts: Optional[Sequence[str]] = None,
        states: Optional[Sequence[JobState]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
        partition: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Job]:
        """sacct-style query.  Filters are ANDed; ``users``/``accounts`` are
        ORed *within* themselves but a job matches if it matches either the
        user filter or the account filter when both are given — this is the
        dashboard's "my jobs or my groups' jobs" scope (§2.4)."""
        if users is not None and accounts is not None:
            ids: set[int] = set()
            for u in users:
                ids.update(self._by_user.get(u, ()))
            for a in accounts:
                ids.update(self._by_account.get(a, ()))
            candidates: Iterable[Job] = (self._jobs[i] for i in ids)
        elif users is not None:
            ids = set()
            for u in users:
                ids.update(self._by_user.get(u, ()))
            candidates = (self._jobs[i] for i in ids)
        elif accounts is not None:
            ids = set()
            for a in accounts:
                ids.update(self._by_account.get(a, ()))
            candidates = (self._jobs[i] for i in ids)
        else:
            candidates = self._jobs.values()

        state_set = set(states) if states is not None else None
        out: List[Job] = []
        for job in candidates:
            if state_set is not None and job.state not in state_set:
                continue
            if partition is not None and job.partition != partition:
                continue
            if not _overlaps(job, start, end):
                continue
            out.append(job)
        out.sort(key=lambda j: (j.submit_time, j.job_id))
        if limit is not None:
            out = out[-limit:]
        return out

    def jobs_of_array(self, array_job_id: int) -> List[Job]:
        """All tasks of one job array, in task order (Job Overview §7)."""
        tasks = [
            j for j in self._jobs.values() if j.array_job_id == array_job_id
        ]
        tasks.sort(key=lambda j: (j.array_task_id or 0))
        return tasks

    # -- rollups ------------------------------------------------------------

    def usage_by_account(self, account: str) -> List[UsageRollup]:
        """Per-user usage breakdown for one account (export use case §3.4)."""
        rows = [r for (acct, _), r in self._rollups.items() if acct == account]
        rows.sort(key=lambda r: (-r.cpu_hours, r.user))
        return rows

    def account_gpu_hours(self, account: str) -> float:
        """Total GPU-hours charged to an account."""
        return sum(r.gpu_hours for r in self.usage_by_account(account))

    def account_cpu_hours(self, account: str) -> float:
        """Total CPU-hours charged to an account."""
        return sum(r.cpu_hours for r in self.usage_by_account(account))


def _overlaps(job: Job, start: Optional[float], end: Optional[float]) -> bool:
    """sacct window semantics: job interval [submit, end-or-inf] must
    intersect [start, end]."""
    if start is not None:
        job_end = job.end_time if job.end_time is not None else float("inf")
        if job_end < start:
            return False
    if end is not None and job.submit_time > end:
        return False
    return True
