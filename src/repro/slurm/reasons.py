"""Slurm pending/state reason codes and their user-friendly explanations.

Paper §4.1: the My Jobs table shows "more user-friendly messages for job
reasons, which can be obscure to understand for beginners", e.g. the
reason ``AssocGrpCpuLimit`` is annotated with "It means this job's
association has reached its aggregate group CPU limit."

This module is the catalog both the scheduler (which *assigns* reason
codes) and the dashboard (which *explains* them) share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# Canonical reason codes, matching Slurm's squeue(1) REASONS section.
NONE = "None"
RESOURCES = "Resources"
PRIORITY = "Priority"
DEPENDENCY = "Dependency"
DEPENDENCY_NEVER = "DependencyNeverSatisfied"
ASSOC_GRP_CPU_LIMIT = "AssocGrpCpuLimit"
ASSOC_GRP_GRES_LIMIT = "AssocGrpGRES"
ASSOC_MAX_JOBS_LIMIT = "AssocMaxJobsLimit"
QOS_MAX_JOBS_PER_USER = "QOSMaxJobsPerUserLimit"
QOS_MAX_TRES_PER_USER = "QOSMaxTresPerUser"
QOS_MAX_WALL = "QOSMaxWallDurationPerJobLimit"
PARTITION_TIME_LIMIT = "PartitionTimeLimit"
PARTITION_DOWN = "PartitionDown"
PARTITION_NODE_LIMIT = "PartitionNodeLimit"
JOB_HELD_USER = "JobHeldUser"
JOB_HELD_ADMIN = "JobHeldAdmin"
BEGIN_TIME = "BeginTime"
LAUNCH_FAILED = "launch failed requeued held"
NODE_DOWN = "NodeDown"
BAD_CONSTRAINTS = "BadConstraints"
REQ_NODE_NOT_AVAIL = "ReqNodeNotAvail"


@dataclass(frozen=True)
class ReasonInfo:
    """Explanation + guidance for one reason code."""

    code: str
    friendly: str
    guidance: str = ""
    severity: str = "info"  # info | warning | error


_CATALOG: Dict[str, ReasonInfo] = {}


def _register(info: ReasonInfo) -> None:
    _CATALOG[info.code] = info


_register(ReasonInfo(NONE, "No blocking reason; the job is progressing normally."))
_register(
    ReasonInfo(
        RESOURCES,
        "It means the job is waiting for enough free CPUs, memory, or GPUs to "
        "become available on the requested partition.",
        "Your job is at the front of the queue; it will start as soon as "
        "resources free up.",
    )
)
_register(
    ReasonInfo(
        PRIORITY,
        "It means one or more higher-priority jobs are ahead of this job in "
        "the queue.",
        "Waiting is normal; jobs gain priority as they age.",
    )
)
_register(
    ReasonInfo(
        DEPENDENCY,
        "It means this job is waiting for a job it depends on to finish.",
        "Check the dependency list with the job's details.",
    )
)
_register(
    ReasonInfo(
        DEPENDENCY_NEVER,
        "It means a job this job depends on failed or was cancelled, so "
        "this job can never start.",
        "Cancel this job and resubmit once the dependency problem is fixed.",
        severity="error",
    )
)
_register(
    ReasonInfo(
        ASSOC_GRP_CPU_LIMIT,
        "It means this job's association has reached its aggregate group CPU "
        "limit.",
        "Jobs already running under your allocation are using all of its "
        "CPUs; the job will start when some of them finish.",
        severity="warning",
    )
)
_register(
    ReasonInfo(
        ASSOC_GRP_GRES_LIMIT,
        "It means this job's association has reached its aggregate group GPU "
        "(GRES) limit.",
        "Your allocation's GPUs are fully in use; the job will start when "
        "GPU jobs under the allocation finish.",
        severity="warning",
    )
)
_register(
    ReasonInfo(
        ASSOC_MAX_JOBS_LIMIT,
        "It means your association has reached its maximum number of "
        "concurrently running jobs.",
        severity="warning",
    )
)
_register(
    ReasonInfo(
        QOS_MAX_JOBS_PER_USER,
        "It means you have reached the maximum number of running jobs allowed "
        "per user under this QOS.",
        severity="warning",
    )
)
_register(
    ReasonInfo(
        QOS_MAX_TRES_PER_USER,
        "It means you have reached the maximum resources one user may hold "
        "under this QOS.",
        severity="warning",
    )
)
_register(
    ReasonInfo(
        QOS_MAX_WALL,
        "It means the job's requested time limit exceeds the maximum wall "
        "time this QOS allows.",
        "Lower the --time request or submit under a QOS with a longer limit.",
        severity="error",
    )
)
_register(
    ReasonInfo(
        PARTITION_TIME_LIMIT,
        "It means the job's requested time limit exceeds the partition's "
        "maximum time limit.",
        "Lower the --time request or choose a partition with a longer limit.",
        severity="error",
    )
)
_register(
    ReasonInfo(
        PARTITION_DOWN,
        "It means the partition the job was submitted to is currently down.",
        severity="error",
    )
)
_register(
    ReasonInfo(
        PARTITION_NODE_LIMIT,
        "It means the job requests more nodes than the partition contains.",
        "Reduce the node count or use a larger partition.",
        severity="error",
    )
)
_register(
    ReasonInfo(
        JOB_HELD_USER,
        "It means you placed this job on hold; release it to let it run.",
    )
)
_register(
    ReasonInfo(
        JOB_HELD_ADMIN,
        "It means an administrator placed this job on hold; contact support "
        "for details.",
        severity="warning",
    )
)
_register(
    ReasonInfo(
        BEGIN_TIME,
        "It means the job's requested begin time has not been reached yet.",
    )
)
_register(
    ReasonInfo(
        NODE_DOWN,
        "It means a node required by this job is down.",
        severity="error",
    )
)
_register(
    ReasonInfo(
        BAD_CONSTRAINTS,
        "It means the job's feature constraints cannot be satisfied by any "
        "node in the partition.",
        "Check the --constraint flags against the cluster's node features.",
        severity="error",
    )
)
_register(
    ReasonInfo(
        REQ_NODE_NOT_AVAIL,
        "It means a specifically requested node is not currently available "
        "(it may be down, drained, or reserved).",
        severity="warning",
    )
)
_register(
    ReasonInfo(
        LAUNCH_FAILED,
        "It means the job failed to launch and was requeued in a held state; "
        "contact support if this persists.",
        severity="error",
    )
)


def explain(code: str) -> ReasonInfo:
    """Friendly explanation for a reason code; unknown codes degrade
    gracefully instead of crashing the widget (modularity, §2.4)."""
    info = _CATALOG.get(code)
    if info is not None:
        return info
    return ReasonInfo(
        code=code,
        friendly=f"Slurm reported reason {code!r}; see the Slurm documentation "
        "or contact support for details.",
    )


def known_codes() -> list[str]:
    """Every reason code in the catalog."""
    return list(_CATALOG)


def is_known(code: str) -> bool:
    """True if the code has a curated explanation."""
    return code in _CATALOG
