"""Slurm workload-manager simulator.

The paper's dashboard gathers everything from Slurm (Table 1); this
package is the from-scratch substitute: a scheduler (slurmctld), an
accounting archive (slurmdbd), a daemon load model, and a command layer
(`squeue`/`sinfo`/`sacct`/`scontrol`) rendering authentic text output.
"""

from .accounting import AccountingDatabase, UsageRollup
from .cluster import (
    ClusterSpec,
    NodeGroupSpec,
    PartitionSpec,
    SlurmCluster,
    small_test_cluster,
)
from .daemon import DaemonBus, DaemonConfig, DaemonLoadModel
from .gpumetrics import GpuTelemetry, GpuUsageRecord
from .hostlist import compress_hostlist, expand_hostlist
from .maintenance import MaintenanceScheduler, MaintenanceWindow
from .model import (
    Association,
    AssociationUsage,
    InteractiveSessionInfo,
    Job,
    JobSpec,
    JobState,
    Node,
    NodeState,
    Partition,
    QoS,
    Reservation,
    TRES,
    format_exit_code,
    format_memory,
    parse_memory_mb,
)
from .scheduler import SchedulerConfig, SlurmScheduler

__all__ = [
    "AccountingDatabase",
    "UsageRollup",
    "ClusterSpec",
    "NodeGroupSpec",
    "PartitionSpec",
    "SlurmCluster",
    "small_test_cluster",
    "DaemonBus",
    "DaemonConfig",
    "DaemonLoadModel",
    "GpuTelemetry",
    "GpuUsageRecord",
    "compress_hostlist",
    "expand_hostlist",
    "MaintenanceScheduler",
    "MaintenanceWindow",
    "Association",
    "AssociationUsage",
    "InteractiveSessionInfo",
    "Job",
    "JobSpec",
    "JobState",
    "Node",
    "NodeState",
    "Partition",
    "QoS",
    "Reservation",
    "TRES",
    "format_exit_code",
    "format_memory",
    "parse_memory_mb",
    "SchedulerConfig",
    "SlurmScheduler",
]
