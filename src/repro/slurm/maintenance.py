"""Scheduled maintenance windows tying Slurm and the news feed together.

The paper's Announcements widget exists so users can "anticipate when
the cluster will not be available" (§3.1).  This module closes the loop
the way an HPC center operates: scheduling a maintenance window

1. publishes a maintenance announcement on the news API immediately
   (yellow, upcoming -> active -> past styling as time passes);
2. drains the affected nodes when the window opens (running jobs finish,
   nothing new starts — Slurm's graceful drain);
3. flips drained nodes to MAINT for the duration;
4. resumes the nodes when the window closes.

Everything is driven by the shared event loop, so the Cluster Status
grid and the Announcements widget stay consistent with each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.news.api import Category, NewsAPI

from .cluster import SlurmCluster
from .model import NodeState, Reservation


@dataclass
class MaintenanceWindow:
    """A scheduled maintenance event and its live status."""

    title: str
    start: float
    end: float
    node_names: List[str]
    article_id: Optional[int] = None
    reservation_name: Optional[str] = None
    status: str = "scheduled"  # scheduled | active | completed | cancelled


class MaintenanceScheduler:
    """Plans and executes maintenance windows on one cluster."""

    def __init__(self, cluster: SlurmCluster, news: Optional[NewsAPI] = None):
        self.cluster = cluster
        self.news = news
        self.windows: List[MaintenanceWindow] = []

    def schedule(
        self,
        start: float,
        end: float,
        node_names: Optional[Sequence[str]] = None,
        title: str = "Scheduled maintenance",
        body: str = "The listed nodes will be unavailable during the window.",
    ) -> MaintenanceWindow:
        """Schedule a window at absolute simulated times [start, end)."""
        now = self.cluster.now()
        if start < now:
            raise ValueError(f"maintenance cannot start in the past ({start} < {now})")
        if end <= start:
            raise ValueError("maintenance window must have positive duration")
        if node_names is None:
            node_names = list(self.cluster.nodes)
        else:
            node_names = list(node_names)
            for name in node_names:
                if name not in self.cluster.nodes:
                    raise KeyError(f"unknown node {name!r}")

        window = MaintenanceWindow(
            title=title, start=start, end=end, node_names=node_names
        )
        # a MAINT reservation keeps jobs whose time limit would overlap
        # the window from starting on these nodes (real Slurm behaviour)
        res_name = f"maint_{len(self.windows) + 1}"
        self.cluster.scheduler.create_reservation(
            Reservation(name=res_name, start=start, end=end,
                        node_names=node_names)
        )
        window.reservation_name = res_name
        if self.news is not None:
            article = self.news.publish(
                title=title,
                body=body,
                category=Category.MAINTENANCE,
                starts_at=start,
                ends_at=end,
            )
            window.article_id = article.article_id
        loop = self.cluster.loop
        loop.schedule_at(start, lambda w=window: self._begin(w), f"maint begin {title}")
        loop.schedule_at(end, lambda w=window: self._finish(w), f"maint end {title}")
        self.windows.append(window)
        return window

    def cancel(self, window: MaintenanceWindow) -> None:
        """Cancel a window that has not begun."""
        if window.status != "scheduled":
            raise ValueError(f"cannot cancel a {window.status} window")
        window.status = "cancelled"
        if window.reservation_name:
            self.cluster.scheduler.delete_reservation(window.reservation_name)
        # nodes may have been skipped because of the reservation; reschedule
        self.cluster.scheduler.schedule_pass()

    # -- event-loop callbacks ----------------------------------------------

    def _begin(self, window: MaintenanceWindow) -> None:
        if window.status != "scheduled":
            return
        window.status = "active"
        for name in window.node_names:
            node = self.cluster.nodes[name]
            if node.running_job_ids:
                # graceful: drain now, flip to MAINT once the node empties
                node.drain(f"maintenance: {window.title}")
            else:
                node.set_maint(window.title)

    def _finish(self, window: MaintenanceWindow) -> None:
        if window.status != "active":
            return
        window.status = "completed"
        if window.reservation_name:
            self.cluster.scheduler.delete_reservation(window.reservation_name)
        for name in window.node_names:
            node = self.cluster.nodes[name]
            if node.state in (NodeState.MAINT, NodeState.DRAINED, NodeState.DRAINING):
                node.resume()
        # freed capacity: let the scheduler use it immediately
        self.cluster.scheduler.schedule_pass()

    def active_windows(self) -> List[MaintenanceWindow]:
        """Windows currently in progress."""
        return [w for w in self.windows if w.status == "active"]

    def upcoming_windows(self) -> List[MaintenanceWindow]:
        """Windows scheduled but not yet begun."""
        return [w for w in self.windows if w.status == "scheduled"]
