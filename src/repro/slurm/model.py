"""Slurm data model: TRES, jobs, nodes, partitions, QoS, associations.

This mirrors the subset of Slurm's object model that the paper's dashboard
consumes through ``squeue``/``sinfo``/``sacct``/``scontrol``.  Field names
follow Slurm's own vocabulary (TRES, GRES, QOS, association) so the command
layer can render authentic-looking output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional

# ---------------------------------------------------------------------------
# TRES — trackable resources
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TRES:
    """A trackable-resource vector: CPUs, memory (MB), GPUs, nodes.

    Supports elementwise arithmetic and the ``fits_in`` comparison used by
    the scheduler's node-fitting and limit checks.
    """

    cpus: int = 0
    mem_mb: int = 0
    gpus: int = 0
    nodes: int = 0

    def __post_init__(self) -> None:
        # hot path: TRES is built millions of times per simulation, so the
        # validation avoids reflection
        if self.cpus < 0 or self.mem_mb < 0 or self.gpus < 0 or self.nodes < 0:
            for name in ("cpus", "mem_mb", "gpus", "nodes"):
                if getattr(self, name) < 0:
                    raise ValueError(f"TRES.{name} cannot be negative")

    def __add__(self, other: "TRES") -> "TRES":
        return TRES(
            self.cpus + other.cpus,
            self.mem_mb + other.mem_mb,
            self.gpus + other.gpus,
            self.nodes + other.nodes,
        )

    def __sub__(self, other: "TRES") -> "TRES":
        return TRES(
            self.cpus - other.cpus,
            self.mem_mb - other.mem_mb,
            self.gpus - other.gpus,
            self.nodes - other.nodes,
        )

    def fits_in(self, capacity: "TRES") -> bool:
        """True if every component is <= the capacity's component."""
        return (
            self.cpus <= capacity.cpus
            and self.mem_mb <= capacity.mem_mb
            and self.gpus <= capacity.gpus
            and self.nodes <= capacity.nodes
        )

    def is_zero(self) -> bool:
        """True when every component is zero."""
        return self.cpus == 0 and self.mem_mb == 0 and self.gpus == 0 and self.nodes == 0

    def format(self) -> str:
        """Render in Slurm's ``cpu=4,mem=16000M,node=1,gres/gpu=2`` style."""
        parts = []
        if self.cpus:
            parts.append(f"cpu={self.cpus}")
        if self.mem_mb:
            parts.append(f"mem={self.mem_mb}M")
        if self.nodes:
            parts.append(f"node={self.nodes}")
        if self.gpus:
            parts.append(f"gres/gpu={self.gpus}")
        return ",".join(parts)

    @classmethod
    def parse(cls, text: str) -> "TRES":
        """Inverse of :meth:`format`.  Unknown keys are rejected."""
        cpus = mem_mb = gpus = nodes = 0
        text = text.strip()
        if not text:
            return cls()
        for item in text.split(","):
            key, _, val = item.partition("=")
            key = key.strip()
            val = val.strip()
            if key == "cpu":
                cpus = int(val)
            elif key == "mem":
                mem_mb = parse_memory_mb(val)
            elif key == "node":
                nodes = int(val)
            elif key in ("gres/gpu", "gpu"):
                gpus = int(val)
            else:
                raise ValueError(f"unknown TRES key {key!r} in {text!r}")
        return cls(cpus=cpus, mem_mb=mem_mb, gpus=gpus, nodes=nodes)


def parse_memory_mb(text: str) -> int:
    """Parse Slurm memory strings: ``4000M``, ``16G``, ``2T``, bare MB."""
    text = text.strip().upper()
    if not text:
        raise ValueError("empty memory value")
    mult = 1
    if text[-1] in "KMGT":
        mult = {"K": 1 / 1024, "M": 1, "G": 1024, "T": 1024 * 1024}[text[-1]]
        text = text[:-1]
    return int(round(float(text) * mult))


def format_memory(mem_mb: int) -> str:
    """Render memory the way the dashboard shows it: 16G, 500M, 1.5T."""
    if mem_mb >= 1024 * 1024 and mem_mb % (1024 * 128) == 0:
        val = mem_mb / (1024 * 1024)
        return f"{val:g}T"
    if mem_mb >= 1024:
        val = mem_mb / 1024
        if abs(val - round(val)) < 1e-9:
            return f"{int(round(val))}G"
        return f"{val:.1f}G"
    return f"{mem_mb}M"


# ---------------------------------------------------------------------------
# Job
# ---------------------------------------------------------------------------


class JobState(enum.Enum):
    """Slurm base job states (sacct's ``State`` column)."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    SUSPENDED = "SUSPENDED"
    COMPLETED = "COMPLETED"
    CANCELLED = "CANCELLED"
    FAILED = "FAILED"
    TIMEOUT = "TIMEOUT"
    NODE_FAIL = "NODE_FAIL"
    OUT_OF_MEMORY = "OUT_OF_MEMORY"
    PREEMPTED = "PREEMPTED"

    @property
    def is_terminal(self) -> bool:
        return self not in (JobState.PENDING, JobState.RUNNING, JobState.SUSPENDED)

    @property
    def is_active(self) -> bool:
        """True while the job can still start or run."""
        return not self.is_terminal

    @property
    def short_code(self) -> str:
        """squeue's two-letter state codes."""
        return _SHORT_CODES[self]


_SHORT_CODES = {
    JobState.PENDING: "PD",
    JobState.RUNNING: "R",
    JobState.SUSPENDED: "S",
    JobState.COMPLETED: "CD",
    JobState.CANCELLED: "CA",
    JobState.FAILED: "F",
    JobState.TIMEOUT: "TO",
    JobState.NODE_FAIL: "NF",
    JobState.OUT_OF_MEMORY: "OOM",
    JobState.PREEMPTED: "PR",
}


@dataclass
class InteractiveSessionInfo:
    """Provenance linking a job to an Open OnDemand interactive app (§7)."""

    app_name: str
    session_id: str
    working_dir: str


@dataclass
class JobSpec:
    """What a user submits (sbatch/salloc arguments) plus the *ground
    truth* of how the job will actually behave, which the simulator uses
    to drive completion events and accounting statistics.

    The "actual_*" fields are the simulator's stand-in for the physics of
    the real workload; they never reach the dashboard directly, only via
    accounting records, exactly as production telemetry would.
    """

    name: str
    user: str
    account: str
    partition: str
    req: TRES
    time_limit: float  # seconds
    qos: str = "normal"
    work_dir: str = ""
    std_out: str = ""
    std_err: str = ""
    # ground truth of execution
    actual_runtime: float = 60.0
    actual_cpu_utilization: float = 0.9  # fraction of allocated CPU time used
    #: fraction of allocated GPU time used; read by the GPU telemetry
    #: collector, not by Slurm accounting (paper §4.1's "additional tools")
    actual_gpu_utilization: float = 0.5
    actual_max_rss_mb: int = 0
    exit_code: int = 0
    fail_state: Optional[JobState] = None  # force FAILED/NODE_FAIL etc.
    # array support
    array_size: int = 0  # 0 = not an array
    #: job ids this job waits for (sbatch --dependency=afterok semantics)
    depends_on: List[int] = field(default_factory=list)
    # OOD provenance
    interactive: Optional[InteractiveSessionInfo] = None
    features: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.req.cpus <= 0:
            raise ValueError("job must request at least one CPU")
        if self.req.nodes <= 0:
            raise ValueError("job must request at least one node")
        if self.time_limit <= 0:
            raise ValueError("job must have a positive time limit")
        if self.actual_runtime < 0:
            raise ValueError("actual_runtime cannot be negative")
        if not (0.0 <= self.actual_cpu_utilization <= 1.0):
            raise ValueError("actual_cpu_utilization must be within [0, 1]")
        if not (0.0 <= self.actual_gpu_utilization <= 1.0):
            raise ValueError("actual_gpu_utilization must be within [0, 1]")


@dataclass
class Job:
    """A job record as tracked by slurmctld and archived by slurmdbd."""

    job_id: int
    spec: JobSpec
    state: JobState = JobState.PENDING
    reason: str = "None"
    submit_time: float = 0.0
    eligible_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    nodes: List[str] = field(default_factory=list)
    priority: float = 0.0
    exit_code: int = 0
    # usage filled at completion (or sampled while running)
    total_cpu_seconds: float = 0.0
    max_rss_mb: int = 0
    # array bookkeeping
    array_job_id: Optional[int] = None
    array_task_id: Optional[int] = None

    # -- convenience passthroughs -----------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def user(self) -> str:
        return self.spec.user

    @property
    def account(self) -> str:
        return self.spec.account

    @property
    def partition(self) -> str:
        return self.spec.partition

    @property
    def qos(self) -> str:
        return self.spec.qos

    @property
    def req(self) -> TRES:
        return self.spec.req

    @property
    def time_limit(self) -> float:
        return self.spec.time_limit

    @property
    def is_array_task(self) -> bool:
        return self.array_task_id is not None

    @property
    def display_id(self) -> str:
        """Job id as shown by squeue: ``1234_7`` for array tasks."""
        if self.is_array_task:
            return f"{self.array_job_id}_{self.array_task_id}"
        return str(self.job_id)

    # -- durations -----------------------------------------------------------

    def wait_time(self, now: float) -> float:
        """Queue wait: submit -> start (or submit -> now while pending)."""
        if self.start_time is not None:
            return max(0.0, self.start_time - self.submit_time)
        return max(0.0, now - self.submit_time)

    def elapsed(self, now: float) -> float:
        """Wall time used so far (0 while pending)."""
        if self.start_time is None:
            return 0.0
        end = self.end_time if self.end_time is not None else now
        return max(0.0, end - self.start_time)

    def gpu_hours(self, now: float) -> float:
        """GPU-hours consumed = allocated GPUs x elapsed hours."""
        return self.req.gpus * self.elapsed(now) / 3600.0

    def cpu_hours(self, now: float) -> float:
        """Allocated CPUs x elapsed hours."""
        return self.req.cpus * self.elapsed(now) / 3600.0

    def clone(self) -> "Job":
        """Deep-enough copy for handing to accounting archives."""
        return replace(self, nodes=list(self.nodes))


# ---------------------------------------------------------------------------
# Node
# ---------------------------------------------------------------------------


class NodeState(enum.Enum):
    """Node base states as shown by sinfo/scontrol."""

    IDLE = "IDLE"
    MIXED = "MIXED"
    ALLOCATED = "ALLOCATED"
    DRAINED = "DRAINED"
    DRAINING = "DRAINING"
    MAINT = "MAINT"
    DOWN = "DOWN"

    @property
    def is_schedulable(self) -> bool:
        return self in (NodeState.IDLE, NodeState.MIXED, NodeState.ALLOCATED)

    @property
    def is_online(self) -> bool:
        return self is not NodeState.DOWN


@dataclass
class Node:
    """A compute node with capacity, live usage, and configuration facts.

    Configuration fields (``features``, ``os``, ``gres_model``...) exist so
    the Node Overview details tab (§6.1) has real content to show.
    """

    name: str
    cpus: int
    real_memory_mb: int
    gpus: int = 0
    gres_model: str = ""
    partitions: List[str] = field(default_factory=list)
    features: List[str] = field(default_factory=list)
    os: str = "Linux 5.14.0-el9"
    arch: str = "x86_64"
    state: NodeState = NodeState.IDLE
    state_reason: str = ""
    # live usage
    alloc: TRES = field(default_factory=TRES)
    cpu_load: float = 0.0
    boot_time: float = 0.0
    last_busy: float = 0.0
    running_job_ids: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cpus <= 0:
            raise ValueError(f"node {self.name}: cpus must be positive")
        if self.real_memory_mb <= 0:
            raise ValueError(f"node {self.name}: memory must be positive")
        if self.gpus < 0:
            raise ValueError(f"node {self.name}: gpus cannot be negative")

    @property
    def capacity(self) -> TRES:
        return TRES(cpus=self.cpus, mem_mb=self.real_memory_mb, gpus=self.gpus, nodes=1)

    @property
    def available(self) -> TRES:
        return self.capacity - self.alloc

    def can_fit(self, per_node: TRES) -> bool:
        """Can this node host a per-node share of a job right now?"""
        if not self.state.is_schedulable:
            return False
        # hot path: checked for every (pending job, node) pair each pass;
        # compare raw counters instead of building TRES vectors
        alloc = self.alloc
        return (
            per_node.cpus <= self.cpus - alloc.cpus
            and per_node.mem_mb <= self.real_memory_mb - alloc.mem_mb
            and per_node.gpus <= self.gpus - alloc.gpus
        )

    def allocate(self, per_node: TRES, job_id: int) -> None:
        """Carve a per-node share out of this node for a job."""
        if not self.can_fit(per_node):
            raise ValueError(f"node {self.name} cannot fit {per_node} for job {job_id}")
        self.alloc = self.alloc + TRES(per_node.cpus, per_node.mem_mb, per_node.gpus, 0)
        self.running_job_ids.append(job_id)
        self._refresh_state()

    def release(self, per_node: TRES, job_id: int) -> None:
        """Return a job's per-node share to this node."""
        if job_id not in self.running_job_ids:
            raise ValueError(f"job {job_id} is not running on node {self.name}")
        self.alloc = self.alloc - TRES(per_node.cpus, per_node.mem_mb, per_node.gpus, 0)
        self.running_job_ids.remove(job_id)
        self._refresh_state()

    def _refresh_state(self) -> None:
        if self.state in (NodeState.DOWN, NodeState.MAINT, NodeState.DRAINED):
            return
        if self.state is NodeState.DRAINING:
            if not self.running_job_ids:
                self.state = NodeState.DRAINED
            return
        if self.alloc.cpus == 0:
            self.state = NodeState.IDLE
        elif self.alloc.cpus >= self.cpus:
            self.state = NodeState.ALLOCATED
        else:
            self.state = NodeState.MIXED

    # -- admin transitions -----------------------------------------------

    def drain(self, reason: str) -> None:
        """Stop scheduling onto the node; drains when jobs finish."""
        if self.running_job_ids:
            self.state = NodeState.DRAINING
        else:
            self.state = NodeState.DRAINED
        self.state_reason = reason

    def resume(self) -> None:
        """Return the node to service and recompute its state."""
        self.state = NodeState.IDLE
        self.state_reason = ""
        self._refresh_state()

    def set_down(self, reason: str) -> None:
        """Mark the node DOWN (hard failure)."""
        self.state = NodeState.DOWN
        self.state_reason = reason

    def set_maint(self, reason: str = "scheduled maintenance") -> None:
        """Mark the node as in scheduled maintenance."""
        self.state = NodeState.MAINT
        self.state_reason = reason


# ---------------------------------------------------------------------------
# Partition, QoS, Association
# ---------------------------------------------------------------------------


@dataclass
class Partition:
    """A Slurm partition (queue) over a set of nodes."""

    name: str
    node_names: List[str]
    max_time: float = 14 * 86400.0  # seconds
    state: str = "UP"
    is_default: bool = False
    allowed_qos: List[str] = field(default_factory=lambda: ["normal"])
    priority_tier: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("partition name must be non-empty")
        if not self.node_names:
            raise ValueError(f"partition {self.name!r} has no nodes")
        if self.max_time <= 0:
            raise ValueError(f"partition {self.name!r}: max_time must be positive")


@dataclass
class QoS:
    """Quality of Service: a priority bump plus optional per-user caps.

    ``preempt_mode`` states what may happen to *this QoS's running jobs*
    when a higher-priority QoS needs the resources (Slurm's per-QoS
    PreemptMode): ``"off"`` (never preempted), ``"requeue"`` (job goes
    back to pending) or ``"cancel"`` (job ends as PREEMPTED).
    """

    name: str
    priority: int = 0
    max_jobs_per_user: Optional[int] = None
    max_tres_per_user: Optional[TRES] = None
    max_wall: Optional[float] = None
    preempt_mode: str = "off"

    def __post_init__(self) -> None:
        if self.preempt_mode not in ("off", "requeue", "cancel"):
            raise ValueError(
                f"QoS {self.name!r}: preempt_mode must be off/requeue/cancel"
            )


@dataclass
class Association:
    """A (account, user) association with group resource limits.

    ``grp_tres`` caps the *account's* concurrently allocated resources —
    exceeding it yields the AssocGrpCpuLimit pending reason the paper
    explains to users (§4.1).  ``grp_gpu_hours_limit`` models the paper's
    "limit on the hours of GPU usage" (§3.4) accumulated over the
    accounting period.
    """

    account: str
    user: str = ""  # "" = the account-level association
    grp_tres: Optional[TRES] = None
    grp_gpu_hours_limit: Optional[float] = None
    max_jobs: Optional[int] = None
    fairshare: int = 1

    @property
    def key(self) -> tuple[str, str]:
        return (self.account, self.user)


@dataclass
class AssociationUsage:
    """Live usage counters slurmctld keeps per account association."""

    alloc: TRES = field(default_factory=TRES)
    running_jobs: int = 0
    gpu_hours_used: float = 0.0
    cpu_hours_used: float = 0.0


@dataclass
class Reservation:
    """A Slurm reservation: nodes set aside for a time window.

    The scheduler will not start a job on reserved nodes if the job's
    time limit would overlap the window (how Slurm protects maintenance
    windows from long jobs submitted beforehand).
    """

    name: str
    start: float
    end: float
    node_names: List[str]
    flags: str = "MAINT"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"reservation {self.name!r} has a non-positive window")
        if not self.node_names:
            raise ValueError(f"reservation {self.name!r} covers no nodes")

    def overlaps(self, start: float, end: float) -> bool:
        """True if [start, end) intersects the reservation window."""
        return start < self.end and end > self.start

    def is_active(self, now: float) -> bool:
        """True while ``now`` is inside the reservation window."""
        return self.start <= now < self.end


#: Exit code rendering as sacct shows it ("0:0" = code:signal).
def format_exit_code(code: int, signal: int = 0) -> str:
    """Render an exit code sacct-style ("0:0" = code:signal)."""
    return f"{code}:{signal}"
