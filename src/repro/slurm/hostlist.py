"""Slurm hostlist expressions: ``a[001-003,005]`` <-> explicit node names.

Slurm command output compresses node lists (``NodeList=a[001-004]``) and
the dashboard must expand them to link each node to its Node Overview
page.  We implement both directions with Slurm's zero-padding semantics.
"""

from __future__ import annotations

import re
from typing import Iterable, List

_RANGE_RE = re.compile(r"^(?P<prefix>.*?)\[(?P<body>[^\]]+)\](?P<suffix>.*)$")
_NUM_SUFFIX_RE = re.compile(r"^(?P<prefix>.*?)(?P<num>\d+)$")


def expand_hostlist(expr: str) -> List[str]:
    """Expand a Slurm hostlist expression into explicit host names.

    >>> expand_hostlist("a[001-003,007]")
    ['a001', 'a002', 'a003', 'a007']
    >>> expand_hostlist("gpu01,gpu02")
    ['gpu01', 'gpu02']
    >>> expand_hostlist("")
    []
    >>> expand_hostlist("r[1-2]n[1-2]")
    ['r1n1', 'r1n2', 'r2n1', 'r2n2']
    """
    expr = expr.strip()
    if not expr:
        return []
    hosts: List[str] = []
    for part in _split_top_level(expr):
        m = _RANGE_RE.match(part)
        if not m:
            hosts.append(part)
            continue
        prefix, body, suffix = m.group("prefix"), m.group("body"), m.group("suffix")
        # the regex matches the FIRST bracket group only; a suffix like
        # "n[1-2]" holds further groups, so recurse and take the
        # cartesian product — Slurm emits r1n1, r1n2, r2n1, r2n2 for
        # "r[1-2]n[1-2]"
        suffixes = expand_hostlist(suffix) if suffix else [""]
        for piece in body.split(","):
            piece = piece.strip()
            if "-" in piece:
                lo_s, _, hi_s = piece.partition("-")
                width = len(lo_s) if lo_s.startswith("0") else 0
                lo, hi = int(lo_s), int(hi_s)
                if hi < lo:
                    raise ValueError(f"descending range in hostlist: {piece!r}")
                for i in range(lo, hi + 1):
                    for tail in suffixes:
                        hosts.append(f"{prefix}{i:0{width}d}{tail}")
            else:
                for tail in suffixes:
                    hosts.append(f"{prefix}{piece}{tail}")
    return hosts


def _split_top_level(expr: str) -> List[str]:
    """Split on commas that are not inside brackets."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in expr:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced brackets in hostlist {expr!r}")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ValueError(f"unbalanced brackets in hostlist {expr!r}")
    if current:
        parts.append("".join(current))
    return [p for p in (s.strip() for s in parts) if p]


def compress_hostlist(hosts: Iterable[str]) -> str:
    """Compress host names into Slurm's bracketed range notation.

    Hosts are grouped by (prefix, zero-pad width); consecutive numbers
    collapse into ranges.  Order of groups follows first appearance.

    >>> compress_hostlist(["a001", "a002", "a003", "a007"])
    'a[001-003,007]'
    >>> compress_hostlist(["login"])
    'login'
    """
    groups: dict[tuple[str, int], list[int]] = {}
    order: list[tuple[str, int]] = []
    plain: list[str] = []
    for host in hosts:
        m = _NUM_SUFFIX_RE.match(host)
        if not m:
            plain.append(host)
            continue
        num_s = m.group("num")
        width = len(num_s) if num_s.startswith("0") else 0
        key = (m.group("prefix"), width)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(int(num_s))

    out: list[str] = list(dict.fromkeys(plain))
    for prefix, width in order:
        nums = sorted(set(groups[(prefix, width)]))
        ranges: list[str] = []
        start = prev = nums[0]
        for n in nums[1:]:
            if n == prev + 1:
                prev = n
                continue
            ranges.append(_fmt_range(start, prev, width))
            start = prev = n
        ranges.append(_fmt_range(start, prev, width))
        if len(ranges) == 1 and "-" not in ranges[0]:
            out.append(f"{prefix}{ranges[0]}")
        else:
            out.append(f"{prefix}[{','.join(ranges)}]")
    return ",".join(out)


def _fmt_range(lo: int, hi: int, width: int) -> str:
    if lo == hi:
        return f"{lo:0{width}d}"
    return f"{lo:0{width}d}-{hi:0{width}d}"
