"""Synthetic workload generator.

Substitutes for the production traffic on Purdue's clusters.  It creates a
user/account population, then drives the cluster with a mixed job stream
whose shape matches what the paper describes:

* batch CPU jobs with decent efficiency;
* multi-node MPI jobs;
* GPU training jobs (so GPU-hour charts have content, §4.2);
* **interactive Open OnDemand app jobs** (Jupyter, RStudio, MATLAB, VS
  Code) with deliberately low efficiency — the paper singles these out:
  "It is common to see low efficiency on interactive app jobs such as
  Jupyter Notebook jobs where users will request many CPUs and a long
  time limit and only use it for a short period of time" (§4.3);
* job arrays (Job Overview's array tab, §7);
* a tail of failures, timeouts and OOM kills so every job state appears.

Everything is driven by named RNG streams off one seed, so a given seed
reproduces the identical cluster history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.auth.users import Directory
from repro.sim.rng import RandomStreams, bounded_lognormal, zipf_weights

from .cluster import SlurmCluster
from .model import Association, InteractiveSessionInfo, JobSpec, TRES

#: Interactive apps the OOD substrate ships with (matches repro.ood registry).
INTERACTIVE_APPS = ("jupyter", "rstudio", "matlab", "vscode")

FIRST_NAMES = [
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
    "ivan", "judy", "mallory", "niaj", "olivia", "peggy", "quentin",
    "rupert", "sybil", "trent", "ursula", "victor", "wendy", "xavier",
    "yolanda", "zach",
]

LAB_THEMES = [
    "physics", "chem", "bio", "astro", "ml", "cfd", "genomics", "climate",
    "materials", "neuro", "quantum", "geo",
]

JOB_NAME_STEMS = [
    "md_run", "train_resnet", "vasp_relax", "blast_search", "wrf_forecast",
    "cfd_mesh", "qchem_opt", "align_reads", "spark_etl", "lammps_eq",
    "fft_bench", "mc_sweep",
]


@dataclass
class WorkloadConfig:
    """Knobs for the synthetic population and job mix."""

    seed: int = 2025
    n_users: int = 12
    n_accounts: int = 4
    #: mean seconds between submissions (exponential inter-arrival)
    mean_interarrival_s: float = 150.0
    #: probability weights of each job template
    mix: Dict[str, float] = field(
        default_factory=lambda: {
            "batch_cpu": 0.40,
            "mpi": 0.08,
            "gpu_train": 0.09,
            "interactive": 0.23,
            "array": 0.05,
            "pipeline": 0.05,
            "failing": 0.05,
            "timeout": 0.03,
            "oom": 0.02,
        }
    )
    #: per-account group CPU limit (None = unlimited)
    grp_cpu_limit: Optional[int] = 320
    grp_gpu_limit: Optional[int] = 8
    gpu_hours_budget: Optional[float] = 5000.0


@dataclass
class WorkloadResult:
    """What the generator produced, for assertions and reporting."""

    submitted: int = 0
    by_template: Dict[str, int] = field(default_factory=dict)
    users: List[str] = field(default_factory=list)
    accounts: List[str] = field(default_factory=list)


class WorkloadGenerator:
    """Drives a :class:`SlurmCluster` with a reproducible job stream."""

    def __init__(self, config: Optional[WorkloadConfig] = None):
        self.config = config or WorkloadConfig()
        self.streams = RandomStreams(self.config.seed)

    # -- population ---------------------------------------------------------

    def build_directory(self) -> Directory:
        """Users and accounts; every account gets a manager (its first
        member) for the export-permission tests (§3.4)."""
        cfg = self.config
        directory = Directory()
        usernames = [FIRST_NAMES[i % len(FIRST_NAMES)] + ("" if i < len(FIRST_NAMES) else str(i)) for i in range(cfg.n_users)]
        for name in usernames:
            directory.add_user(name, full_name=name.capitalize())
        gen = self.streams.stream("population")
        for i in range(cfg.n_accounts):
            theme = LAB_THEMES[i % len(LAB_THEMES)]
            account = f"{theme}-lab"
            size = int(gen.integers(2, max(3, cfg.n_users // cfg.n_accounts + 3)))
            members = [
                str(m)
                for m in gen.choice(
                    usernames, size=min(size, len(usernames)), replace=False
                )
            ]
            # Ensure overlap: every user belongs somewhere.
            directory.add_account(
                account,
                members=members,
                managers=[members[0]],
                description=f"{theme.capitalize()} research group allocation",
            )
        # attach orphan users to the first account
        first = directory.accounts()[0]
        for name in usernames:
            if not directory.accounts_of(name):
                first.members.append(name)
        return directory

    def associations(self, directory: Directory) -> List[Association]:
        """Account-level associations with the configured group limits."""
        cfg = self.config
        out = []
        for acct in directory.accounts():
            out.append(
                Association(
                    account=acct.name,
                    grp_tres=TRES(
                        cpus=cfg.grp_cpu_limit or 0, gpus=cfg.grp_gpu_limit or 0
                    )
                    if cfg.grp_cpu_limit or cfg.grp_gpu_limit
                    else None,
                    grp_gpu_hours_limit=cfg.gpu_hours_budget,
                )
            )
        return out

    # -- job templates ---------------------------------------------------------

    def _pick_user_account(self, directory: Directory) -> Tuple[str, str]:
        gen = self.streams.stream("actors")
        users = [u.username for u in directory.users()]
        weights = zipf_weights(len(users))
        user = str(gen.choice(users, p=weights))
        accounts = directory.account_names_of(user)
        account = str(gen.choice(accounts))
        return user, account

    def make_spec(
        self, template: str, directory: Directory, cluster: SlurmCluster
    ) -> JobSpec:
        """Build one JobSpec for the named template."""
        gen = self.streams.stream(f"tmpl:{template}")
        user, account = self._pick_user_account(directory)
        cpu_part = cluster.default_partition().name
        gpu_part = next(
            (
                p.name
                for p in cluster.partitions.values()
                if any(cluster.nodes[n].gpus for n in p.node_names)
            ),
            cpu_part,
        )
        stem = str(gen.choice(JOB_NAME_STEMS))

        if template == "batch_cpu":
            cpus = int(gen.choice([1, 2, 4, 8, 16, 32]))
            runtime = bounded_lognormal(gen, 1800, 1.0, 60, 4 * 3600)
            return JobSpec(
                name=stem,
                user=user,
                account=account,
                partition=cpu_part,
                req=TRES(cpus=cpus, mem_mb=cpus * 2000, nodes=1),
                time_limit=runtime * float(gen.uniform(1.2, 4.0)),
                actual_runtime=runtime,
                actual_cpu_utilization=float(gen.uniform(0.7, 0.98)),
                work_dir=f"/home/{user}/{stem}",
                std_out=f"/home/{user}/{stem}/slurm-%j.out",
                std_err=f"/home/{user}/{stem}/slurm-%j.err",
            )
        if template == "mpi":
            nodes = int(gen.choice([2, 4]))
            cpus = nodes * 64
            runtime = bounded_lognormal(gen, 3600, 0.8, 300, 8 * 3600)
            return JobSpec(
                name=f"{stem}_mpi",
                user=user,
                account=account,
                partition=cpu_part,
                req=TRES(cpus=cpus, mem_mb=nodes * 120_000, nodes=nodes),
                time_limit=runtime * float(gen.uniform(1.3, 3.0)),
                actual_runtime=runtime,
                actual_cpu_utilization=float(gen.uniform(0.8, 0.99)),
            )
        if template == "gpu_train":
            gpus = int(gen.choice([1, 1, 2]))
            runtime = bounded_lognormal(gen, 3600, 0.7, 600, 8 * 3600)
            return JobSpec(
                name=f"train_{stem}",
                user=user,
                account=account,
                partition=gpu_part,
                req=TRES(cpus=gpus * 8, mem_mb=gpus * 32_000, gpus=gpus, nodes=1),
                time_limit=runtime * float(gen.uniform(1.2, 2.5)),
                actual_runtime=runtime,
                actual_cpu_utilization=float(gen.uniform(0.3, 0.8)),
                actual_gpu_utilization=float(gen.uniform(0.4, 0.95)),
            )
        if template == "interactive":
            app = str(gen.choice(list(INTERACTIVE_APPS)))
            cpus = int(gen.choice([4, 8, 16, 32]))  # over-requested, per §4.3
            limit = float(gen.choice([4, 8, 12]) * 3600)
            active = bounded_lognormal(gen, 1500, 0.8, 120, limit * 0.9)
            session_id = f"{app}-{int(gen.integers(10_000, 99_999))}"
            return JobSpec(
                name=f"sys/dashboard/{app}",
                user=user,
                account=account,
                partition=cpu_part,
                req=TRES(cpus=cpus, mem_mb=cpus * 4000, nodes=1),
                time_limit=limit,
                actual_runtime=active,
                actual_cpu_utilization=float(gen.uniform(0.02, 0.20)),
                interactive=InteractiveSessionInfo(
                    app_name=app,
                    session_id=session_id,
                    working_dir=f"/home/{user}/ondemand/data/sys/dashboard/batch_connect/{session_id}",
                ),
            )
        if template == "pipeline":
            # stage 1 of a two-stage chain; run() submits stage 2 with a
            # dependency on the returned job
            runtime = bounded_lognormal(gen, 1200, 0.6, 120, 2 * 3600)
            return JobSpec(
                name=f"{stem}_stage1",
                user=user,
                account=account,
                partition=cpu_part,
                req=TRES(cpus=8, mem_mb=16_000, nodes=1),
                time_limit=runtime * 2,
                actual_runtime=runtime,
                actual_cpu_utilization=float(gen.uniform(0.6, 0.95)),
            )
        if template == "array":
            tasks = int(gen.choice([4, 8, 16]))
            runtime = bounded_lognormal(gen, 900, 0.6, 60, 2 * 3600)
            return JobSpec(
                name=f"{stem}_array",
                user=user,
                account=account,
                partition=cpu_part,
                req=TRES(cpus=2, mem_mb=4000, nodes=1),
                time_limit=runtime * 2,
                actual_runtime=runtime,
                actual_cpu_utilization=float(gen.uniform(0.6, 0.95)),
                array_size=tasks,
            )
        if template == "failing":
            runtime = bounded_lognormal(gen, 300, 0.8, 10, 3600)
            return JobSpec(
                name=f"{stem}_dbg",
                user=user,
                account=account,
                partition=cpu_part,
                req=TRES(cpus=4, mem_mb=8000, nodes=1),
                time_limit=2 * 3600,
                actual_runtime=runtime,
                actual_cpu_utilization=float(gen.uniform(0.2, 0.8)),
                exit_code=int(gen.choice([1, 2, 127])),
            )
        if template == "timeout":
            limit = float(gen.choice([1, 2]) * 1800)
            return JobSpec(
                name=f"{stem}_long",
                user=user,
                account=account,
                partition=cpu_part,
                req=TRES(cpus=8, mem_mb=16_000, nodes=1),
                time_limit=limit,
                actual_runtime=limit * float(gen.uniform(1.5, 3.0)),
                actual_cpu_utilization=float(gen.uniform(0.6, 0.95)),
            )
        if template == "oom":
            return JobSpec(
                name=f"{stem}_bigmem",
                user=user,
                account=account,
                partition=cpu_part,
                req=TRES(cpus=4, mem_mb=8000, nodes=1),
                time_limit=3600,
                actual_runtime=float(gen.uniform(120, 1800)),
                actual_cpu_utilization=float(gen.uniform(0.3, 0.9)),
                actual_max_rss_mb=int(gen.integers(9000, 20_000)),
            )
        raise ValueError(f"unknown template {template!r}")

    # -- driving -----------------------------------------------------------

    def run(
        self,
        cluster: SlurmCluster,
        directory: Directory,
        duration_s: float,
        drain: bool = False,
    ) -> WorkloadResult:
        """Submit a stream of jobs over ``duration_s`` of simulated time.

        With ``drain=True`` the simulation keeps running after the last
        submission until the queue empties (useful for pure-history
        populations); otherwise the cluster is left mid-flight with
        pending and running jobs, which is what the live dashboard pages
        want to show.
        """
        cfg = self.config
        arrivals = self.streams.stream("arrivals")
        mix_names = list(cfg.mix)
        mix_p = np.array([cfg.mix[k] for k in mix_names], dtype=float)
        mix_p = mix_p / mix_p.sum()
        chooser = self.streams.stream("mix")

        result = WorkloadResult(
            users=[u.username for u in directory.users()],
            accounts=[a.name for a in directory.accounts()],
        )
        t = 0.0
        submissions: List[Tuple[float, str]] = []
        while True:
            t += float(arrivals.exponential(cfg.mean_interarrival_s))
            if t >= duration_s:
                break
            submissions.append((t, str(chooser.choice(mix_names, p=mix_p))))

        start = cluster.now()
        for offset, template in submissions:
            cluster.loop.run_until(start + offset)
            spec = self.make_spec(template, directory, cluster)
            jobs = cluster.submit(spec)
            result.submitted += 1
            result.by_template[template] = result.by_template.get(template, 0) + 1
            if template == "pipeline":
                # stage 2 depends on stage 1 (afterok)
                gen = self.streams.stream("tmpl:pipeline2")
                runtime = bounded_lognormal(gen, 900, 0.5, 60, 3600)
                stage2 = JobSpec(
                    name=spec.name.replace("_stage1", "_stage2"),
                    user=spec.user,
                    account=spec.account,
                    partition=spec.partition,
                    req=TRES(cpus=4, mem_mb=8000, nodes=1),
                    time_limit=runtime * 2,
                    actual_runtime=runtime,
                    actual_cpu_utilization=float(gen.uniform(0.6, 0.95)),
                    depends_on=[jobs[0].job_id],
                )
                cluster.submit(stage2)
                result.submitted += 1
                result.by_template["pipeline"] = result.by_template["pipeline"] + 1
        cluster.loop.run_until(start + duration_s)
        if drain:
            # The periodic scheduler event keeps the loop non-empty forever,
            # so "drain" means: advance until no live jobs remain.
            sched = cluster.scheduler
            guard = 0
            while sched.pending_jobs() or sched.running_jobs():
                cluster.loop.run_for(600)
                guard += 1
                if guard > 100_000:
                    raise RuntimeError("workload drain did not converge")
        return result


def populated_cluster(
    seed: int = 2025,
    duration_hours: float = 24.0,
    config: Optional[WorkloadConfig] = None,
    cluster: Optional[SlurmCluster] = None,
    drain: bool = False,
) -> Tuple[SlurmCluster, Directory, WorkloadResult]:
    """One-call fixture: a cluster with history, live jobs, users, accounts.

    Used across tests, examples and benchmarks as the standard stand-in
    for a production cluster.
    """
    from .cluster import small_test_cluster

    cfg = config or WorkloadConfig(seed=seed)
    gen = WorkloadGenerator(cfg)
    directory = gen.build_directory()
    if cluster is None:
        cluster = small_test_cluster(associations=gen.associations(directory))
    else:
        for assoc in gen.associations(directory):
            cluster.scheduler.associations.setdefault(assoc.account, assoc)
    result = gen.run(cluster, directory, duration_hours * 3600.0, drain=drain)
    return cluster, directory, result
