"""Per-job GPU telemetry — the "additional tools" of paper §4.1.

The paper ships CPU/memory efficiency but notes: "As additional tools
are necessary to collect job-level GPU efficiency, this work only
includes efficiency warnings for CPU and memory. The implementation of
GPU efficiency is currently underway."

This module is that additional tool, modeled on a DCGM-style collector:
it samples each running job's GPU utilization and accumulates *used*
GPU-seconds, independent of Slurm accounting (which only knows GPUs
were *allocated*).  The dashboard consumes it as an optional data
source, so GPU efficiency ships as the paper's documented extension,
off by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .model import Job


@dataclass
class GpuUsageRecord:
    """Accumulated GPU usage for one job."""

    job_id: int
    gpus_allocated: int
    gpu_seconds_allocated: float
    gpu_seconds_used: float

    @property
    def efficiency(self) -> Optional[float]:
        """GPU efficiency fraction for a job, or None."""
        if self.gpu_seconds_allocated <= 0:
            return None
        return min(1.0, self.gpu_seconds_used / self.gpu_seconds_allocated)


class GpuTelemetry:
    """Cluster-wide job-level GPU usage collector (DCGM-agent stand-in)."""

    def __init__(self) -> None:
        self._records: Dict[int, GpuUsageRecord] = {}
        self.queries = 0  # instrumentation for Table-1-style source checks

    def record_job_end(self, job: Job, now: float) -> None:
        """Called when a job retires; no-op for CPU-only jobs."""
        if job.req.gpus <= 0:
            return
        elapsed = job.elapsed(now)
        allocated = elapsed * job.req.gpus
        used = allocated * job.spec.actual_gpu_utilization
        self._records[job.job_id] = GpuUsageRecord(
            job_id=job.job_id,
            gpus_allocated=job.req.gpus,
            gpu_seconds_allocated=allocated,
            gpu_seconds_used=used,
        )

    def usage(self, job_id: int) -> Optional[GpuUsageRecord]:
        """The per-job record, or None for CPU jobs / unknown ids."""
        self.queries += 1
        return self._records.get(job_id)

    def efficiency(self, job_id: int) -> Optional[float]:
        """GPU efficiency fraction for a job, or None when untracked."""
        rec = self.usage(job_id)
        return rec.efficiency if rec is not None else None

    def __len__(self) -> int:
        return len(self._records)
