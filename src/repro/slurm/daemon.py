"""RPC load/latency model for the Slurm daemons.

Paper §3.2: "Because the squeue command queries Slurm's central management
daemon (slurmctld) — which also handles all job allocation — rather than
Slurm's database daemon (slurmdbd), querying squeue too frequently could
slow down slurmctld, causing delayed responses when running job allocation
commands."  The dashboard's whole caching design exists to reduce this
load, so we need a load model to *measure* the claim (bench P1/P2).

Model
-----
Each daemon is an M/M/1-flavoured service: an RPC has a base service time,
and the *effective* latency grows with the daemon's recent request rate
relative to its capacity:

    latency = base * (1 + (rate / capacity)^2)        (rate < capacity)
    latency = base * (1 + saturation_penalty * ...)   (rate >= capacity)

Recent rate is measured over a sliding window of simulated time.  The
quadratic keeps low traffic cheap and makes pile-ups visibly expensive —
enough to reproduce the paper's qualitative claim without pretending to be
a queueing-theory paper.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Iterator, List, Optional, Tuple

from repro.sim.clock import SimClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan
    from repro.obs import MetricsRegistry


@dataclass
class DaemonConfig:
    """Capacity/latency parameters for one daemon."""

    name: str
    base_latency_s: float = 0.020  # service time of one RPC, unloaded
    capacity_rps: float = 50.0  # sustainable requests/second
    window_s: float = 60.0  # sliding window for rate measurement
    saturation_penalty: float = 8.0


class DaemonLoadModel:
    """Tracks RPC traffic against one daemon and prices each call."""

    def __init__(self, config: DaemonConfig, clock: SimClock):
        self.config = config
        self.clock = clock
        self._events: Deque[Tuple[float, str]] = deque()
        self.total_rpcs = 0
        self.failed_rpcs = 0
        self.rpcs_by_kind: Dict[str, int] = defaultdict(int)
        self._latency_sum = 0.0
        #: compute blocks currently in flight against this daemon (tracked
        #: by :meth:`DaemonBus.inflight`) and the lifetime high-water mark —
        #: the bulkhead benchmarks assert the mark never exceeds the limit
        self.inflight = 0
        self.max_inflight = 0
        #: chaos schedule consulted on every RPC (None = healthy daemon)
        self.faults: Optional["FaultPlan"] = None

    # -- recording ----------------------------------------------------------

    def record_rpc(self, kind: str) -> float:
        """Record one RPC of ``kind``; returns its simulated latency (s).

        When a :class:`~repro.faults.plan.FaultPlan` is installed, the
        RPC may instead raise
        :class:`~repro.faults.errors.DaemonUnavailableError` (outage or
        flaky window), and active slowdown windows inflate the returned
        latency.  A refused connection never lands on the daemon, so it
        is counted separately and does not load the rate window.
        """
        now = self.clock.now()
        if self.faults is not None:
            try:
                self.faults.check(self.config.name, now)
            except Exception:
                self.failed_rpcs += 1
                raise
        self._events.append((now, kind))
        self.total_rpcs += 1
        self.rpcs_by_kind[kind] += 1
        latency = self.latency_at(now)
        if self.faults is not None:
            latency += self.faults.extra_latency(self.config.name, now)
        self._latency_sum += latency
        return latency

    # -- measurement ----------------------------------------------------------

    def _trim(self, now: float) -> None:
        horizon = now - self.config.window_s
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def recent_rate(self, now: float | None = None) -> float:
        """RPCs per second over the sliding window."""
        if now is None:
            now = self.clock.now()
        self._trim(now)
        return len(self._events) / self.config.window_s

    def latency_at(self, now: float | None = None) -> float:
        """Current RPC latency under the load model."""
        rate = self.recent_rate(now)
        cfg = self.config
        util = rate / cfg.capacity_rps
        if util < 1.0:
            return cfg.base_latency_s * (1.0 + util * util)
        overload = util - 1.0
        return cfg.base_latency_s * (2.0 + cfg.saturation_penalty * overload)

    @property
    def mean_latency(self) -> float:
        if self.total_rpcs == 0:
            return 0.0
        return self._latency_sum / self.total_rpcs

    def snapshot(self) -> dict:
        """Current counters/rates/latency as a dict."""
        now = self.clock.now()
        return {
            "daemon": self.config.name,
            "total_rpcs": self.total_rpcs,
            "failed_rpcs": self.failed_rpcs,
            "recent_rate_rps": round(self.recent_rate(now), 4),
            "current_latency_s": round(self.latency_at(now), 6),
            "mean_latency_s": round(self.mean_latency, 6),
            "rpcs_by_kind": dict(self.rpcs_by_kind),
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
        }

    def reset_counters(self) -> None:
        """Zero the RPC counters and the sliding window."""
        self.total_rpcs = 0
        self.failed_rpcs = 0
        self.rpcs_by_kind.clear()
        self._latency_sum = 0.0
        self._events.clear()
        self.max_inflight = self.inflight  # currently-running work still counts


class LatencyProbe:
    """Observes the RPC latencies issued while a probe is active, so the
    fetch path can enforce a per-source timeout on whatever the compute
    block did (one RPC or several)."""

    __slots__ = ("max_latency_s", "rpcs")

    def __init__(self) -> None:
        self.max_latency_s = 0.0
        self.rpcs = 0

    def observe(self, latency_s: float) -> None:
        self.rpcs += 1
        if latency_s > self.max_latency_s:
            self.max_latency_s = latency_s


class DaemonBus:
    """Routes command-layer traffic to the right daemon, Slurm-style.

    ``squeue``, ``sinfo`` and ``scontrol`` hit **slurmctld**; ``sacct``
    hits **slurmdbd**.  The dashboard's backend caching exists precisely to
    keep the ctld column of this table small.
    """

    CTLD_COMMANDS = frozenset({"squeue", "sinfo", "scontrol", "salloc", "sbatch"})
    DBD_COMMANDS = frozenset({"sacct", "sreport", "sshare"})

    def __init__(self, clock: SimClock, ctld: DaemonConfig | None = None, dbd: DaemonConfig | None = None):
        self.ctld = DaemonLoadModel(ctld or DaemonConfig(name="slurmctld"), clock)
        self.dbd = DaemonLoadModel(
            dbd or DaemonConfig(name="slurmdbd", base_latency_s=0.050, capacity_rps=200.0),
            clock,
        )
        self.faults: Optional["FaultPlan"] = None
        self._probe_local = threading.local()
        self._inflight_lock = threading.Lock()
        #: metrics registry (None until a dashboard attaches one)
        self.metrics: Optional["MetricsRegistry"] = None
        self._rpc_total = None
        self._rpc_failed = None
        self._rpc_latency = None

    # -- observability --------------------------------------------------------

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Report every subsequent RPC into ``registry`` — count, failure
        count, and simulated latency histogram, labeled per daemon."""
        self.metrics = registry
        self._rpc_total = registry.counter(
            "repro_daemon_rpcs_total",
            "Simulated daemon RPCs by daemon and command kind.",
            ("daemon", "kind"),
        )
        self._rpc_failed = registry.counter(
            "repro_daemon_rpcs_failed_total",
            "RPCs refused by an injected fault, per daemon.",
            ("daemon",),
        )
        self._rpc_latency = registry.histogram(
            "repro_daemon_rpc_latency_seconds",
            "Simulated RPC latency from the daemon load model.",
            ("daemon",),
        )

    # -- fault injection ------------------------------------------------------

    def install_faults(self, plan: Optional["FaultPlan"]) -> None:
        """Install (or with ``None`` remove) a chaos schedule on both
        daemons.  Every subsequent RPC consults the plan."""
        self.faults = plan
        self.ctld.faults = plan
        self.dbd.faults = plan

    # -- latency probing ------------------------------------------------------

    def _probe_stack(self) -> List[LatencyProbe]:
        stack = getattr(self._probe_local, "stack", None)
        if stack is None:
            stack = self._probe_local.stack = []
        return stack

    @contextmanager
    def measure(self) -> Iterator[LatencyProbe]:
        """Context manager: observe every RPC latency this *thread* records
        while the block runs (the fetch path's timeout instrument)."""
        probe = LatencyProbe()
        stack = self._probe_stack()
        stack.append(probe)
        try:
            yield probe
        finally:
            stack.remove(probe)

    @contextmanager
    def inflight(self, daemon: str) -> Iterator[None]:
        """Track one compute block in flight against ``daemon`` — the
        concurrency the bulkheads exist to bound.  Unknown service names
        (news, storage: not daemons) are a no-op."""
        model: Optional[DaemonLoadModel]
        if daemon == "slurmctld":
            model = self.ctld
        elif daemon == "slurmdbd":
            model = self.dbd
        else:
            model = None
        if model is None:
            yield
            return
        with self._inflight_lock:
            model.inflight += 1
            model.max_inflight = max(model.max_inflight, model.inflight)
        try:
            yield
        finally:
            with self._inflight_lock:
                model.inflight -= 1

    def model_for(self, command: str) -> DaemonLoadModel:
        """The daemon model that serves a given command."""
        if command in self.CTLD_COMMANDS:
            return self.ctld
        if command in self.DBD_COMMANDS:
            return self.dbd
        raise ValueError(f"unknown Slurm command {command!r}")

    def record(self, command: str, kind: str = "") -> float:
        """Record an RPC for ``command``; returns simulated latency."""
        model = self.model_for(command)
        try:
            latency = model.record_rpc(kind or command)
        except Exception:
            if self._rpc_failed is not None:
                self._rpc_failed.inc(daemon=model.config.name)
            raise
        if self._rpc_total is not None:
            self._rpc_total.inc(daemon=model.config.name, kind=kind or command)
            self._rpc_latency.observe(latency, daemon=model.config.name)
        for probe in self._probe_stack():
            probe.observe(latency)
        return latency

    def snapshot(self) -> dict:
        """Snapshots of both daemons, keyed by daemon name."""
        return {"slurmctld": self.ctld.snapshot(), "slurmdbd": self.dbd.snapshot()}

    def rpc_totals(self) -> dict:
        """Cumulative RPC counts per daemon — cheap to diff around a
        request window (the load harness A/B uses this to prove a route
        cost zero on-request ctld RPCs)."""
        return {
            "slurmctld": self.ctld.total_rpcs,
            "slurmdbd": self.dbd.total_rpcs,
        }

    def reset_counters(self) -> None:
        """Zero both daemons' counters."""
        self.ctld.reset_counters()
        self.dbd.reset_counters()
