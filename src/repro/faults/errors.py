"""Failure vocabulary for the fault-injection and resilience layers.

Every injected or detected failure surfaces as a :class:`DaemonError`
subclass, so the fetch path and the route layer can treat "the backend
is misbehaving" uniformly — retry it, trip a breaker on it, serve stale
for it, or turn it into a structured 503 — without ever letting a raw
traceback reach the browser.
"""

from __future__ import annotations


class FaultConfigError(ValueError):
    """A fault schedule is malformed: zero-length or negative-duration
    window, or two windows of the same kind overlapping on the same
    target.  Subclasses :class:`ValueError` so existing callers catching
    the old untyped validation errors keep working.

    Attributes
    ----------
    reason:
        Machine-readable tag: ``"empty-window"``, ``"inverted-window"``,
        or ``"overlap"``.
    """

    def __init__(self, reason: str, message: str):
        self.reason = reason
        super().__init__(message)


class DaemonError(RuntimeError):
    """Base class for backend-service failures (daemons and external APIs).

    Attributes
    ----------
    daemon:
        Name of the failing service ("slurmctld", "slurmdbd", "news", ...).
    command:
        The command-line tool in flight when the failure hit, if any
        (annotated by :class:`~repro.slurm.commands.base.SlurmCommand`).
    """

    def __init__(self, daemon: str, message: str = ""):
        self.daemon = daemon
        self.command: str = ""
        super().__init__(message or f"{daemon} failed")


class DaemonUnavailableError(DaemonError):
    """The daemon refused the connection: hard outage or injected error."""

    def __init__(self, daemon: str, reason: str = "unavailable"):
        self.reason = reason
        super().__init__(daemon, f"{daemon} is unavailable ({reason})")


class DaemonTimeoutError(DaemonError):
    """The daemon answered, but slower than the caller's budget allows."""

    def __init__(self, daemon: str, latency_s: float, timeout_s: float):
        self.latency_s = latency_s
        self.timeout_s = timeout_s
        super().__init__(
            daemon,
            f"{daemon} RPC took {latency_s:.3f}s (timeout {timeout_s:.3f}s)",
        )


class CircuitOpenError(DaemonError):
    """The circuit breaker for this daemon is open — fail fast, no RPC."""

    def __init__(self, daemon: str, retry_after_s: float = 0.0):
        self.retry_after_s = retry_after_s
        super().__init__(
            daemon,
            f"circuit breaker for {daemon} is open "
            f"(retry in {retry_after_s:.0f}s)",
        )


class AdmissionError(DaemonError):
    """Base for admission-control rejections (deadline, bulkhead).

    Subclasses :class:`DaemonError` so the cache's serve-stale rescue
    applies — a rejected request still prefers stale data over an error
    — but the fetch path re-raises these *unwrapped* so the route layer
    can map them to their own status codes (504 / 429) instead of the
    generic 503.  Admission rejections are never counted against the
    backend's circuit breaker: the backend did nothing wrong.
    """

    def __init__(self, daemon: str, message: str, retry_after_s: float = 1.0):
        self.retry_after_s = retry_after_s
        super().__init__(daemon, message)


class DeadlineExceededError(AdmissionError):
    """The request's time budget ran out before an attempt could finish —
    the retry loop stops scheduling work the client would never see.
    The route layer maps this to a structured HTTP 504."""

    def __init__(self, daemon: str, budget_s: float, elapsed_s: float,
                 retry_after_s: float = 1.0):
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s
        super().__init__(
            daemon,
            f"deadline of {budget_s:.3f}s exhausted after {elapsed_s:.3f}s "
            f"waiting on {daemon}",
            retry_after_s=retry_after_s,
        )


class BulkheadSaturatedError(AdmissionError):
    """The per-service bulkhead is full (all slots busy, wait queue at
    capacity) — the request is rejected instead of piling onto a stuck
    backend.  The route layer maps this to HTTP 429 + ``Retry-After``."""

    def __init__(self, daemon: str, retry_after_s: float = 1.0,
                 reason: str = "queue full"):
        self.reason = reason
        super().__init__(
            daemon,
            f"bulkhead for {daemon} is saturated ({reason}); "
            f"retry in {retry_after_s:.0f}s",
            retry_after_s=retry_after_s,
        )


class SourceUnavailableError(DaemonError):
    """A data source could not be served at all: every attempt failed and
    the cache held no stale copy to fall back on.  The route layer maps
    this to a structured HTTP 503."""

    def __init__(self, source: str, daemon: str, cause: DaemonError):
        self.source = source
        self.cause = cause
        super().__init__(
            daemon,
            f"data source {source!r} unavailable: {cause}",
        )
