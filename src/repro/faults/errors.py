"""Failure vocabulary for the fault-injection and resilience layers.

Every injected or detected failure surfaces as a :class:`DaemonError`
subclass, so the fetch path and the route layer can treat "the backend
is misbehaving" uniformly — retry it, trip a breaker on it, serve stale
for it, or turn it into a structured 503 — without ever letting a raw
traceback reach the browser.
"""

from __future__ import annotations


class DaemonError(RuntimeError):
    """Base class for backend-service failures (daemons and external APIs).

    Attributes
    ----------
    daemon:
        Name of the failing service ("slurmctld", "slurmdbd", "news", ...).
    command:
        The command-line tool in flight when the failure hit, if any
        (annotated by :class:`~repro.slurm.commands.base.SlurmCommand`).
    """

    def __init__(self, daemon: str, message: str = ""):
        self.daemon = daemon
        self.command: str = ""
        super().__init__(message or f"{daemon} failed")


class DaemonUnavailableError(DaemonError):
    """The daemon refused the connection: hard outage or injected error."""

    def __init__(self, daemon: str, reason: str = "unavailable"):
        self.reason = reason
        super().__init__(daemon, f"{daemon} is unavailable ({reason})")


class DaemonTimeoutError(DaemonError):
    """The daemon answered, but slower than the caller's budget allows."""

    def __init__(self, daemon: str, latency_s: float, timeout_s: float):
        self.latency_s = latency_s
        self.timeout_s = timeout_s
        super().__init__(
            daemon,
            f"{daemon} RPC took {latency_s:.3f}s (timeout {timeout_s:.3f}s)",
        )


class CircuitOpenError(DaemonError):
    """The circuit breaker for this daemon is open — fail fast, no RPC."""

    def __init__(self, daemon: str, retry_after_s: float = 0.0):
        self.retry_after_s = retry_after_s
        super().__init__(
            daemon,
            f"circuit breaker for {daemon} is open "
            f"(retry in {retry_after_s:.0f}s)",
        )


class SourceUnavailableError(DaemonError):
    """A data source could not be served at all: every attempt failed and
    the cache held no stale copy to fall back on.  The route layer maps
    this to a structured HTTP 503."""

    def __init__(self, source: str, daemon: str, cause: DaemonError):
        self.source = source
        self.cause = cause
        super().__init__(
            daemon,
            f"data source {source!r} unavailable: {cause}",
        )
