"""Scheduled fault injection against the simulated backends.

A :class:`FaultPlan` is a declarative chaos schedule on the sim clock:
hard outage windows, added latency ("brownouts"), and intermittent
error rates, each targeting one service by name ("slurmctld",
"slurmdbd", "news", "storage") or every service (``"*"``).  The daemon
load model consults the plan on every RPC; the resilient fetch path
consults it for non-daemon services.  All randomness comes from seeded
:class:`~repro.sim.rng.RandomStreams`, so a chaos run replays exactly.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.rng import RandomStreams

from .errors import DaemonUnavailableError

#: matches every service name
ANY_SERVICE = "*"


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault: a half-open interval ``[start, end)`` of
    simulated time during which a service misbehaves.

    ``kind`` selects the misbehaviour:

    * ``"outage"`` — every request raises :class:`DaemonUnavailableError`;
    * ``"slow"``   — every RPC gains ``extra_latency_s`` of latency;
    * ``"flaky"``  — each request fails with probability ``error_rate``.
    """

    service: str
    start: float
    end: float = math.inf
    kind: str = "outage"
    extra_latency_s: float = 0.0
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("outage", "slow", "flaky"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.end < self.start:
            raise ValueError(f"fault window ends before it starts: {self}")
        if self.kind == "flaky" and not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1]: {self.error_rate}")
        if self.kind == "slow" and self.extra_latency_s < 0:
            raise ValueError(f"negative extra latency: {self.extra_latency_s}")

    def active(self, now: float) -> bool:
        """True while ``now`` falls inside the window."""
        return self.start <= now < self.end

    def targets(self, service: str) -> bool:
        """True if this window applies to ``service``."""
        return self.service == ANY_SERVICE or self.service == service


@dataclass
class FaultPlan:
    """A mutable schedule of :class:`FaultWindow` entries plus the seeded
    randomness used to decide intermittent failures deterministically."""

    seed: int = 0
    windows: List[FaultWindow] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = RandomStreams(seed=self.seed)
        self._lock = threading.Lock()

    # -- authoring ----------------------------------------------------------

    def add(self, window: FaultWindow) -> FaultWindow:
        """Append one window to the schedule."""
        with self._lock:
            self.windows.append(window)
        return window

    def schedule_outage(
        self, service: str, start: float, end: float = math.inf
    ) -> FaultWindow:
        """Hard outage for ``service`` during ``[start, end)``."""
        return self.add(FaultWindow(service=service, start=start, end=end))

    def schedule_slowdown(
        self,
        service: str,
        extra_latency_s: float,
        start: float = 0.0,
        end: float = math.inf,
    ) -> FaultWindow:
        """Brownout: every RPC gains ``extra_latency_s`` during the window."""
        return self.add(
            FaultWindow(
                service=service,
                start=start,
                end=end,
                kind="slow",
                extra_latency_s=extra_latency_s,
            )
        )

    def schedule_flakiness(
        self,
        service: str,
        error_rate: float,
        start: float = 0.0,
        end: float = math.inf,
    ) -> FaultWindow:
        """Intermittent errors: each request fails with ``error_rate``."""
        return self.add(
            FaultWindow(
                service=service,
                start=start,
                end=end,
                kind="flaky",
                error_rate=error_rate,
            )
        )

    def clear(self) -> None:
        """Drop every scheduled window (chaos day is over)."""
        with self._lock:
            self.windows.clear()

    # -- consultation (hot path) --------------------------------------------

    def _active_for(self, service: str, now: float) -> List[FaultWindow]:
        with self._lock:
            return [
                w for w in self.windows if w.targets(service) and w.active(now)
            ]

    def check(self, service: str, now: float) -> None:
        """Raise :class:`DaemonUnavailableError` if ``service`` should fail
        a request arriving at ``now`` (outage window, or a losing draw
        against an active error rate)."""
        for window in self._active_for(service, now):
            if window.kind == "outage":
                raise DaemonUnavailableError(service, reason="scheduled outage")
            if window.kind == "flaky":
                draw = float(self._rng.stream(f"flaky:{service}").random())
                if draw < window.error_rate:
                    raise DaemonUnavailableError(
                        service, reason=f"intermittent error (p={window.error_rate})"
                    )

    def extra_latency(self, service: str, now: float) -> float:
        """Total injected latency (seconds) for a request at ``now``."""
        return sum(
            w.extra_latency_s
            for w in self._active_for(service, now)
            if w.kind == "slow"
        )

    def outage_active(self, service: str, now: float) -> bool:
        """True if a hard outage window covers ``service`` at ``now``."""
        return any(
            w.kind == "outage" for w in self._active_for(service, now)
        )

    def next_recovery(self, service: str, now: float) -> Optional[float]:
        """End time of the last active outage window, or None if healthy."""
        ends = [
            w.end
            for w in self._active_for(service, now)
            if w.kind == "outage"
        ]
        return max(ends) if ends else None

    def snapshot(self) -> Dict[str, int]:
        """Window counts by kind (for instrumentation)."""
        with self._lock:
            out: Dict[str, int] = {}
            for w in self.windows:
                out[w.kind] = out.get(w.kind, 0) + 1
            return out
