"""Scheduled fault injection against the simulated backends.

A :class:`FaultPlan` is a declarative chaos schedule on the sim clock:
hard outage windows, added latency ("brownouts"), and intermittent
error rates, each targeting one service by name ("slurmctld",
"slurmdbd", "news", "storage") or every service (``"*"``).  The daemon
load model consults the plan on every RPC; the resilient fetch path
consults it for non-daemon services.  All randomness comes from seeded
:class:`~repro.sim.rng.RandomStreams`, so a chaos run replays exactly.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.rng import RandomStreams

from .errors import DaemonUnavailableError, FaultConfigError

#: matches every service name
ANY_SERVICE = "*"


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault: a half-open interval ``[start, end)`` of
    simulated time during which a service misbehaves.

    ``kind`` selects the misbehaviour:

    * ``"outage"`` — every request raises :class:`DaemonUnavailableError`;
    * ``"slow"``   — every RPC gains ``extra_latency_s`` of latency;
    * ``"flaky"``  — each request fails with probability ``error_rate``.

    Windows must have positive duration: zero-length (``end == start``)
    and inverted (``end < start``) intervals are rejected at construction
    with a :class:`~repro.faults.errors.FaultConfigError` — a window that
    can never be active is always an authoring mistake.
    """

    service: str
    start: float
    end: float = math.inf
    kind: str = "outage"
    extra_latency_s: float = 0.0
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("outage", "slow", "flaky"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.end < self.start:
            raise FaultConfigError(
                "inverted-window", f"fault window ends before it starts: {self}"
            )
        if self.end == self.start:
            raise FaultConfigError(
                "empty-window",
                f"fault window has zero duration (half-open [start, end) "
                f"never activates): {self}",
            )
        if self.kind == "flaky" and not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1]: {self.error_rate}")
        if self.kind == "slow" and self.extra_latency_s < 0:
            raise ValueError(f"negative extra latency: {self.extra_latency_s}")

    def active(self, now: float) -> bool:
        """True while ``now`` falls inside the window."""
        return self.start <= now < self.end

    def targets(self, service: str) -> bool:
        """True if this window applies to ``service``."""
        return self.service == ANY_SERVICE or self.service == service


def _targets_intersect(a: FaultWindow, b: FaultWindow) -> bool:
    """True when the two windows can apply to the same service."""
    return (
        a.service == b.service
        or a.service == ANY_SERVICE
        or b.service == ANY_SERVICE
    )


def _intervals_overlap(a: FaultWindow, b: FaultWindow) -> bool:
    """True when the half-open intervals share at least one instant."""
    return a.start < b.end and b.start < a.end


def _reject_same_kind_overlap(a: FaultWindow, b: FaultWindow) -> None:
    """Raise :class:`FaultConfigError` when two same-kind windows overlap
    on an intersecting target — the duplicate adds nothing but ambiguity."""
    if a.kind == b.kind and _targets_intersect(a, b) and _intervals_overlap(a, b):
        raise FaultConfigError(
            "overlap",
            f"overlapping {a.kind!r} windows on the same target: {a} vs {b}",
        )


@dataclass
class FaultPlan:
    """A mutable schedule of :class:`FaultWindow` entries plus the seeded
    randomness used to decide intermittent failures deterministically.

    Two windows of the *same* kind may not overlap on the same target —
    the effect of e.g. two concurrent outages is indistinguishable from
    one, so the duplicate is always an authoring mistake and :meth:`add`
    rejects it with a :class:`~repro.faults.errors.FaultConfigError`.
    Different kinds may overlap freely; precedence while they do is
    **outage > flaky > slow**: an active outage wins over any flaky draw,
    and injected slow-window latency is suppressed while an outage covers
    the service (the request fails fast instead of failing slowly).
    """

    seed: int = 0
    windows: List[FaultWindow] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = RandomStreams(seed=self.seed)
        self._lock = threading.Lock()
        for i, window in enumerate(self.windows):
            for other in self.windows[i + 1:]:
                _reject_same_kind_overlap(window, other)

    # -- authoring ----------------------------------------------------------

    def add(self, window: FaultWindow) -> FaultWindow:
        """Append one window to the schedule (validating against the
        windows already scheduled)."""
        with self._lock:
            for other in self.windows:
                _reject_same_kind_overlap(window, other)
            self.windows.append(window)
        return window

    def schedule_outage(
        self, service: str, start: float, end: float = math.inf
    ) -> FaultWindow:
        """Hard outage for ``service`` during ``[start, end)``."""
        return self.add(FaultWindow(service=service, start=start, end=end))

    def schedule_slowdown(
        self,
        service: str,
        extra_latency_s: float,
        start: float = 0.0,
        end: float = math.inf,
    ) -> FaultWindow:
        """Brownout: every RPC gains ``extra_latency_s`` during the window."""
        return self.add(
            FaultWindow(
                service=service,
                start=start,
                end=end,
                kind="slow",
                extra_latency_s=extra_latency_s,
            )
        )

    def schedule_flakiness(
        self,
        service: str,
        error_rate: float,
        start: float = 0.0,
        end: float = math.inf,
    ) -> FaultWindow:
        """Intermittent errors: each request fails with ``error_rate``."""
        return self.add(
            FaultWindow(
                service=service,
                start=start,
                end=end,
                kind="flaky",
                error_rate=error_rate,
            )
        )

    def clear(self) -> None:
        """Drop every scheduled window (chaos day is over)."""
        with self._lock:
            self.windows.clear()

    # -- consultation (hot path) --------------------------------------------

    def _active_for(self, service: str, now: float) -> List[FaultWindow]:
        with self._lock:
            return [
                w for w in self.windows if w.targets(service) and w.active(now)
            ]

    def check(self, service: str, now: float) -> None:
        """Raise :class:`DaemonUnavailableError` if ``service`` should fail
        a request arriving at ``now`` (outage window, or a losing draw
        against an active error rate).  Outage precedence is explicit: if
        any active window is an outage, the request fails as an outage
        before any flaky window gets to burn a random draw."""
        active = self._active_for(service, now)
        for window in active:
            if window.kind == "outage":
                raise DaemonUnavailableError(service, reason="scheduled outage")
        for window in active:
            if window.kind == "flaky":
                draw = float(self._rng.stream(f"flaky:{service}").random())
                if draw < window.error_rate:
                    raise DaemonUnavailableError(
                        service, reason=f"intermittent error (p={window.error_rate})"
                    )

    def extra_latency(self, service: str, now: float) -> float:
        """Total injected latency (seconds) for a request at ``now``.

        Zero while an outage covers the service: outage > slow, so a
        request that is going to be refused is refused *fast* rather than
        first serving the slow window's penalty."""
        active = self._active_for(service, now)
        if any(w.kind == "outage" for w in active):
            return 0.0
        return sum(w.extra_latency_s for w in active if w.kind == "slow")

    def outage_active(self, service: str, now: float) -> bool:
        """True if a hard outage window covers ``service`` at ``now``."""
        return any(
            w.kind == "outage" for w in self._active_for(service, now)
        )

    def next_recovery(self, service: str, now: float) -> Optional[float]:
        """End time of the last active outage window, or None if healthy."""
        ends = [
            w.end
            for w in self._active_for(service, now)
            if w.kind == "outage"
        ]
        return max(ends) if ends else None

    def snapshot(self) -> Dict[str, int]:
        """Window counts by kind (for instrumentation)."""
        with self._lock:
            out: Dict[str, int] = {}
            for w in self.windows:
                out[w.kind] = out.get(w.kind, 0) + 1
            return out
