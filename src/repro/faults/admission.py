"""Admission control: deadlines, bulkheads, and brownout load shedding.

PRs 1–3 made individual fetches resilient (retry/breaker/serve-stale)
and collapsed stampedes (single-flight), but nothing bounded *total
time* per request or *concurrent work* per backend — a slow daemon
still let requests pile up without limit while retries burned backoff
budget long after the client had given up.  This module adds the three
admission layers the overload-control playbook calls for:

1. :class:`Deadline` — a per-request time budget threaded from the HTTP
   layer down to the retry loop, so work stops the moment the remaining
   budget cannot cover another attempt (structured 504, not a hang);
2. :class:`Bulkhead` — a per-daemon-service concurrency limit with a
   bounded wait queue around the leader compute path, so one stuck
   backend cannot exhaust every server thread (structured 429);
3. :class:`AdmissionController` — a feedback loop over breaker states,
   bulkhead queue depth, and route p95 latency that steps the dashboard
   through ``normal → brownout → shed`` tiers: brownout stretches TTLs
   and disables expensive pages, shed rejects everything non-essential
   while ``/healthz``, ``/metrics`` and My Jobs stay alive.

Sim-clock note: daemon latency in this reproduction is *simulated* (the
load model returns it; nothing wall-sleeps), so a deadline is an
explicit **charge model** — wall time actually spent plus every
simulated cost (RPC latency, backoff delay) charged against the budget.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry, quantile_from_buckets

from .errors import BulkheadSaturatedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.clock import SimClock

    from .resilience import ResilientFetcher

#: the admission tiers, in order of escalation; the gauge value is the index
TIERS: Tuple[str, ...] = ("normal", "brownout", "shed")

#: every value the ``reason`` label of ``repro_admission_rejected_total``
#: can take (pre-seeded to zero so the family always renders)
REJECT_REASONS: Tuple[str, ...] = ("deadline", "bulkhead", "brownout", "shed")


class Deadline:
    """A per-request time budget, spent by wall clock *and* explicit charges.

    ``elapsed()`` is the wall time since construction plus everything
    charged via :meth:`charge` — simulated RPC latency and backoff
    delays, which consume the request's budget in the model even though
    no thread wall-sleeps them.  One instance belongs to one request
    (created in :meth:`~repro.core.routes.RouteRegistry.call`); during a
    scatter-gather fan-out the same instance is shared by every worker
    thread serving that request, so charges are applied under a lock —
    the parallel widgets genuinely spend one common budget.
    """

    __slots__ = ("budget_s", "_started", "_charged", "_now", "_charge_lock")

    def __init__(self, budget_s: float, *,
                 now: Callable[[], float] = time.monotonic):
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be > 0: {budget_s}")
        self.budget_s = float(budget_s)
        self._now = now
        self._started = now()
        self._charged = 0.0
        self._charge_lock = threading.Lock()

    def charge(self, seconds: float) -> None:
        """Spend ``seconds`` of simulated cost against the budget."""
        if seconds > 0:
            with self._charge_lock:
                self._charged += seconds

    def elapsed(self) -> float:
        """Wall time since construction plus every charged cost."""
        return (self._now() - self._started) + self._charged

    def remaining(self) -> float:
        """Budget left (may be negative once exhausted)."""
        return self.budget_s - self.elapsed()

    def expired(self) -> bool:
        """True once the budget is spent."""
        return self.remaining() <= 0.0

    def can_afford(self, cost_s: float) -> bool:
        """True if ``cost_s`` more seconds still fit in the budget."""
        return self.remaining() >= cost_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget_s={self.budget_s}, "
            f"elapsed_s={self.elapsed():.3f})"
        )


@dataclass(frozen=True)
class BulkheadLimit:
    """Concurrency limits for one service's bulkhead."""

    max_concurrent: int = 8  # computes allowed in flight at once
    max_queue: int = 16  # callers allowed to wait for a slot

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1: {self.max_concurrent}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0: {self.max_queue}")


class Bulkhead:
    """A per-service concurrency limit with a bounded wait queue.

    At most ``limit.max_concurrent`` callers hold a slot at once; up to
    ``limit.max_queue`` more wait (bounded wall-clock wait) for one to
    free.  Anyone beyond that is rejected immediately with
    :class:`BulkheadSaturatedError` — the fail-fast that keeps a stuck
    backend from absorbing every handler thread.  Queue depth and active
    slots are mirrored into gauges on every transition.
    """

    def __init__(self, service: str, limit: BulkheadLimit,
                 registry: MetricsRegistry, retry_after_s: float = 1.0):
        self.service = service
        self.limit = limit
        self.retry_after_s = retry_after_s
        self._cond = threading.Condition()
        self.active = 0
        self.queued = 0
        #: high-water mark of concurrently held slots (benchmark assert)
        self.max_active = 0
        #: lifetime count of rejected acquisitions
        self.rejected = 0
        self._queue_gauge = registry.gauge(
            "repro_bulkhead_queue_depth",
            "Callers waiting for a bulkhead slot, per service.",
            ("service",),
        )
        self._active_gauge = registry.gauge(
            "repro_bulkhead_active",
            "Bulkhead slots currently held, per service.",
            ("service",),
        )
        self._rejected_metric = registry.counter(
            "repro_admission_rejected_total",
            "Requests rejected by the admission layer, by reason.",
            ("reason",),
        )
        self._sync_gauges()

    def _sync_gauges(self) -> None:
        self._queue_gauge.set(float(self.queued), service=self.service)
        self._active_gauge.set(float(self.active), service=self.service)

    def _reject(self, reason: str) -> BulkheadSaturatedError:
        self.rejected += 1
        self._rejected_metric.inc(reason="bulkhead")
        return BulkheadSaturatedError(
            self.service, retry_after_s=self.retry_after_s, reason=reason
        )

    @contextmanager
    def slot(self, wait_timeout_s: float) -> Iterator[None]:
        """Hold one concurrency slot for the duration of the block."""
        self._acquire(wait_timeout_s)
        try:
            yield
        finally:
            self._release()

    def _acquire(self, wait_timeout_s: float) -> None:
        give_up_at = time.monotonic() + max(0.0, wait_timeout_s)
        with self._cond:
            # fast path — but never jump ahead of callers already queued
            if self.active < self.limit.max_concurrent and self.queued == 0:
                self.active += 1
                self.max_active = max(self.max_active, self.active)
                self._sync_gauges()
                return
            if self.queued >= self.limit.max_queue:
                self._sync_gauges()
                raise self._reject("queue full")
            self.queued += 1
            self._sync_gauges()
            try:
                while self.active >= self.limit.max_concurrent:
                    remaining = give_up_at - time.monotonic()
                    if remaining <= 0:
                        raise self._reject("queue wait timed out")
                    self._cond.wait(remaining)
                self.active += 1
                self.max_active = max(self.max_active, self.active)
            finally:
                self.queued -= 1
                self._sync_gauges()

    def _release(self) -> None:
        with self._cond:
            self.active -= 1
            self._sync_gauges()
            self._cond.notify()


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning for the whole admission layer.

    Defaults are deliberately generous: bulkheads sized well above the
    test suite's concurrency, evaluation gated on simulated time, and
    tier thresholds that a single recovering breaker (half-open, +1)
    cannot trip — admission only bites under genuine distress.
    """

    #: per-service bulkhead overrides, e.g. ``{"slurmctld": BulkheadLimit(4, 8)}``
    bulkheads: Mapping[str, BulkheadLimit] = field(default_factory=dict)
    default_bulkhead: BulkheadLimit = BulkheadLimit()
    #: wall-clock seconds a caller may wait in the bulkhead queue
    queue_wait_s: float = 5.0
    #: Retry-After hint attached to 429/brownout/shed rejections
    retry_after_s: float = 1.0
    #: minimum simulated seconds between controller evaluations
    eval_interval_s: float = 5.0
    #: minimum simulated seconds in a tier before stepping back down
    min_dwell_s: float = 30.0
    #: distress score at which the tier may step up to brownout / shed
    brownout_at: int = 2
    shed_at: int = 4
    #: route p95 latency (s) that scores +1 / +2 distress
    p95_brownout_s: float = 1.0
    p95_shed_s: float = 5.0
    #: bulkhead queue utilisation (0..1) that scores +1 distress
    queue_pressure: float = 0.5
    #: TTL stretch applied to every source while not in "normal"
    brownout_ttl_multiplier: float = 4.0
    #: routes disabled during brownout (the expensive aggregates)
    expensive_routes: Tuple[str, ...] = ("job_performance", "job_overview")
    #: routes that survive even shed (liveness surface + My Jobs)
    essential_routes: Tuple[str, ...] = ("homepage", "my_jobs")

    def limit_for(self, service: str) -> BulkheadLimit:
        """The bulkhead limit configured for ``service``."""
        return self.bulkheads.get(service, self.default_bulkhead)


@dataclass
class AdmissionDecision:
    """Outcome of one route admission check."""

    allowed: bool
    reason: str = ""
    message: str = ""
    status: int = 200
    retry_after_s: float = 0.0


class AdmissionController:
    """The brownout feedback loop: distress signals in, tier out.

    Each evaluation (rate-limited to one per ``eval_interval_s`` of
    *simulated* time, so request bursts at one instant evaluate once)
    computes a distress score from three signals:

    * circuit breakers — +2 per open breaker, +1 per half-open;
    * bulkhead queues — +1 when total depth passes ``queue_pressure``
      of capacity, +2 when the queues are full;
    * route latency — +1 / +2 when the aggregate route p95 passes the
      brownout / shed thresholds.

    The tier moves **one step per evaluation** toward the score's target
    (``normal`` < ``brownout_at`` <= brownout < ``shed_at`` <= shed) and
    must dwell ``min_dwell_s`` before stepping back down, so a flapping
    breaker cannot flap the whole dashboard.
    """

    def __init__(self, config: AdmissionConfig, registry: MetricsRegistry,
                 fetcher: "ResilientFetcher", clock: "SimClock"):
        self.config = config
        self.registry = registry
        self.fetcher = fetcher
        self.clock = clock
        self._lock = threading.Lock()
        self._tier = "normal"
        self._tier_since = clock.now()
        self._last_eval = clock.now()
        self._signals: Dict[str, Any] = {}
        #: every tier transition as (sim_time, tier), starting at normal —
        #: the load harness records this timeline per scenario so a
        #: brownout-under-load run shows *when* the dashboard degraded
        self._history: List[Tuple[float, str]] = [(clock.now(), "normal")]
        self._tier_gauge = registry.gauge(
            "repro_brownout_tier",
            "Current admission tier (0=normal, 1=brownout, 2=shed).",
        )
        self._tier_gauge.set(0.0)
        self._rejected = registry.counter(
            "repro_admission_rejected_total",
            "Requests rejected by the admission layer, by reason.",
            ("reason",),
        )
        for reason in REJECT_REASONS:
            self._rejected.inc(0.0, reason=reason)
        self._transitions = registry.counter(
            "repro_brownout_transitions_total",
            "Admission tier transitions, by destination tier.",
            ("to",),
        )

    # -- state ---------------------------------------------------------------

    @property
    def tier(self) -> str:
        """Current tier name (no evaluation side effects)."""
        with self._lock:
            return self._tier

    def ttl_multiplier(self) -> float:
        """TTL stretch for the fetch path: >1 outside ``normal``."""
        return 1.0 if self.tier == "normal" else self.config.brownout_ttl_multiplier

    def force_tier(self, tier: str) -> None:
        """Pin the tier directly (operator override, benchmarks).

        Bypasses the scoring loop but keeps the gauge, transition
        counter, and dwell clock consistent; the next evaluation may
        step away again once its interval and dwell allow.
        """
        if tier not in TIERS:
            raise ValueError(f"unknown admission tier: {tier!r}")
        now = self.clock.now()
        with self._lock:
            if tier != self._tier:
                self._tier = tier
                self._tier_since = now
                self._transitions.inc(to=tier)
                self._history.append((now, tier))
            self._last_eval = now
            self._tier_gauge.set(float(TIERS.index(tier)))

    # -- the feedback loop ---------------------------------------------------

    def score(self) -> Tuple[int, Dict[str, Any]]:
        """Current distress score and the signals behind it."""
        score = 0
        states = self.fetcher.breaker_states()
        open_n = sum(1 for s in states.values() if s == "open")
        half_n = sum(1 for s in states.values() if s == "half_open")
        score += 2 * open_n + half_n

        depth = capacity = 0
        for bulkhead in self.fetcher.bulkheads():
            depth += bulkhead.queued
            capacity += bulkhead.limit.max_queue
        utilisation = (depth / capacity) if capacity else 0.0
        if utilisation >= 1.0:
            score += 2
        elif utilisation >= self.config.queue_pressure:
            score += 1

        p95 = self._route_p95()
        if p95 is not None:
            if p95 >= self.config.p95_shed_s:
                score += 2
            elif p95 >= self.config.p95_brownout_s:
                score += 1

        signals = {
            "breakers_open": open_n,
            "breakers_half_open": half_n,
            "bulkhead_queue_depth": depth,
            "bulkhead_queue_utilisation": round(utilisation, 3),
            "route_p95_s": round(p95, 6) if p95 is not None else None,
            "score": score,
        }
        return score, signals

    def _route_p95(self) -> Optional[float]:
        """Aggregate p95 across every route's latency histogram."""
        family = self.registry.get("repro_route_latency_seconds")
        if not isinstance(family, Histogram):
            return None
        bounds = list(family.buckets) + [float("inf")]
        combined = [0] * len(bounds)
        total = 0
        for labels in family.labelsets():
            series = family.snapshot(**labels)
            if series is None:
                continue
            for i, count in enumerate(series.bucket_counts):
                combined[i] += count
            total += series.count
        if total == 0:
            return None
        return quantile_from_buckets(bounds, combined, 0.95)

    def maybe_evaluate(self) -> str:
        """Evaluate at most once per ``eval_interval_s`` of sim time."""
        now = self.clock.now()
        with self._lock:
            if now - self._last_eval < self.config.eval_interval_s:
                return self._tier
        return self.evaluate()

    def evaluate(self) -> str:
        """Recompute the score and move the tier at most one step."""
        now = self.clock.now()
        target_score, signals = self.score()
        if target_score >= self.config.shed_at:
            target = 2
        elif target_score >= self.config.brownout_at:
            target = 1
        else:
            target = 0
        with self._lock:
            self._last_eval = now
            self._signals = signals
            current = TIERS.index(self._tier)
            new = current
            if target > current:
                new = current + 1
            elif target < current and now - self._tier_since >= self.config.min_dwell_s:
                new = current - 1
            if new != current:
                self._tier = TIERS[new]
                self._tier_since = now
                self._transitions.inc(to=self._tier)
                self._history.append((now, self._tier))
            self._tier_gauge.set(float(new))
            return self._tier

    # -- admission decisions -------------------------------------------------

    def admit_route(self, name: str) -> AdmissionDecision:
        """Decide whether route ``name`` may run under the current tier."""
        tier = self.maybe_evaluate()
        cfg = self.config
        if tier == "normal" or name in cfg.essential_routes:
            return AdmissionDecision(True)
        if tier == "shed":
            self._rejected.inc(reason="shed")
            return AdmissionDecision(
                False,
                reason="shed",
                status=503,
                retry_after_s=cfg.retry_after_s,
                message=(
                    f"the dashboard is shedding load; route {name!r} is "
                    "temporarily disabled (essential routes stay available)"
                ),
            )
        if name in cfg.expensive_routes:
            self._rejected.inc(reason="brownout")
            return AdmissionDecision(
                False,
                reason="brownout",
                status=503,
                retry_after_s=cfg.retry_after_s,
                message=(
                    f"the dashboard is in brownout; expensive route {name!r} "
                    "is temporarily disabled"
                ),
            )
        return AdmissionDecision(True)

    def count_rejection(self, reason: str) -> None:
        """Count one admission rejection (used by the fetch path)."""
        self._rejected.inc(reason=reason)

    # -- reporting -----------------------------------------------------------

    def tier_history(self) -> List[Tuple[float, str]]:
        """Every tier transition as ``(sim_time, tier)``, oldest first."""
        with self._lock:
            return list(self._history)

    def report(self) -> Dict[str, Any]:
        """Tier + signals for ``/healthz`` and the overload report."""
        with self._lock:
            return {
                "tier": self._tier,
                "tier_index": TIERS.index(self._tier),
                "since": self._tier_since,
                "signals": dict(self._signals),
            }
