"""The resilient fetch path: retry, circuit breaker, serve-stale.

The paper's caching tier assumes the daemons answer; this module makes
the dashboard survive when they do not.  :class:`ResilientFetcher`
wraps every data-source fetch with:

1. a per-source timeout (from :class:`~repro.core.caching.CachePolicy`),
   measured against the daemon load model's simulated RPC latency;
2. bounded retries with exponential backoff and deterministic jitter
   (seeded via :class:`~repro.sim.rng.RandomStreams`);
3. a per-daemon circuit breaker (closed → open → half-open) that fails
   fast during an outage instead of hammering a struggling daemon;
4. serve-stale fallback: when every attempt fails, the TTL cache's
   expired entry is returned and the response is flagged degraded.

Only :class:`~repro.faults.errors.DaemonError` failures are retried or
served stale — application errors (bad job id, permission denied)
propagate untouched.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.obs import NULL_TRACER
from repro.sim.clock import SimClock
from repro.sim.rng import RandomStreams

from .admission import AdmissionConfig, Bulkhead, Deadline
from .errors import (
    BulkheadSaturatedError,
    CircuitOpenError,
    DaemonError,
    DaemonTimeoutError,
    DeadlineExceededError,
    SourceUnavailableError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.caching import CachePolicy, TTLCache
    from repro.slurm.daemon import DaemonBus

    from .admission import AdmissionController

#: which backend service serves each cached data source; sources not
#: listed here are their own service (news, storage, ...)
SOURCE_SERVICES: Dict[str, str] = {
    "squeue": "slurmctld",
    "sinfo": "slurmctld",
    "scontrol_node": "slurmctld",
    "scontrol_job": "slurmctld",
    "scontrol_assoc": "slurmctld",
    "sacct": "slurmdbd",
    "sreport": "slurmdbd",
    "sshare": "slurmdbd",
}

#: the services the daemon bus injects faults for itself; the fetcher
#: consults the plan directly for everything else
DAEMON_SERVICES = frozenset({"slurmctld", "slurmdbd"})


def service_for_source(source: str) -> str:
    """The backend service a cached data source depends on."""
    return SOURCE_SERVICES.get(source, source)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    The jittered delay for attempt ``i`` (0-based, counting failures) is

        min(base * multiplier**i, max_delay) * (1 ± jitter)

    with the ± drawn from a named :class:`RandomStreams` stream, so the
    schedule replays exactly for a given seed.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 10.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")

    def delay(self, attempt: int, rng) -> float:
        """Jittered delay (seconds) before retry number ``attempt``."""
        raw = min(
            self.base_delay_s * self.multiplier**attempt, self.max_delay_s
        )
        if self.jitter == 0.0:
            return raw
        spread = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return raw * spread

    def schedule(self, rng) -> List[float]:
        """The whole backoff schedule: one delay per retry."""
        return [self.delay(i, rng) for i in range(self.max_attempts - 1)]


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning for one per-daemon circuit breaker."""

    failure_threshold: int = 5  # consecutive failures that open the circuit
    recovery_time_s: float = 60.0  # open -> half-open after this long
    half_open_successes: int = 1  # probes needed to close again


class CircuitBreaker:
    """Classic three-state circuit breaker on the sim clock.

    * **closed** — requests flow; consecutive failures are counted.
    * **open** — requests are refused instantly (:class:`CircuitOpenError`)
      until ``recovery_time_s`` has passed.
    * **half-open** — a limited number of probe requests are let through;
      success closes the circuit, failure reopens it.
    """

    def __init__(self, daemon: str, clock: SimClock, config: Optional[BreakerConfig] = None,
                 on_transition: Optional[Callable[[str, str], None]] = None):
        self.daemon = daemon
        self.clock = clock
        self.config = config or BreakerConfig()
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_successes = 0
        self.opens = 0  # lifetime count of closed/half-open -> open
        #: called as ``on_transition(daemon, new_state)`` on every state
        #: change (the fetcher wires this to the metrics registry)
        self.on_transition = on_transition

    def _transition(self, new_state: str) -> None:
        self._state = new_state
        if self.on_transition is not None:
            self.on_transition(self.daemon, new_state)

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open if time has passed."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == "open"
            and self.clock.now() - self._opened_at >= self.config.recovery_time_s
        ):
            self._transition("half_open")
            self._half_open_successes = 0
        return self._state

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a request may proceed."""
        with self._lock:
            if self._state_locked() == "open":
                remaining = self.config.recovery_time_s - (
                    self.clock.now() - self._opened_at
                )
                raise CircuitOpenError(self.daemon, retry_after_s=max(0.0, remaining))

    def record_success(self) -> None:
        """Note a successful request (closes a half-open circuit)."""
        with self._lock:
            state = self._state_locked()
            self._consecutive_failures = 0
            if state == "half_open":
                self._half_open_successes += 1
                if self._half_open_successes >= self.config.half_open_successes:
                    self._transition("closed")

    def record_failure(self) -> bool:
        """Note a failed request; returns True if this opened the circuit."""
        with self._lock:
            state = self._state_locked()
            self._consecutive_failures += 1
            if state == "half_open" or (
                state == "closed"
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._transition("open")
                self._opened_at = self.clock.now()
                self.opens += 1
                return True
            return False


@dataclass
class FetchOutcome:
    """What one resilient fetch produced, for the response envelope."""

    value: Any
    source: str
    degraded: bool = False
    stale_age_s: Optional[float] = None
    attempts: int = 1
    error: Optional[str] = None
    #: True when the value came straight from a fresh cache entry
    #: (``compute`` never ran) — the tracer's cache-span result
    cache_hit: bool = False
    #: True when this fetch rode another thread's in-flight compute
    #: instead of querying the backend itself (single-flight follower)
    coalesced: bool = False
    #: ``"leader"``/``"follower"`` when the lookup took part in a
    #: single-flight stampede, ``None`` otherwise — span annotation
    role: Optional[str] = None
    #: True when the hit was served while a refresh-ahead revalidation
    #: for the key is in flight — span annotation
    refreshing: bool = False


class ResilientFetcher:
    """Retry + breaker + serve-stale policy over one TTL cache.

    One instance per :class:`~repro.core.routes.DashboardContext`; it is
    thread-safe and shared by every HTTP handler thread.
    """

    def __init__(
        self,
        cache: "TTLCache",
        daemons: "DaemonBus",
        policy: "CachePolicy",
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        seed: int = 0,
        admission: Optional[AdmissionConfig] = None,
    ):
        self.cache = cache
        self.daemons = daemons
        self.policy = policy
        self.retry = retry or RetryPolicy()
        self.breaker_config = breaker or BreakerConfig()
        self.admission = admission or AdmissionConfig()
        #: brownout controller, wired in by DashboardContext (None when the
        #: fetcher is used standalone — TTLs then stay un-stretched)
        self.controller: Optional["AdmissionController"] = None
        self.rng = RandomStreams(seed=seed)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._bulkheads: Dict[str, Bulkhead] = {}
        self._bulkhead_lock = threading.Lock()
        #: every backoff delay slept this run, in order (determinism tests)
        self.backoff_log: List[float] = []
        #: hook invoked with each backoff delay; default is a no-op because
        #: request handling does not advance simulated time
        self.sleep: Callable[[float], None] = lambda _s: None
        #: span recorder; the dashboard context swaps in its real Tracer
        self.tracer = NULL_TRACER
        # retry/breaker activity as first-class metrics on the cache's
        # registry (shared with the dashboard when one is wired in)
        self._retries_metric = cache.metrics.counter(
            "repro_fetch_retries_total",
            "Fetch attempts repeated by the resilient fetch path.",
            ("service",),
        )
        self._transitions_metric = cache.metrics.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state transitions by service and new state.",
            ("service", "to"),
        )
        self._rejected_metric = cache.metrics.counter(
            "repro_admission_rejected_total",
            "Requests rejected by the admission layer, by reason.",
            ("reason",),
        )
        # eager bulkheads for the daemon services so their gauges render
        # (with zero values) before any traffic arrives
        for service in sorted(DAEMON_SERVICES):
            self.bulkhead_for(service)

    # -- breakers -----------------------------------------------------------

    def breaker_for(self, service: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding ``service``."""
        with self._breaker_lock:
            breaker = self._breakers.get(service)
            if breaker is None:
                breaker = CircuitBreaker(
                    service, self.cache.clock, self.breaker_config,
                    on_transition=self._record_transition,
                )
                self._breakers[service] = breaker
            return breaker

    def _record_transition(self, service: str, new_state: str) -> None:
        self._transitions_metric.inc(service=service, to=new_state)

    def breaker_states(self) -> Dict[str, str]:
        """Current state of every instantiated breaker (for /healthz)."""
        with self._breaker_lock:
            breakers = list(self._breakers.values())
        return {b.daemon: b.state for b in breakers}

    # -- bulkheads ----------------------------------------------------------

    def bulkhead_for(self, service: str) -> Bulkhead:
        """The (lazily created) bulkhead limiting ``service`` concurrency."""
        with self._bulkhead_lock:
            bulkhead = self._bulkheads.get(service)
            if bulkhead is None:
                bulkhead = Bulkhead(
                    service,
                    self.admission.limit_for(service),
                    registry=self.cache.metrics,
                    retry_after_s=self.admission.retry_after_s,
                )
                self._bulkheads[service] = bulkhead
            return bulkhead

    def bulkheads(self) -> List[Bulkhead]:
        """Every instantiated bulkhead (for the brownout controller)."""
        with self._bulkhead_lock:
            return list(self._bulkheads.values())

    # -- the fetch path -----------------------------------------------------

    def fetch(
        self,
        source: str,
        key: str,
        compute: Callable[[], Any],
        deadline: Optional[Deadline] = None,
    ) -> FetchOutcome:
        """Fetch ``source:key`` through the cache with full resilience.

        Fresh cache hits short-circuit everything.  On miss, ``compute``
        runs under the retry/breaker/timeout policy — but only in the
        *leader* of a concurrent stampede: the cache coalesces parallel
        misses on one key into a single flight, so the breaker sees one
        failure per stampede and the daemon one query.  Followers wait
        at most the source's :meth:`CachePolicy.timeout_for` budget,
        then degrade to the expired entry when one exists.  If every
        attempt fails with a :class:`DaemonError` and an expired entry
        exists, that stale value is served and the outcome flagged
        degraded.  With no stale copy, :class:`SourceUnavailableError`
        propagates (to the leader and every follower alike).

        Admission layers on top: the leader compute holds a per-service
        :class:`Bulkhead` slot, and a ``deadline`` bounds total spend —
        the retry loop stops scheduling attempts once the remaining
        budget cannot cover another timeout + backoff, and followers
        never wait longer than the budget allows.  Both rejections
        (:class:`DeadlineExceededError`, :class:`BulkheadSaturatedError`)
        still prefer stale data, but with no stale copy they propagate
        *unwrapped* so the route layer can map 504 / 429.

        Hits past the source's soft TTL additionally arm **refresh-ahead**
        (when the cache has a worker pool wired): the hit is served
        instantly and a background revalidation — same bulkhead, same
        breaker accounting, but its own short
        :attr:`CachePolicy.refresh_deadline_s` budget — rewrites the
        entry off-thread before it hard-expires.
        """
        service = service_for_source(source)
        full_key = f"{source}:{key}"
        # serve_ttl_for == ttl_for unless event-driven views manage this
        # source, in which case the TTL is stretched to a fallback role
        ttl = self.policy.serve_ttl_for(source)
        if self.controller is not None:
            # brownout tiers stretch freshness instead of querying backends
            ttl *= self.controller.ttl_multiplier()
        attempts = {"n": 0}

        def resilient_compute() -> Any:
            return self._compute_with_retry(
                source, service, compute, attempts, deadline
            )

        # soft TTL from the *base* TTL: brownout-stretched entries get
        # revalidated promptly once the tier (and the gate) are normal again
        soft_ttl = self.policy.soft_ttl_for(source)

        def refresh_compute() -> Any:
            # background revalidation: fresh attempt counter (breaker
            # failures count exactly once, never against the foreground
            # request) and a short dedicated budget so a sick daemon
            # fails the refresh fast instead of pinning a pool worker
            bg_attempts: Dict[str, Any] = {"n": 0}
            bg_deadline = Deadline(self.policy.refresh_deadline_s)
            with self.tracer.span(
                f"refresh:{source}", kind="refresh", attrs={"key": key}
            ):
                return self._compute_with_retry(
                    source, service, compute, bg_attempts, bg_deadline
                )

        follower_timeout = self.policy.timeout_for(source)
        if deadline is not None:
            follower_timeout = max(0.0, min(follower_timeout, deadline.remaining()))
        try:
            result = self.cache.lookup(
                full_key,
                resilient_compute,
                ttl=ttl,
                stale_on=(DaemonError,),
                follower_timeout_s=follower_timeout,
                soft_ttl=soft_ttl,
                refresh=refresh_compute,
            )
        except (DeadlineExceededError, BulkheadSaturatedError):
            raise  # admission rejections keep their own status codes
        except DaemonError as exc:
            raise SourceUnavailableError(source, service, exc) from exc
        if result.stale_age_s is None:
            return FetchOutcome(
                value=result.value,
                source=source,
                attempts=max(1, attempts["n"]),
                cache_hit=result.result == "hit",
                coalesced=result.result == "coalesced",
                role=result.role,
                refreshing=result.refreshing,
            )
        return FetchOutcome(
            value=result.value,
            source=source,
            degraded=True,
            stale_age_s=result.stale_age_s,
            attempts=max(1, attempts["n"]),
            error=attempts.get("error"),
            role=result.role,
        )

    def _compute_with_retry(
        self,
        source: str,
        service: str,
        compute: Callable[[], Any],
        attempts: Dict[str, Any],
        deadline: Optional[Deadline] = None,
    ) -> Any:
        if deadline is not None and deadline.expired():
            self._count_rejection("deadline")
            raise DeadlineExceededError(
                service, deadline.budget_s, deadline.elapsed()
            )
        bulkhead = self.bulkhead_for(service)
        wait_s = self.admission.queue_wait_s
        if deadline is not None:
            wait_s = max(0.0, min(wait_s, deadline.remaining()))
        with bulkhead.slot(wait_s):
            with self.daemons.inflight(service):
                return self._retry_loop(
                    source, service, compute, attempts, deadline
                )

    def _retry_loop(
        self,
        source: str,
        service: str,
        compute: Callable[[], Any],
        attempts: Dict[str, Any],
        deadline: Optional[Deadline],
    ) -> Any:
        breaker = self.breaker_for(service)
        timeout_s = self.policy.timeout_for(source)
        plan = getattr(self.daemons, "faults", None)
        rng = self.rng.stream(f"backoff:{service}")
        last_exc: Optional[DaemonError] = None
        for attempt in range(self.retry.max_attempts):
            attempts["n"] = attempt + 1
            with self.tracer.span(
                f"daemon:{service}", kind="daemon",
                attrs={"source": source, "attempt": attempt + 1},
            ) as span:
                try:
                    breaker.check()
                    # daemon-backed sources are injected in the daemon layer;
                    # external services (news, storage) consult the plan here
                    if plan is not None and service not in DAEMON_SERVICES:
                        plan.check(service, self.cache.clock.now())
                    with self.daemons.measure() as probe:
                        value = compute()
                    # simulated RPC latency spends the request's budget,
                    # whether or not the attempt beat its timeout
                    if deadline is not None:
                        deadline.charge(probe.max_latency_s)
                    if probe.max_latency_s > timeout_s:
                        raise DaemonTimeoutError(
                            service, probe.max_latency_s, timeout_s
                        )
                except CircuitOpenError as exc:
                    # fast-fail: no RPC happened, nothing to count or retry
                    attempts["error"] = str(exc)
                    span.attrs["error"] = str(exc)
                    raise
                except DaemonError as exc:
                    last_exc = exc
                    attempts["error"] = str(exc)
                    span.attrs["error"] = str(exc)
                    breaker.record_failure()
                    if attempt + 1 < self.retry.max_attempts:
                        delay = self.retry.delay(attempt, rng)
                        if deadline is not None and not deadline.can_afford(
                            delay + timeout_s
                        ):
                            # the remaining budget cannot cover the backoff
                            # plus another full attempt: stop here, don't
                            # burn backoff the client would never see
                            span.attrs["deadline_exceeded"] = True
                            self._count_rejection("deadline")
                            raise DeadlineExceededError(
                                service, deadline.budget_s, deadline.elapsed()
                            ) from exc
                        self.backoff_log.append(delay)
                        self._retries_metric.inc(service=service)
                        if deadline is not None:
                            deadline.charge(delay)
                        self.sleep(delay)
                    continue
                span.attrs["rpcs"] = probe.rpcs
                span.attrs["sim_latency_s"] = round(probe.max_latency_s, 6)
            breaker.record_success()
            return value
        assert last_exc is not None
        raise last_exc

    def _count_rejection(self, reason: str) -> None:
        self._rejected_metric.inc(reason=reason)
