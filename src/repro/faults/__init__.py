"""Fault injection + resilience: keep the dashboard useful when the
cluster's daemons are not.

:class:`FaultPlan` schedules outages, brownouts, and flaky windows
against the simulated backends; :class:`ResilientFetcher` gives the
dashboard's fetch path timeouts, retries, circuit breakers, and
serve-stale fallback so injected chaos degrades responses instead of
crashing them.  :mod:`repro.faults.admission` layers overload control
on top: per-request :class:`Deadline` budgets, per-service
:class:`Bulkhead` concurrency limits, and the brownout
:class:`AdmissionController` that sheds load before a brownout becomes
a blackout.
"""

from .admission import (
    TIERS,
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    Bulkhead,
    BulkheadLimit,
    Deadline,
)
from .errors import (
    AdmissionError,
    BulkheadSaturatedError,
    CircuitOpenError,
    DaemonError,
    DaemonTimeoutError,
    DaemonUnavailableError,
    DeadlineExceededError,
    FaultConfigError,
    SourceUnavailableError,
)
from .plan import ANY_SERVICE, FaultPlan, FaultWindow
from .resilience import (
    BreakerConfig,
    CircuitBreaker,
    FetchOutcome,
    ResilientFetcher,
    RetryPolicy,
    service_for_source,
)

__all__ = [
    "ANY_SERVICE",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionError",
    "BreakerConfig",
    "Bulkhead",
    "BulkheadLimit",
    "BulkheadSaturatedError",
    "CircuitBreaker",
    "CircuitOpenError",
    "DaemonError",
    "DaemonTimeoutError",
    "DaemonUnavailableError",
    "Deadline",
    "DeadlineExceededError",
    "FaultConfigError",
    "FaultPlan",
    "FaultWindow",
    "FetchOutcome",
    "ResilientFetcher",
    "RetryPolicy",
    "SourceUnavailableError",
    "TIERS",
    "service_for_source",
]
