"""Fault injection + resilience: keep the dashboard useful when the
cluster's daemons are not.

:class:`FaultPlan` schedules outages, brownouts, and flaky windows
against the simulated backends; :class:`ResilientFetcher` gives the
dashboard's fetch path timeouts, retries, circuit breakers, and
serve-stale fallback so injected chaos degrades responses instead of
crashing them.
"""

from .errors import (
    CircuitOpenError,
    DaemonError,
    DaemonTimeoutError,
    DaemonUnavailableError,
    SourceUnavailableError,
)
from .plan import ANY_SERVICE, FaultPlan, FaultWindow
from .resilience import (
    BreakerConfig,
    CircuitBreaker,
    FetchOutcome,
    ResilientFetcher,
    RetryPolicy,
    service_for_source,
)

__all__ = [
    "ANY_SERVICE",
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "DaemonError",
    "DaemonTimeoutError",
    "DaemonUnavailableError",
    "FaultPlan",
    "FaultWindow",
    "FetchOutcome",
    "ResilientFetcher",
    "RetryPolicy",
    "SourceUnavailableError",
    "service_for_source",
]
