"""The worker fleet: N dashboard processes behind one balancer.

:class:`WorkerFleet` is the one-call deployment for multi-process
scale-out: it forks ``workers`` identical dashboard processes (same
seeded scenario, own cache/breakers/admission each), waits for their
ready handshakes, and fronts them with a
:class:`~repro.scaleout.balancer.BalancerServer` on a single port.

The fleet duck-types the harness contract a single
:class:`~repro.web.server.DashboardServer` satisfies — ``url``,
``clock.advance(...)``, context-manager lifecycle — so every load
scenario drives a fleet and a lone server through identical code.
``clock`` is a :class:`~repro.sim.clock.RelayClock`: each ``advance``
broadcasts to all live workers and barriers on their acks, keeping the
per-process sim clocks in lockstep (a dead worker is tolerated and
dropped from the barrier, mirroring how the balancer tolerates it on
the request path).

:meth:`kill` SIGKILLs one worker mid-run — the fault the scale-out A/B
injects to demonstrate that a dead worker means redistributed load,
never an outage.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import RelayClock

from .balancer import BalancerServer
from .worker import WorkerConfig, WorkerHandle

#: default multiprocessing start method; fork is cheap and inherits the
#: imported modules (spawn works too — WorkerConfig is primitives-only)
START_METHOD = "fork"


class WorkerFleet:
    """N worker dashboards behind one balancer, as one context manager."""

    def __init__(
        self,
        workers: int = 2,
        config: Optional[WorkerConfig] = None,
        affinity: bool = True,
        proxy_timeout_s: float = 30.0,
        breaker_threshold: int = 1,
        breaker_cooldown_s: float = 2.0,
        start_method: str = START_METHOD,
        verbose: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"a fleet needs >= 1 worker: {workers}")
        self.config = config or WorkerConfig()
        self.affinity = affinity
        self._proxy_timeout_s = proxy_timeout_s
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._verbose = verbose
        ctx = mp.get_context(start_method)
        self.handles: Dict[str, WorkerHandle] = {
            f"w{i}": WorkerHandle(f"w{i}", self.config, ctx=ctx)
            for i in range(workers)
        }
        self.balancer: Optional[BalancerServer] = None
        self._clock: Optional[RelayClock] = None

    # -- lifecycle -------------------------------------------------------

    def start(self, ready_timeout_s: float = 120.0) -> "WorkerFleet":
        """Spawn every worker, collect handshakes, start the balancer."""
        if self.balancer is not None:
            raise RuntimeError("fleet already started")
        try:
            # spawn all processes first, then collect handshakes — the
            # N dashboard builds overlap instead of serializing
            for handle in self.handles.values():
                handle.spawn()
            for handle in self.handles.values():
                handle.await_ready(ready_timeout_s)
        except BaseException:
            self.stop()
            raise
        start_times = {h.start_time for h in self.handles.values()}
        if len(start_times) != 1:
            self.stop()
            raise RuntimeError(
                f"workers disagree on start time: {sorted(start_times)} — "
                "identical seeds should build identical clocks"
            )
        self._clock = RelayClock(start_times.pop(), self._relay_advance)
        self.balancer = BalancerServer(
            {name: h.address() for name, h in self.handles.items()},
            affinity=self.affinity,
            proxy_timeout_s=self._proxy_timeout_s,
            breaker_threshold=self._breaker_threshold,
            breaker_cooldown_s=self._breaker_cooldown_s,
            verbose=self._verbose,
        )
        self.balancer.start()
        return self

    def stop(self) -> None:
        """Stop the balancer, then every worker (idempotent)."""
        if self.balancer is not None:
            self.balancer.stop()
            self.balancer = None
        for handle in self.handles.values():
            handle.stop()

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- harness surface -------------------------------------------------

    @property
    def url(self) -> str:
        if self.balancer is None:
            raise RuntimeError("fleet not started")
        return self.balancer.url

    @property
    def clock(self) -> RelayClock:
        """The fleet's logical sim clock (advances relay to workers)."""
        if self._clock is None:
            raise RuntimeError("fleet not started")
        return self._clock

    @property
    def worker_names(self) -> List[str]:
        return list(self.handles)

    @property
    def alive_workers(self) -> List[str]:
        return [name for name, h in self.handles.items() if h.alive]

    def worker_ports(self) -> Dict[str, int]:
        return {name: h.port for name, h in self.handles.items()}

    # -- coordination ----------------------------------------------------

    def _relay_advance(self, seconds: float) -> None:
        """Broadcast one tick, then barrier on every live worker's ack.

        Two phases so the workers advance concurrently.  A worker that
        dies mid-tick (killed, crashed, hung past the barrier timeout)
        is marked dead and dropped — the surviving workers' clocks stay
        in lockstep and the run continues.
        """
        sent = [
            h for h in self.handles.values() if h.send_advance(seconds)
        ]
        lagging: List[Tuple[str, float]] = []
        for handle in sent:
            new_now = handle.wait_advanced()
            if new_now is not None:
                lagging.append((handle.name, new_now))
        times = {t for _name, t in lagging}
        if len(times) > 1:  # pragma: no cover - lockstep invariant
            raise RuntimeError(
                f"worker clocks diverged after advance: {dict(lagging)}"
            )

    def kill(self, name: str) -> None:
        """SIGKILL one worker (fault injection for tests/benchmarks)."""
        self.handles[name].kill()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = len(self.handles)
        alive = len(self.alive_workers)
        return f"WorkerFleet(workers={n}, alive={alive})"
