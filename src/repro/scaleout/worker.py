"""One fleet worker: a full dashboard in its own process.

Each worker the fleet spawns is an ordinary single-process deployment —
its own interpreter, server cache, circuit breakers, admission
controller and worker pool — built from :class:`WorkerConfig` and
served by a :class:`~repro.web.server.DashboardServer` on an ephemeral
port.  Shared-nothing is the point: a worker dying takes out only its
shard of the cache, never the fleet.

Coordination with the parent crosses the process boundary over a
:func:`multiprocessing.Pipe` control channel speaking small tuples:

========================  =============================  ===============
parent sends              worker replies                 meaning
========================  =============================  ===============
(handshake at start)      ``("ready", port, now)``       bound + serving
``("advance", seconds)``  ``("advanced", now)``          sim-clock tick
``("stop",)``             ``("stopped",)`` then exit     graceful stop
========================  =============================  ===============

All workers build from the same seed, so their sim clocks agree at
startup and the fleet's broadcast-and-barrier ``advance`` keeps them in
lockstep thereafter.  Identical builds are also what makes balancer
routing *transparent*: any worker produces byte-identical bodies for
the same request at the same simulated time — affinity routing changes
which cache warms, never what the client sees.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to build its dashboard.

    Primitives only — the config crosses the process boundary (and must
    survive pickling under any multiprocessing start method), so it
    carries knob values, not live objects.  ``cache_max_entries`` is the
    scale-out lever: capping each worker's cache makes aggregate fleet
    capacity ``N x cap``, which affinity routing then actually exploits.
    """

    seed: int = 2025
    duration_hours: float = 6.0
    cache_shards: int = 1
    cache_max_entries: Optional[int] = None
    #: uniform TTL override for every source (None keeps the paper's
    #: per-source policy) — load scenarios pin it so cache misses
    #: measure *capacity*, not TTL churn
    cache_ttl_s: Optional[float] = None
    #: False builds cache-less workers: every response is recomputed
    #: from the frozen sim state, which makes bodies a pure function of
    #: (request, sim time) — the transparency proof runs this way
    use_server_cache: bool = True
    workload_users: Optional[int] = None
    workload_interarrival_s: Optional[float] = None
    verbose: bool = False

    def build(self):
        """Build the dashboard this config describes (in-process).

        Also used parent-side by the load harness to derive the request
        catalog for a fleet without talking to a worker.
        """
        from repro.core.caching import CachePolicy
        from repro.core.dashboard import build_demo_dashboard
        from repro.slurm.workload import WorkloadConfig

        cache_policy = None
        if self.cache_ttl_s is not None:
            ttl = self.cache_ttl_s
            cache_policy = CachePolicy(
                squeue=ttl, sinfo=ttl, sacct=ttl, scontrol_node=ttl,
                scontrol_job=ttl, scontrol_assoc=ttl, news=ttl,
                storage=ttl, default=ttl,
            )
        workload = None
        if (self.workload_users is not None
                or self.workload_interarrival_s is not None):
            kwargs = {"seed": self.seed}
            if self.workload_users is not None:
                kwargs["n_users"] = self.workload_users
            if self.workload_interarrival_s is not None:
                kwargs["mean_interarrival_s"] = self.workload_interarrival_s
            workload = WorkloadConfig(**kwargs)
        return build_demo_dashboard(
            seed=self.seed,
            duration_hours=self.duration_hours,
            workload=workload,
            cache_policy=cache_policy,
            use_server_cache=self.use_server_cache,
            cache_shards=self.cache_shards,
            cache_max_entries=self.cache_max_entries,
        )


def worker_main(
    conn: "mp.connection.Connection", config: WorkerConfig
) -> None:
    """Entry point of one worker process.

    Builds the dashboard, serves it, then sits in the control-message
    loop until told to stop (or until the channel breaks — a dead
    parent must not leave orphaned servers behind).
    """
    from repro.web.server import DashboardServer

    dash, _directory, _result = config.build()
    server = DashboardServer(dash, port=0, verbose=config.verbose)
    server.start()
    try:
        conn.send(("ready", server.port, dash.clock.now()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "advance":
                dash.clock.advance(float(msg[1]))
                conn.send(("advanced", dash.clock.now()))
            elif msg[0] == "stop":
                conn.send(("stopped",))
                break
            else:  # unknown verb: fail loudly, protocol bugs must not hang
                conn.send(("error", f"unknown control message {msg[0]!r}"))
    finally:
        server.stop()
        conn.close()


class WorkerHandle:
    """Parent-side handle on one spawned worker process.

    Owns the process object and the parent end of the control pipe.
    The two-phase advance (:meth:`send_advance` broadcast, then
    :meth:`wait_advanced` collect) lets the fleet move every worker's
    clock concurrently instead of serially round-tripping each pipe.
    """

    def __init__(self, name: str, config: WorkerConfig,
                 ctx: Optional[mp.context.BaseContext] = None):
        self.name = name
        self.config = config
        self._ctx = ctx or mp.get_context("fork")
        self._proc: Optional[mp.process.BaseProcess] = None
        self._conn: Optional[mp.connection.Connection] = None
        #: bound HTTP port, known after :meth:`start`
        self.port: Optional[int] = None
        #: sim time reported in the ready handshake
        self.start_time: Optional[float] = None
        self._dead = False

    # -- lifecycle -------------------------------------------------------

    def spawn(self) -> "WorkerHandle":
        """Fork the process; returns immediately (handshake comes
        later).  Split from :meth:`await_ready` so a fleet can overlap
        N dashboard builds instead of serializing them."""
        if self._proc is not None:
            raise RuntimeError(f"worker {self.name!r} already started")
        parent_conn, child_conn = self._ctx.Pipe()
        self._proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.config),
            name=f"repro-worker-{self.name}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()  # child's end lives in the child now
        self._conn = parent_conn
        return self

    def await_ready(self, timeout_s: float = 60.0) -> "WorkerHandle":
        """Block until the ready handshake lands; records port + time."""
        if self._conn is None:
            raise RuntimeError(f"worker {self.name!r} not spawned")
        if not self._conn.poll(timeout_s):
            self.kill()
            raise TimeoutError(
                f"worker {self.name!r} did not become ready within "
                f"{timeout_s:.0f}s"
            )
        msg = self._conn.recv()
        if msg[0] != "ready":
            self.kill()
            raise RuntimeError(
                f"worker {self.name!r} sent {msg!r} instead of ready"
            )
        self.port = int(msg[1])
        self.start_time = float(msg[2])
        return self

    def start(self, ready_timeout_s: float = 60.0) -> "WorkerHandle":
        """Spawn the process and wait for its ready handshake."""
        return self.spawn().await_ready(ready_timeout_s)

    @property
    def alive(self) -> bool:
        return (
            not self._dead
            and self._proc is not None
            and self._proc.is_alive()
        )

    def kill(self) -> None:
        """SIGKILL the worker — the fleet's fault-injection primitive.

        Hard death, no goodbye: in-flight proxied requests fail at the
        transport level and the balancer's mini-breaker takes it from
        there.  Idempotent.
        """
        self._dead = True
        if self._proc is not None and self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=10.0)
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def stop(self, grace_s: float = 10.0) -> None:
        """Graceful stop: ask nicely, then escalate to :meth:`kill`."""
        if self._dead or self._proc is None:
            return
        try:
            if self._conn is not None:
                self._conn.send(("stop",))
                if self._conn.poll(grace_s):
                    self._conn.recv()  # ("stopped",)
        except (BrokenPipeError, EOFError, OSError):
            pass
        self._proc.join(timeout=grace_s)
        self.kill()

    # -- lockstep clock --------------------------------------------------

    def send_advance(self, seconds: float) -> bool:
        """Broadcast half of one tick; True if the send reached a live
        worker (a dead one is marked and skipped, never an error)."""
        if not self.alive or self._conn is None:
            return False
        try:
            self._conn.send(("advance", float(seconds)))
            return True
        except (BrokenPipeError, OSError):
            self._dead = True
            return False

    def wait_advanced(self, timeout_s: float = 60.0) -> Optional[float]:
        """Barrier half: the worker's new sim time, or None if it died."""
        if not self.alive or self._conn is None:
            return None
        try:
            if not self._conn.poll(timeout_s):
                self._dead = True
                return None
            msg = self._conn.recv()
        except (EOFError, OSError):
            self._dead = True
            return None
        if msg[0] != "advanced":
            raise RuntimeError(
                f"worker {self.name!r} answered advance with {msg!r}"
            )
        return float(msg[1])

    def address(self) -> Tuple[str, int]:
        if self.port is None:
            raise RuntimeError(f"worker {self.name!r} not started")
        return ("127.0.0.1", self.port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"WorkerHandle({self.name!r}, port={self.port}, {state})"
