"""Multi-process scale-out: a worker fleet behind a front balancer.

One process can only hold one cache.  This package runs N full
dashboard processes (each its own interpreter, server cache, breakers
and admission controller) behind a single :class:`BalancerServer` that
routes by cache affinity on a consistent-hash ring — the fleet's caches
partition the working set instead of duplicating misses, and a dead
worker means rerouted requests, never an outage.

>>> from repro.scaleout import WorkerFleet, WorkerConfig
>>> with WorkerFleet(workers=4, config=WorkerConfig(seed=7)) as fleet:
...     ...  # drive HTTP traffic at fleet.url; tick fleet.clock
"""

from .balancer import BalancerServer, WorkerBreaker
from .fleet import WorkerFleet
from .worker import WorkerConfig, WorkerHandle, worker_main

__all__ = [
    "BalancerServer",
    "WorkerBreaker",
    "WorkerConfig",
    "WorkerFleet",
    "WorkerHandle",
    "worker_main",
]
