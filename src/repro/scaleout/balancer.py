"""The front balancer: one port, N worker dashboards behind it.

:class:`BalancerServer` is the fleet's single public endpoint.  It
proxies every request to a worker process chosen by **cache-affinity
routing**: the request's viewer+route identity (the same
:func:`~repro.web.delivery.request_cache_key` the workers' validator
indexes use) is hashed on a consistent-hash ring
(:class:`~repro.core.sharding.HashRing`) over the worker names.  Repeat
requests for the same key land on the same worker, so the fleet's
caches partition the working set — N workers hold N x the entries —
instead of each worker independently missing on everything (the
round-robin failure mode, kept available as ``affinity=False`` for the
A/B control).

Failure handling mirrors the in-process breaker philosophy one level
up: each worker gets a *mini-breaker* (consecutive transport failures
open it; a wall-clock cooldown later, one probe request may half-open
it).  A request whose owner is down is re-hashed along the ring's
preference order and retried **once** on the next healthy worker — a
dead worker means redistributed load and a cold-cache blip, never an
outage.

Operator endpoints aggregate rather than proxy: ``/metrics`` merges
every worker's scrape under a ``worker`` label (exactly how the
federation merges clusters) plus the balancer's own ``repro_balancer_*``
families, and ``/healthz`` nests each worker's health payload.
"""

from __future__ import annotations

import http.client
import json
import threading
from http.server import BaseHTTPRequestHandler
from typing import Dict, List, Mapping, Optional, Tuple
from urllib.parse import urlparse

from repro.core.sharding import HashRing
from repro.federation.metrics import merge_scrapes
from repro.obs.metrics import MetricsRegistry
from repro.web.delivery import request_cache_key
from repro.web.server import _LoadableHTTPServer

#: headers that are connection-scoped, never forwarded either direction
#: (RFC 9110 §7.6.1), plus the ones the proxy regenerates itself
_HOP_BY_HOP = frozenset(
    {
        "connection",
        "keep-alive",
        "proxy-authenticate",
        "proxy-authorization",
        "te",
        "trailer",
        "transfer-encoding",
        "upgrade",
        "host",
        "server",
        "date",
    }
)


class WorkerBreaker:
    """Per-worker mini circuit breaker, wall-clock based.

    The in-process breakers guard *backends* with sim-time cooldowns;
    out here real processes die in real time, so the cooldown runs on
    the wall clock the balancer actually experiences.  ``threshold``
    consecutive transport failures open the breaker; once ``cooldown_s``
    elapses, probes flow again (half-open) and the next recorded
    outcome closes or re-opens it.  ``allow`` is a pure read — routing
    consults it to *order* candidates, so it must never consume state;
    a few concurrent probes against a still-dead worker each fail fast
    and reroute, which is benign.
    """

    def __init__(self, threshold: int = 1, cooldown_s: float = 2.0):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1: {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._failures = 0
        self._open_until: Optional[float] = None
        self._lock = threading.Lock()

    def allow(self, now: float) -> bool:
        """May a request be sent to this worker right now?"""
        with self._lock:
            return self._open_until is None or now >= self._open_until

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._open_until = None

    def record_failure(self, now: float) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= self.threshold:
                self._open_until = now + self.cooldown_s

    def state(self, now: float) -> str:
        with self._lock:
            if self._open_until is None:
                return "closed"
            return "open" if now < self._open_until else "half-open"


class _ProxyError(Exception):
    """One failed proxy attempt (transport-level, worker unreachable)."""


class _BalancerHandler(BaseHTTPRequestHandler):
    server_version = "ReproBalancer/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def balancer(self) -> "BalancerServer":
        return self.server.balancer  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if self.balancer.verbose:
            super().log_message(fmt, *args)

    def do_GET(self) -> None:  # noqa: N802
        try:
            self._handle()
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - no traceback escapes
            try:
                self._send_json(
                    500, {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                pass

    do_HEAD = do_GET  # noqa: N815

    def _handle(self) -> None:
        path = urlparse(self.path).path
        if path == "/healthz":
            self._send_json(*self.balancer.healthz())
            return
        if path == "/metrics":
            self._send_text(200, self.balancer.merged_metrics())
            return
        self._proxy()

    # -- proxying --------------------------------------------------------

    def _proxy(self) -> None:
        bal = self.balancer
        candidates, routing = bal.route(
            self.headers.get("X-Remote-User"),
            self.headers.get("X-Admin", "") == "1",
            self.path,
        )
        attempted: List[str] = []
        for worker in candidates:
            if len(attempted) >= 2:  # initial attempt + one retry, only
                break
            attempted.append(worker)
            try:
                status, headers, body = bal.fetch(
                    worker, self.command, self.path, self.headers
                )
            except _ProxyError:
                continue
            rerouted = worker != candidates[0] or len(attempted) > 1
            outcome = "rerouted" if rerouted else routing
            bal.requests_total.inc(worker=worker, routing=outcome)
            if len(attempted) > 1:
                bal.retries_total.inc()
            self._relay(status, headers, body)
            return
        bal.unroutable_total.inc()
        self._send_json(
            503,
            {
                "ok": False,
                "error": "no healthy worker available",
                "status": 503,
                "workers_tried": attempted,
            },
        )

    def _relay(
        self,
        status: int,
        headers: List[Tuple[str, str]],
        body: bytes,
    ) -> None:
        """Re-send one upstream response on the client connection."""
        has_body = self.command != "HEAD" and status != 304
        self.send_response(status)
        for name, value in headers:
            lname = name.lower()
            if lname in _HOP_BY_HOP:
                continue
            if lname == "content-length":
                # recomputed below for bodies; preserved verbatim for
                # HEAD so header parity with GET survives the proxy
                if self.command == "HEAD" and status != 304:
                    self.send_header(name, value)
                continue
            self.send_header(name, value)
        if has_body:
            self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if has_body and body:
            self.wfile.write(body)

    # -- plain senders ---------------------------------------------------

    def _send_json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode()
        self._send_body(status, body, "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send_body(
            status, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
        )

    def _send_body(self, status: int, body: bytes, ctype: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)


class BalancerServer:
    """The fleet's front proxy; same lifecycle shape as
    :class:`~repro.web.server.DashboardServer`.

    Parameters
    ----------
    workers:
        Mapping of worker name -> ``(host, port)``.  Names become ring
        nodes and the ``worker`` label on merged metrics.
    affinity:
        Route by cache-affinity hash (the default).  ``False`` degrades
        to pure round-robin — the duplicated-cache control arm of the
        scale-out benchmark.
    """

    def __init__(
        self,
        workers: Mapping[str, Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        affinity: bool = True,
        proxy_timeout_s: float = 30.0,
        breaker_threshold: int = 1,
        breaker_cooldown_s: float = 2.0,
        verbose: bool = False,
        clock=None,
    ):
        if not workers:
            raise ValueError("a balancer needs at least one worker")
        self.workers: Dict[str, Tuple[str, int]] = dict(workers)
        self.affinity = affinity
        self.proxy_timeout_s = proxy_timeout_s
        self.verbose = verbose
        # injectable wall clock (monotonic seconds) for breaker tests
        import time as _time

        self._wall = clock or _time.monotonic
        self.ring = HashRing(self.workers)
        self.breakers: Dict[str, WorkerBreaker] = {
            name: WorkerBreaker(breaker_threshold, breaker_cooldown_s)
            for name in self.workers
        }
        self._rr = 0
        self._rr_lock = threading.Lock()

        self.registry = MetricsRegistry()
        self.requests_total = self.registry.counter(
            "repro_balancer_requests_total",
            "Requests proxied to workers by routing decision",
            labelnames=("worker", "routing"),
        )
        self.proxy_failures_total = self.registry.counter(
            "repro_balancer_proxy_failures_total",
            "Transport-level proxy failures per worker",
            labelnames=("worker",),
        )
        self.retries_total = self.registry.counter(
            "repro_balancer_retries_total",
            "Requests that needed the retry-once re-hash",
        )
        self.unroutable_total = self.registry.counter(
            "repro_balancer_unroutable_total",
            "Requests that exhausted every candidate worker",
        )
        self.worker_up = self.registry.gauge(
            "repro_balancer_worker_up",
            "1 if the worker's mini-breaker is closed, else 0",
            labelnames=("worker",),
        )
        self.workers_gauge = self.registry.gauge(
            "repro_balancer_workers", "Workers registered with the balancer"
        )
        self.workers_gauge.set(len(self.workers))
        for name in self.workers:
            self.worker_up.set(1.0, worker=name)

        self._httpd = _LoadableHTTPServer((host, port), _BalancerHandler)
        self._httpd.balancer = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    # -- routing ---------------------------------------------------------

    def route(
        self, username: Optional[str], is_admin: bool, path: str
    ) -> Tuple[List[str], str]:
        """Candidate workers (healthy-first, at most all of them) and
        the routing label for the first-choice outcome.

        Affinity requests order candidates along the ring's preference
        walk for the request's cache key; viewer-less requests (and the
        round-robin control) rotate through the fleet.  Unhealthy
        workers sink to the back of the candidate list rather than
        vanishing: if *every* breaker is open the request still probes,
        because a guaranteed 503 is worse than an attempt.
        """
        parsed = urlparse(path)
        if self.affinity and username is not None:
            key = request_cache_key(
                username, is_admin, parsed.path, parsed.query
            )
            ordered = self.ring.preference(key)
            routing = "affinity"
        else:
            names = list(self.workers)
            with self._rr_lock:
                start = self._rr
                self._rr = (self._rr + 1) % len(names)
            ordered = names[start:] + names[:start]
            routing = "round_robin"
        now = self._wall()
        healthy = [w for w in ordered if self.breakers[w].allow(now)]
        unhealthy = [w for w in ordered if w not in healthy]
        return healthy + unhealthy, routing

    # -- worker I/O ------------------------------------------------------

    def fetch(
        self,
        worker: str,
        method: str,
        path: str,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, List[Tuple[str, str]], bytes]:
        """One upstream request; raises :class:`_ProxyError` on
        transport failure (and records it on the worker's breaker)."""
        host, port = self.workers[worker]
        fwd = {
            name: value
            for name, value in (headers or {}).items()
            if name.lower() not in _HOP_BY_HOP
        }
        fwd["Connection"] = "close"
        conn = http.client.HTTPConnection(
            host, port, timeout=self.proxy_timeout_s
        )
        try:
            conn.request(method, path, headers=fwd)
            resp = conn.getresponse()
            body = resp.read()
            result = (resp.status, list(resp.getheaders()), body)
        except (OSError, http.client.HTTPException) as exc:
            self.breakers[worker].record_failure(self._wall())
            self.proxy_failures_total.inc(worker=worker)
            raise _ProxyError(f"{worker}: {type(exc).__name__}: {exc}") from exc
        finally:
            conn.close()
        self.breakers[worker].record_success()
        return result

    # -- operator endpoints ----------------------------------------------

    def healthz(self) -> Tuple[int, Dict]:
        """Nested fleet health: the balancer is ok while >= 1 worker is."""
        now = self._wall()
        nested: Dict[str, Dict] = {}
        up = 0
        for name in self.workers:
            if not self.breakers[name].allow(now):
                nested[name] = {
                    "ok": False, "state": self.breakers[name].state(now)
                }
                continue
            try:
                status, _headers, body = self.fetch(name, "GET", "/healthz")
                payload = json.loads(body.decode())
            except (_ProxyError, ValueError):
                nested[name] = {"ok": False, "state": "unreachable"}
                continue
            payload["state"] = "up" if status == 200 else f"http-{status}"
            nested[name] = payload
            if status == 200:
                up += 1
        ok = up > 0
        return 200 if ok else 503, {
            "ok": ok,
            "service": "repro-balancer",
            "routing": "affinity" if self.affinity else "round_robin",
            "workers_total": len(self.workers),
            "workers_up": up,
            "workers": nested,
        }

    def merged_metrics(self) -> str:
        """Every worker's scrape under a ``worker`` label, plus the
        balancer's own families (no label — they describe the fleet)."""
        now = self._wall()
        sections: Dict[str, str] = {}
        for name in self.workers:
            if not self.breakers[name].allow(now):
                self.worker_up.set(0.0, worker=name)
                continue
            try:
                status, _headers, body = self.fetch(name, "GET", "/metrics")
            except _ProxyError:
                self.worker_up.set(0.0, worker=name)
                continue
            if status == 200:
                sections[name] = body.decode()
                self.worker_up.set(1.0, worker=name)
            else:
                self.worker_up.set(0.0, worker=name)
        return merge_scrapes(
            sections, base=self.registry.render(), label="worker"
        )

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "BalancerServer":
        if self._thread is not None:
            raise RuntimeError("balancer already started")
        if self._stopped:
            raise RuntimeError("balancer already stopped; build a new one")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self, grace_s: float = 5.0) -> None:
        if self._thread is None:
            if not self._stopped:
                self._httpd.server_close()
                self._stopped = True
            return
        self._httpd.shutdown()
        self._thread.join(timeout=grace_s)
        self._httpd.server_close()
        self._thread = None
        self._stopped = True

    def __enter__(self) -> "BalancerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
