"""JSON API server over the dashboard routes.

The production system serves these routes from Ruby on Rails behind
Open OnDemand's per-user nginx; here a stdlib HTTP server fills that
role so the examples can exercise a real network path.  Authentication
is modeled the way OOD does it: the authenticated username arrives in a
trusted header (``X-Remote-User``).

The server is optional — everything can be driven in-process through
:class:`~repro.core.dashboard.Dashboard` — but the HTTP layer lets the
browser-style client talk to the same API shape the paper's frontend
fetches.
"""

from __future__ import annotations

import gzip
import json
import math
import re
import threading
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterable, Optional, Tuple
from urllib.parse import parse_qsl, urlparse

#: download URLs the Accounts widget links to (§3.4 export dropdown)
_EXPORT_RE = re.compile(
    r"^/api/v1/export/account_usage/(?P<account>[^/]+)\.(?P<fmt>csv|xls)$"
)

from repro.auth import Viewer
from repro.core.dashboard import Dashboard

# Param validation lives in repro.core.params so widgets can use it without
# importing the HTTP layer; re-exported here for backwards compatibility.
from repro.core.params import (  # noqa: F401  (re-exports)
    ParamError,
    coerce_params,
    positive_int_param,
)
from repro.faults import Deadline
from repro.web.delivery import (
    GZIP_MIN_BYTES,
    RetryJitter,
    ValidatorIndex,
    content_disposition,
    gzip_accepted,
    is_compressible,
    quote_etag,
    request_cache_key,
)


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a Dashboard via the server instance."""

    server_version = "ReproDashboard/1.0"
    # HTTP/1.1 so the streamed homepage can use chunked transfer encoding;
    # every non-chunked response still carries Content-Length, and clients
    # that want one-shot connections send ``Connection: close`` as before.
    protocol_version = "HTTP/1.1"

    @property
    def dashboard(self) -> Dashboard:
        return self.server.dashboard  # type: ignore[attr-defined]

    @property
    def validators(self) -> ValidatorIndex:
        return self.server.validators  # type: ignore[attr-defined]

    @property
    def retry_jitter(self) -> RetryJitter:
        return self.server.retry_jitter  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    def do_GET(self) -> None:  # noqa: N802
        try:
            self._handle_get()
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass
        except Exception as exc:  # noqa: BLE001 - no traceback ever escapes
            try:
                self._send(
                    500,
                    {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                )
            except OSError:  # headers already sent / socket gone
                pass

    # HEAD is GET with the body suppressed (``_send_body`` checks
    # ``self.command``): same status, same headers — including
    # Content-Length — so clients can probe a route cheaply.
    do_HEAD = do_GET  # noqa: N815

    def _endpoint_kind(self, path: str) -> str:
        """Low-cardinality endpoint label for the HTTP request counter."""
        if path == "/healthz":
            return "health"
        if path == "/metrics":
            return "metrics"
        if path == "/api/v1/traces/recent":
            return "traces"
        if path == "/":
            return "homepage"
        if _EXPORT_RE.match(path):
            return "export"
        if path.startswith("/api/"):
            return "api"
        return "other"

    def _record_http(self, status: int) -> None:
        self.dashboard.ctx.obs.record_http(
            self._endpoint_kind(urlparse(self.path).path), status
        )

    def _deadline_from_headers(self) -> Tuple[Optional[Deadline], Optional[str]]:
        """Parse ``X-Request-Deadline-Ms`` into a :class:`Deadline`.

        Returns ``(deadline, error)``; a malformed or non-positive value
        is the client's mistake, reported as a structured 400 rather than
        silently ignored.  The budget is capped by the cache policy so a
        client cannot demand an unbounded wait.
        """
        raw = self.headers.get("X-Request-Deadline-Ms")
        if raw is None:
            return None, None
        try:
            ms = float(raw.strip())
        except ValueError:
            ms = math.nan
        if not math.isfinite(ms) or ms <= 0:
            return None, (
                f"X-Request-Deadline-Ms must be a positive number of"
                f" milliseconds, got {raw!r}"
            )
        policy = self.dashboard.ctx.cache_policy
        return Deadline(policy.clamp_deadline(ms / 1000.0)), None

    def _handle_get(self) -> None:
        parsed = urlparse(self.path)
        try:
            # keep_blank_values so ``?limit=`` reaches coerce_params (which
            # rejects it as a structured 400) instead of vanishing silently
            params = coerce_params(
                parse_qsl(parsed.query, keep_blank_values=True)
            )
        except ParamError as exc:
            self._send(400, {"ok": False, "error": str(exc), "status": 400})
            return
        username = self.headers.get("X-Remote-User")

        if parsed.path == "/healthz":
            # the dashboard owns its health shape: single-cluster reports
            # breakers + admission tier, federated adds per-cluster detail
            self._send(200, self.dashboard.healthz_payload())
            return
        if parsed.path == "/metrics":
            # operator endpoint, unauthenticated like /healthz
            self._send_text(200, self.dashboard.ctx.scrape_metrics())
            return
        if parsed.path == "/api/v1/traces/recent":
            try:
                limit = positive_int_param(params, "limit")
            except ParamError as exc:
                self._send(400, {"ok": False, "error": str(exc), "status": 400})
                return
            traces = self.dashboard.ctx.obs.tracer.recent(limit)
            self._send(
                200,
                {
                    "ok": True,
                    "traces": [t.to_dict() for t in traces],
                    "slow_threshold_ms": (
                        self.dashboard.ctx.obs.tracer.slow_threshold_ms
                    ),
                },
            )
            return
        if username is None:
            self._send(401, {"ok": False, "error": "missing X-Remote-User header"})
            return
        viewer = Viewer(
            username=username,
            is_admin=self.headers.get("X-Admin", "") == "1",
        )
        # the deadline parses *before* any dispatch branch — the export
        # path used to return first, silently ignoring the header and
        # accepting malformed values
        deadline, deadline_error = self._deadline_from_headers()
        if deadline_error is not None:
            self._send(400, {"ok": False, "error": deadline_error, "status": 400})
            return
        if parsed.path == "/":
            self._send_html_stream(self.dashboard.stream_homepage(viewer))
            return
        request_key = request_cache_key(
            viewer.username, viewer.is_admin, parsed.path, parsed.query
        )
        if self._maybe_not_modified(request_key):
            return
        export = _EXPORT_RE.match(parsed.path)
        if export is not None:
            response = self.dashboard.call(
                "account_usage_export",
                viewer,
                {"account": export.group("account"), "format": export.group("fmt")},
                deadline=deadline,
            )
            if not response.ok:
                self._send_route_response(response, request_key=request_key)
                return
            self._send_download(
                response.data["content"],
                response.data["mime_type"],
                response.data["filename"],
                response=response,
                request_key=request_key,
            )
            return
        response = self.dashboard.get(parsed.path, viewer, params, deadline=deadline)
        self._send_route_response(response, request_key=request_key)

    # -- conditional GET -----------------------------------------------------

    def _maybe_not_modified(self, request_key: str) -> bool:
        """Answer a validating conditional GET with 304 — zero render work,
        zero body bytes.  The decision (ETag match + every cache dep still
        fresh at the same write generation) lives in
        :meth:`repro.web.delivery.ValidatorIndex.validate`; a miss on any
        condition falls through to a full dispatch."""
        if_none_match = self.headers.get("If-None-Match")
        if if_none_match is None:
            return False
        ctx = self.dashboard.ctx
        record = self.validators.validate(
            request_key, if_none_match, ctx.cache, ctx.clock.now()
        )
        if record is None:
            return False
        kind = self._endpoint_kind(urlparse(self.path).path)
        ctx.obs.record_not_modified(kind, record.body_len)
        self._record_http(304)
        self.send_response(304)
        self.send_header("ETag", quote_etag(record.etag))
        self.end_headers()  # no body, no Content-Length (RFC 9110 §15.4.5)
        return True

    def _record_validator(
        self,
        extra: list,
        response,
        request_key: Optional[str],
        body_len: int,
    ) -> None:
        """Attach the ETag header and index the validator for later 304s."""
        etag = getattr(response, "etag", None)
        if etag is None or request_key is None:
            return
        extra.append(("ETag", quote_etag(etag)))
        self.validators.record(
            request_key, etag, response.cache_deps or (), body_len
        )

    # -- helpers ------------------------------------------------------------

    def _send(self, status: int, payload: Dict[str, Any],
              extra: Tuple[Tuple[str, str], ...] = ()) -> None:
        body = json.dumps(payload).encode()
        self._send_body(status, body, "application/json", extra=extra)

    def _send_route_response(self, response,
                             request_key: Optional[str] = None) -> None:
        """Send a :class:`RouteResponse`, surfacing backpressure hints.

        Admission rejections (429/503/504) carry a retry budget; clients
        honouring ``Retry-After`` spread their retries instead of piling
        onto an overloaded daemon.  Responses computed purely from fresh
        cache entries additionally carry a strong ETag.
        """
        extra = []
        retry_after = getattr(response, "retry_after_s", None)
        if retry_after is not None and retry_after > 0:
            # jitter the header hint so concurrently rejected clients
            # spread their retries instead of re-stampeding in lockstep;
            # the body's retry_after_s stays the un-jittered budget
            hint = self.retry_jitter.jitter(retry_after)
            extra.append(("Retry-After", str(max(1, math.ceil(hint)))))
        status = response.status if not response.ok else 200
        body = json.dumps(response.to_json()).encode()
        self._record_validator(extra, response, request_key, len(body))
        self._send_body(status, body, "application/json", extra=tuple(extra))

    def _send_text(self, status: int, text: str) -> None:
        # the content type Prometheus scrapers expect from /metrics
        self._send_body(
            status, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
        )

    def _send_download(self, content: str, mime: str, filename: str,
                       response=None, request_key: Optional[str] = None) -> None:
        body = content.encode()
        # filename derives from a URL path segment: sanitize per RFC 6266
        # or a crafted account name corrupts/injects response headers
        extra = [("Content-Disposition", content_disposition(filename))]
        if response is not None:
            self._record_validator(extra, response, request_key, len(body))
        self._send_body(200, body, mime, extra=tuple(extra))

    def _send_html(self, status: int, html: str) -> None:
        self._send_body(status, html.encode(), "text/html; charset=utf-8")

    def _send_body(self, status: int, body: bytes, ctype: str,
                   extra: Tuple[Tuple[str, str], ...] = ()) -> None:
        headers = list(extra)
        if is_compressible(ctype) and len(body) >= GZIP_MIN_BYTES:
            # Vary on every *eligible* response — caches must key on the
            # request header even when this client gets identity bytes
            headers.append(("Vary", "Accept-Encoding"))
            if gzip_accepted(self.headers.get("Accept-Encoding")):
                compressed = gzip.compress(body, mtime=0)  # deterministic
                if len(compressed) < len(body):
                    if self.command != "HEAD":
                        self.dashboard.ctx.obs.record_bytes_saved(
                            "gzip", len(body) - len(compressed)
                        )
                    headers.append(("Content-Encoding", "gzip"))
                    body = compressed
        self._record_http(status)
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        for name, value in headers:
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":  # HEAD mirrors headers, omits the body
            self.wfile.write(body)

    def _send_html_stream(self, chunks: Iterable[str]) -> None:
        """Stream an HTML document under chunked transfer encoding.

        Headers flush before the first chunk is rendered, so
        time-to-first-byte is decoupled from the slowest widget.  A HEAD
        request returns after the headers without advancing the generator
        at all — header parity with zero render work.
        """
        use_gzip = gzip_accepted(self.headers.get("Accept-Encoding"))
        self._record_http(200)
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Vary", "Accept-Encoding")
        if use_gzip:
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        if self.command == "HEAD":
            return
        # wbits=31 emits a gzip member; zlib writes no mtime, so streamed
        # bytes are as deterministic as gzip.compress(..., mtime=0)
        compressor = zlib.compressobj(wbits=31) if use_gzip else None
        raw_len = sent_len = 0
        try:
            for chunk in chunks:
                data = chunk.encode()
                raw_len += len(data)
                if compressor is not None:
                    # sync-flush so each widget slot reaches the client
                    # as soon as its worker completes, not at stream end
                    data = compressor.compress(data) + compressor.flush(
                        zlib.Z_SYNC_FLUSH
                    )
                if data:
                    sent_len += len(data)
                    self._write_chunk(data)
            if compressor is not None:
                tail = compressor.flush(zlib.Z_FINISH)
                if tail:
                    sent_len += len(tail)
                    self._write_chunk(tail)
            self.wfile.write(b"0\r\n\r\n")
            if compressor is not None and raw_len > sent_len:
                self.dashboard.ctx.obs.record_bytes_saved(
                    "gzip", raw_len - sent_len
                )
        except Exception:  # noqa: BLE001
            # headers (and possibly chunks) are already on the wire — a 500
            # is no longer expressible.  Abort the stream instead: chunked
            # framing makes the truncation detectable client-side, and
            # closing the connection stops a broken generator from wedging
            # the handler thread.
            self.close_connection = True

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")


class _LoadableHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer hardened for load tests and rapid restarts.

    The stdlib default ``request_queue_size`` of 5 drops connections the
    moment a traffic generator fires a burst of arrivals in one tick;
    a deeper accept backlog lets the admission layer (not the kernel)
    decide what gets shed.

    ``allow_reuse_address`` (``SO_REUSEADDR``) is made explicit — a
    worker process killed and respawned on the same port must not flake
    with ``Address already in use`` while the old socket lingers in
    TIME_WAIT — and handler threads are daemonic with a non-blocking
    close, so stopping a server never hangs on a wedged keep-alive
    connection (scale-out tests start/kill/restart workers rapidly).
    """

    request_queue_size = 128
    allow_reuse_address = True
    daemon_threads = True
    # don't join lingering handler threads in server_close(): a client
    # holding a keep-alive connection open must not block a restart
    block_on_close = False


class DashboardServer:
    """Threaded HTTP server wrapping one :class:`Dashboard`.

    Binds at construction time (``port=0`` asks the kernel for an
    ephemeral port — the scale-out fleet always does this); the bound
    port is exposed via :attr:`port` immediately, before :meth:`start`.
    """

    def __init__(self, dashboard: Dashboard, host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False):
        self.dashboard = dashboard
        self._httpd = _LoadableHTTPServer((host, port), _Handler)
        self._httpd.dashboard = dashboard  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        # one validator index per server: ETags recorded at send time,
        # revalidated on If-None-Match without dispatching the route
        self._httpd.validators = ValidatorIndex()  # type: ignore[attr-defined]
        # one jitter stream per server: deterministic Retry-After spread
        self._httpd.retry_jitter = RetryJitter()  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def port(self) -> int:
        """The actually-bound TCP port (resolves ``port=0`` bindings)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._thread is not None

    @property
    def validators(self) -> ValidatorIndex:
        """The server's ETag validator index (for tests and reports)."""
        return self._httpd.validators  # type: ignore[attr-defined]

    def start(self) -> "DashboardServer":
        """Start serving on a background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        if self._stopped:
            raise RuntimeError("server already stopped; build a new one")
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self, grace_s: float = 5.0) -> None:
        """Shut the server down and join its thread (idempotent).

        The listening socket closes unconditionally — even if the accept
        loop takes longer than ``grace_s`` to drain — so the port is
        free for an immediate rebind.
        """
        if self._thread is None:
            if not self._stopped:
                # never started: still release the bound socket
                self._httpd.server_close()
                self._stopped = True
            return
        self._httpd.shutdown()
        self._thread.join(timeout=grace_s)
        self._httpd.server_close()
        self._thread = None
        self._stopped = True

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
