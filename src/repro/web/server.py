"""JSON API server over the dashboard routes.

The production system serves these routes from Ruby on Rails behind
Open OnDemand's per-user nginx; here a stdlib HTTP server fills that
role so the examples can exercise a real network path.  Authentication
is modeled the way OOD does it: the authenticated username arrives in a
trusted header (``X-Remote-User``).

The server is optional — everything can be driven in-process through
:class:`~repro.core.dashboard.Dashboard` — but the HTTP layer lets the
browser-style client talk to the same API shape the paper's frontend
fetches.
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlparse

#: download URLs the Accounts widget links to (§3.4 export dropdown)
_EXPORT_RE = re.compile(
    r"^/api/v1/export/account_usage/(?P<account>[^/]+)\.(?P<fmt>csv|xls)$"
)

from repro.auth import Viewer
from repro.core.dashboard import Dashboard

# Param validation lives in repro.core.params so widgets can use it without
# importing the HTTP layer; re-exported here for backwards compatibility.
from repro.core.params import (  # noqa: F401  (re-exports)
    ParamError,
    coerce_params,
    positive_int_param,
)
from repro.faults import Deadline


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a Dashboard via the server instance."""

    server_version = "ReproDashboard/1.0"

    @property
    def dashboard(self) -> Dashboard:
        return self.server.dashboard  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    def do_GET(self) -> None:  # noqa: N802
        try:
            self._handle_get()
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass
        except Exception as exc:  # noqa: BLE001 - no traceback ever escapes
            try:
                self._send(
                    500,
                    {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                )
            except OSError:  # headers already sent / socket gone
                pass

    # HEAD is GET with the body suppressed (``_send_body`` checks
    # ``self.command``): same status, same headers — including
    # Content-Length — so clients can probe a route cheaply.
    do_HEAD = do_GET  # noqa: N815

    def _endpoint_kind(self, path: str) -> str:
        """Low-cardinality endpoint label for the HTTP request counter."""
        if path == "/healthz":
            return "health"
        if path == "/metrics":
            return "metrics"
        if path == "/api/v1/traces/recent":
            return "traces"
        if path == "/":
            return "homepage"
        if _EXPORT_RE.match(path):
            return "export"
        if path.startswith("/api/"):
            return "api"
        return "other"

    def _record_http(self, status: int) -> None:
        self.dashboard.ctx.obs.record_http(
            self._endpoint_kind(urlparse(self.path).path), status
        )

    def _deadline_from_headers(self) -> Tuple[Optional[Deadline], Optional[str]]:
        """Parse ``X-Request-Deadline-Ms`` into a :class:`Deadline`.

        Returns ``(deadline, error)``; a malformed or non-positive value
        is the client's mistake, reported as a structured 400 rather than
        silently ignored.  The budget is capped by the cache policy so a
        client cannot demand an unbounded wait.
        """
        raw = self.headers.get("X-Request-Deadline-Ms")
        if raw is None:
            return None, None
        try:
            ms = float(raw.strip())
        except ValueError:
            ms = math.nan
        if not math.isfinite(ms) or ms <= 0:
            return None, (
                f"X-Request-Deadline-Ms must be a positive number of"
                f" milliseconds, got {raw!r}"
            )
        policy = self.dashboard.ctx.cache_policy
        return Deadline(policy.clamp_deadline(ms / 1000.0)), None

    def _handle_get(self) -> None:
        parsed = urlparse(self.path)
        params = coerce_params(parse_qsl(parsed.query))
        username = self.headers.get("X-Remote-User")

        if parsed.path == "/healthz":
            self._send(
                200,
                {
                    "ok": True,
                    "service": "repro-dashboard",
                    # circuit-breaker states per backend, for operators
                    # watching a degraded cluster recover; the same call
                    # mirrors the states into the /metrics gauge
                    "breakers": self.dashboard.ctx.breaker_report(),
                    # admission tier + signals (§ overload control): stays
                    # live even when the dashboard is shedding load
                    "admission": self.dashboard.ctx.admission_report(),
                },
            )
            return
        if parsed.path == "/metrics":
            # operator endpoint, unauthenticated like /healthz
            self._send_text(200, self.dashboard.ctx.scrape_metrics())
            return
        if parsed.path == "/api/v1/traces/recent":
            try:
                limit = positive_int_param(params, "limit")
            except ParamError as exc:
                self._send(400, {"ok": False, "error": str(exc), "status": 400})
                return
            traces = self.dashboard.ctx.obs.tracer.recent(limit)
            self._send(
                200,
                {
                    "ok": True,
                    "traces": [t.to_dict() for t in traces],
                    "slow_threshold_ms": (
                        self.dashboard.ctx.obs.tracer.slow_threshold_ms
                    ),
                },
            )
            return
        if username is None:
            self._send(401, {"ok": False, "error": "missing X-Remote-User header"})
            return
        viewer = Viewer(
            username=username,
            is_admin=self.headers.get("X-Admin", "") == "1",
        )
        if parsed.path == "/":
            html = self.dashboard.render_homepage(viewer).document
            self._send_html(200, html)
            return
        export = _EXPORT_RE.match(parsed.path)
        if export is not None:
            response = self.dashboard.call(
                "account_usage_export",
                viewer,
                {"account": export.group("account"), "format": export.group("fmt")},
            )
            if not response.ok:
                self._send_route_response(response)
                return
            self._send_download(
                response.data["content"],
                response.data["mime_type"],
                response.data["filename"],
            )
            return
        deadline, deadline_error = self._deadline_from_headers()
        if deadline_error is not None:
            self._send(400, {"ok": False, "error": deadline_error, "status": 400})
            return
        response = self.dashboard.get(parsed.path, viewer, params, deadline=deadline)
        self._send_route_response(response)

    # -- helpers ------------------------------------------------------------

    def _send(self, status: int, payload: Dict[str, Any],
              extra: Tuple[Tuple[str, str], ...] = ()) -> None:
        body = json.dumps(payload).encode()
        self._send_body(status, body, "application/json", extra=extra)

    def _send_route_response(self, response) -> None:
        """Send a :class:`RouteResponse`, surfacing backpressure hints.

        Admission rejections (429/503/504) carry a retry budget; clients
        honouring ``Retry-After`` spread their retries instead of piling
        onto an overloaded daemon.
        """
        extra: Tuple[Tuple[str, str], ...] = ()
        retry_after = getattr(response, "retry_after_s", None)
        if retry_after is not None and retry_after > 0:
            extra = (("Retry-After", str(max(1, math.ceil(retry_after)))),)
        status = response.status if not response.ok else 200
        self._send(status, response.to_json(), extra=extra)

    def _send_text(self, status: int, text: str) -> None:
        # the content type Prometheus scrapers expect from /metrics
        self._send_body(
            status, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
        )

    def _send_download(self, content: str, mime: str, filename: str) -> None:
        self._send_body(
            200,
            content.encode(),
            mime,
            extra=(("Content-Disposition", f'attachment; filename="{filename}"'),),
        )

    def _send_html(self, status: int, html: str) -> None:
        self._send_body(status, html.encode(), "text/html; charset=utf-8")

    def _send_body(self, status: int, body: bytes, ctype: str,
                   extra: Tuple[Tuple[str, str], ...] = ()) -> None:
        self._record_http(status)
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        for name, value in extra:
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":  # HEAD mirrors headers, omits the body
            self.wfile.write(body)


class _LoadableHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a listen backlog sized for load tests.

    The stdlib default ``request_queue_size`` of 5 drops connections the
    moment a traffic generator fires a burst of arrivals in one tick;
    a deeper accept backlog lets the admission layer (not the kernel)
    decide what gets shed.
    """

    request_queue_size = 128


class DashboardServer:
    """Threaded HTTP server wrapping one :class:`Dashboard`."""

    def __init__(self, dashboard: Dashboard, host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False):
        self.dashboard = dashboard
        self._httpd = _LoadableHTTPServer((host, port), _Handler)
        self._httpd.dashboard = dashboard  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "DashboardServer":
        """Start serving on a background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
