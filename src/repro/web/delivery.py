"""HTTP delivery-layer helpers: validators, negotiation, header hygiene.

ROADMAP item 5 takes the paper's §2.4 dual-layer caching story onto the
wire.  This module holds the policy pieces the request handler composes:

* :class:`ValidatorIndex` — the server-side ETag book-keeping that lets
  a repeat poll of an unchanged widget be answered ``304 Not Modified``
  with **zero render work and zero body bytes**.  Each recorded response
  remembers the cache entries (and their write *generations*, see
  :meth:`repro.core.caching.TTLCache.generation_of`) it was computed
  from; a conditional GET revalidates by checking those entries are
  still present, fresh, and un-rewritten — never by re-running the
  route handler.
* ``Accept-Encoding`` negotiation and the compressibility policy for
  gzip responses (body bytes saved are recorded to
  ``repro_http_bytes_saved_total``).
* RFC 6266 ``Content-Disposition`` filename sanitisation — download
  filenames derive from URL path segments, so quotes and control
  characters must never reach the header line.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.rng import RandomStreams

#: bodies smaller than this are not worth a gzip member (header + CRC
#: overhead ≈ 25 bytes, and tiny JSON rarely deflates well)
GZIP_MIN_BYTES = 500

#: content-type prefixes that compress well (text-shaped payloads)
_COMPRESSIBLE_PREFIXES = (
    "text/",
    "application/json",
    "application/javascript",
    "image/svg",
)


def is_compressible(content_type: str) -> bool:
    """True for text-shaped content types worth gzipping."""
    ctype = content_type.split(";", 1)[0].strip().lower()
    return ctype.startswith(_COMPRESSIBLE_PREFIXES)


def gzip_accepted(accept_encoding: Optional[str]) -> bool:
    """Parse an ``Accept-Encoding`` header: does the client take gzip?

    Honors q-values — ``gzip;q=0`` (and ``*;q=0`` without a gzip entry)
    is a refusal, not an acceptance.  An absent header means "identity
    only" per RFC 9110 §12.5.3's conservative reading for proxies.
    """
    if not accept_encoding:
        return False
    wildcard: Optional[bool] = None
    for part in accept_encoding.split(","):
        token, _, params = part.partition(";")
        coding = token.strip().lower()
        if coding not in ("gzip", "x-gzip", "*"):
            continue
        q = 1.0
        for param in params.split(";"):
            name, _, value = param.partition("=")
            if name.strip().lower() == "q":
                try:
                    q = float(value.strip())
                except ValueError:
                    q = 0.0
        if coding == "*":
            wildcard = q > 0.0
        else:
            return q > 0.0  # an explicit gzip entry beats the wildcard
    if wildcard is not None:
        return wildcard
    return False


def quote_etag(etag: str) -> str:
    """Wrap a raw validator in the quoted form the header field uses."""
    return f'"{etag}"'


def if_none_match_values(header: Optional[str]) -> Tuple[str, ...]:
    """Raw validators listed in an ``If-None-Match`` header.

    Strips quotes and weakness prefixes (a weak validator still matches
    for 304 purposes per RFC 9110 §13.1.2's weak comparison).  ``*``
    comes through verbatim.
    """
    if not header:
        return ()
    values = []
    for part in header.split(","):
        tag = part.strip()
        if tag.startswith(("W/", "w/")):
            tag = tag[2:]
        if len(tag) >= 2 and tag[0] == '"' and tag[-1] == '"':
            tag = tag[1:-1]
        if tag:
            values.append(tag)
    return tuple(values)


def content_disposition(filename: str) -> str:
    """An ``attachment`` Content-Disposition with the filename made safe
    per RFC 6266: control characters stripped (CR/LF would split the
    header), backslash and double-quote escaped (a bare quote would
    terminate the quoted-string early and inject whatever follows)."""
    safe = "".join(c for c in filename if ord(c) >= 0x20 and ord(c) != 0x7F)
    safe = safe.replace("\\", "\\\\").replace('"', '\\"')
    return f'attachment; filename="{safe}"'


class RetryJitter:
    """Deterministic seeded jitter for ``Retry-After`` hints.

    Every admission rejection (429/503/504) used to carry the *same*
    retry budget, so every rejected client slept the same interval and
    re-stampeded the recovering daemon in lockstep.  Each call draws the
    next value from one seeded :class:`~repro.sim.rng.RandomStreams`
    stream and spreads the hint across ``[hint, hint * (1 + spread))`` —
    concurrent rejections get *different* hints, and a run with the same
    seed replays the exact same sequence of hints.

    Jitter applies to the header hint only; the JSON body's
    ``retry_after_s`` stays the route layer's un-jittered budget.
    """

    def __init__(self, seed: int = 0, spread: float = 0.5):
        if spread < 0:
            raise ValueError(f"spread must be >= 0: {spread}")
        self.spread = spread
        self._rng = RandomStreams(seed=seed).stream("retry-after")
        self._lock = threading.Lock()

    def jitter(self, retry_after_s: float) -> float:
        """The jittered hint for one rejected request (thread-safe)."""
        with self._lock:
            draw = float(self._rng.random())
        return retry_after_s * (1.0 + self.spread * draw)


def request_cache_key(
    username: str, is_admin: bool, path: str, query: str
) -> str:
    """The canonical viewer+route identity of one GET request.

    This single derivation is shared by the :class:`ValidatorIndex`
    (ETag revalidation) and the scale-out balancer's affinity router —
    the balancer hashes exactly the key the worker will cache under, so
    repeat requests land on the worker that already holds the entry.
    """
    return f"{username}|{int(is_admin)}|{path}?{query}"


@dataclass(frozen=True)
class ValidatorRecord:
    """What the server remembers about one ETagged response."""

    etag: str
    #: the cache entries the response was computed from, as
    #: ``(full_key, generation)`` pairs
    deps: Tuple[Tuple[str, int], ...]
    #: body bytes the matching 304 keeps off the wire
    body_len: int


class ValidatorIndex:
    """ETag validators for recently served responses, by request key.

    Bounded LRU, thread-safe.  :meth:`validate` is the 304 decision: the
    presented ``If-None-Match`` must name the recorded ETag *and* every
    cache entry the response depended on must still be present, fresh,
    and at the same write generation.  Anything else — evicted entry,
    expired TTL, concurrent rewrite — falls through to a full dispatch,
    so a 304 can never resurrect stale bytes.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        self.max_entries = max_entries
        self._records: "OrderedDict[str, ValidatorRecord]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def record(
        self,
        request_key: str,
        etag: str,
        deps: Tuple[Tuple[str, int], ...],
        body_len: int,
    ) -> None:
        """Remember the validator just sent for ``request_key``."""
        with self._lock:
            self._records[request_key] = ValidatorRecord(
                etag=etag, deps=deps, body_len=body_len
            )
            self._records.move_to_end(request_key)
            while len(self._records) > self.max_entries:
                self._records.popitem(last=False)

    def validate(
        self, request_key: str, if_none_match: Optional[str], cache, now: float
    ) -> Optional[ValidatorRecord]:
        """The record to answer 304 with, or None for a full dispatch."""
        with self._lock:
            record = self._records.get(request_key)
            if record is not None:
                self._records.move_to_end(request_key)
        if record is None:
            return None
        presented = if_none_match_values(if_none_match)
        if record.etag not in presented and "*" not in presented:
            return None
        for full_key, generation in record.deps:
            entry = cache.entry(full_key)
            if (
                entry is None
                or not entry.is_fresh(now)
                or entry.generation != generation
            ):
                return None
        return record


__all__ = [
    "GZIP_MIN_BYTES",
    "RetryJitter",
    "ValidatorIndex",
    "ValidatorRecord",
    "content_disposition",
    "gzip_accepted",
    "if_none_match_values",
    "is_compressible",
    "quote_etag",
    "request_cache_key",
]
