"""Web layer: JSON API server and browser-style client."""

from .client import (
    BrowserClient,
    HttpTransport,
    InProcessTransport,
    Transport,
    TransportError,
    WidgetLoad,
)
from .server import DashboardServer, coerce_params

__all__ = [
    "BrowserClient",
    "HttpTransport",
    "InProcessTransport",
    "Transport",
    "TransportError",
    "WidgetLoad",
    "DashboardServer",
    "coerce_params",
]
