"""Browser-style dashboard client: fetch + IndexedDB caching.

Models the paper's frontend behaviour (§2.3/§2.4): each widget fetches
its API route, stores the response in IndexedDB, and on later visits
renders instantly from the client cache (refreshing stale data in the
background).  Two transports are provided:

* :class:`InProcessTransport` — calls the Dashboard directly (used by
  tests and benchmarks; zero network noise);
* :class:`HttpTransport` — real HTTP against a
  :class:`~repro.web.server.DashboardServer`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol, Tuple

from repro.auth import Viewer
from repro.core.clientcache import ClientCache, FetchOutcome, IndexedDBStore
from repro.core.dashboard import Dashboard
from repro.sim.clock import SimClock


class TransportError(RuntimeError):
    """A failed fetch (non-2xx or unreachable backend)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class Transport(Protocol):
    def get(self, path: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Fetch a route; returns the ``data`` payload or raises
        :class:`TransportError`."""


class InProcessTransport:
    """Directly drives a Dashboard instance (the default for tests)."""

    def __init__(self, dashboard: Dashboard, viewer: Viewer):
        self.dashboard = dashboard
        self.viewer = viewer
        self.requests = 0
        self.not_modified = 0

    def get(self, path: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Fetch a route over HTTP; raises TransportError on failure."""
        data, _, _ = self.get_conditional(path, params)
        return data

    def get_conditional(
        self, path: str, params: Dict[str, Any], etag: Optional[str] = None
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str], bool]:
        """Conditional fetch: ``(data, etag, not_modified)``.

        In-process there is no wire to save bytes on, but the 304
        contract is modeled the same way: an unchanged validator returns
        ``(None, etag, True)`` so :class:`~repro.core.clientcache.ClientCache`
        exercises the identical revalidation path as over HTTP.
        """
        self.requests += 1
        response = self.dashboard.get(path, self.viewer, params)
        if not response.ok:
            raise TransportError(response.status, response.error or "error")
        if etag is not None and response.etag == etag:
            self.not_modified += 1
            return None, etag, True
        assert response.data is not None
        return response.data, response.etag, False


class HttpTransport:
    """Real HTTP against the stdlib server."""

    def __init__(self, base_url: str, username: str, is_admin: bool = False,
                 timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.username = username
        self.is_admin = is_admin
        self.timeout_s = timeout_s
        self.requests = 0
        self.not_modified = 0

    def get(self, path: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Fetch a route over HTTP; raises TransportError on failure."""
        data, _, _ = self.get_conditional(path, params)
        return data

    def get_conditional(
        self, path: str, params: Dict[str, Any], etag: Optional[str] = None
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str], bool]:
        """Conditional fetch: ``(data, etag, not_modified)``.

        Sends ``If-None-Match`` when a validator is known; a 304 reply
        (which ``urllib`` surfaces as an :class:`~urllib.error.HTTPError`)
        returns ``(None, etag, True)`` with zero body bytes read.
        """
        self.requests += 1
        query = urllib.parse.urlencode(params)
        url = f"{self.base_url}{path}" + (f"?{query}" if query else "")
        req = urllib.request.Request(url, headers={"X-Remote-User": self.username})
        if self.is_admin:
            req.add_header("X-Admin", "1")
        if etag is not None:
            req.add_header("If-None-Match", f'"{etag}"')
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                payload = json.loads(resp.read())
                fresh_etag = _raw_etag(resp.headers.get("ETag"))
        except urllib.error.HTTPError as exc:
            if exc.code == 304:  # not an error: the cached payload stands
                self.not_modified += 1
                return None, _raw_etag(exc.headers.get("ETag")) or etag, True
            try:
                detail = json.loads(exc.read()).get("error", str(exc))
            except Exception:  # noqa: BLE001
                detail = str(exc)
            raise TransportError(exc.code, detail) from exc
        if not payload.get("ok"):
            raise TransportError(payload.get("status", 500), payload.get("error", ""))
        return payload["data"], fresh_etag, False


def _raw_etag(header: Optional[str]) -> Optional[str]:
    """Strip the quoted form off an ``ETag`` response header."""
    if header is None:
        return None
    tag = header.strip()
    if len(tag) >= 2 and tag[0] == '"' and tag[-1] == '"':
        tag = tag[1:-1]
    return tag or None


@dataclass
class WidgetLoad:
    """Result of loading one widget in the simulated browser."""

    name: str
    data: Dict[str, Any]
    served_from: str  # "client-cache" | "network"
    age_s: float
    revalidated: bool


class BrowserClient:
    """The simulated browser: client cache + transport + widget loads."""

    def __init__(
        self,
        transport: Transport,
        clock: SimClock,
        db: Optional[IndexedDBStore] = None,
    ):
        self.transport = transport
        self.cache = ClientCache(clock, db=db)
        self.loads: List[WidgetLoad] = []

    def load(
        self,
        name: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        max_age_s: float = 30.0,
    ) -> WidgetLoad:
        """Load one component the way the frontend does (§2.4): IndexedDB
        first, network on miss, stale-while-revalidate in between.
        Transports that support conditional fetches revalidate with
        ``If-None-Match``, so an unchanged widget costs a 304 and no body."""
        params = params or {}
        key = path + "?" + json.dumps(params, sort_keys=True)
        conditional = getattr(self.transport, "get_conditional", None)
        if conditional is not None:
            outcome: FetchOutcome = self.cache.fetch_conditional(
                key,
                fetch_conditional=lambda etag: conditional(path, params, etag),
                max_age_s=max_age_s,
            )
        else:  # custom get-only transports keep the unconditional path
            outcome = self.cache.fetch(
                key,
                fetch_remote=lambda: self.transport.get(path, params),
                max_age_s=max_age_s,
            )
        load = WidgetLoad(
            name=name,
            data=outcome.value,
            served_from=outcome.served_from,
            age_s=outcome.age_s,
            revalidated=outcome.revalidated,
        )
        self.loads.append(load)
        return load

    def load_delta(
        self,
        name: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        max_age_s: float = 30.0,
    ) -> WidgetLoad:
        """Load a cursor'd delta view (``/api/v1/views/*``).

        Fresh client-cache state renders instantly like :meth:`load`;
        a stale entry revalidates with ``?since=<stored cursor>``, so the
        wire carries only the records changed past the cursor and the
        client folds them into its stored record map."""
        params = dict(params or {})
        params.pop("since", None)  # the cursor comes from the client cache
        key = path + "?" + json.dumps(params, sort_keys=True)

        def fetch_delta(cursor: Optional[int]) -> Dict[str, Any]:
            q = dict(params)
            if cursor is not None:
                q["since"] = cursor
            return self.transport.get(path, q)

        outcome: FetchOutcome = self.cache.fetch_delta(
            key, fetch_delta=fetch_delta, max_age_s=max_age_s
        )
        load = WidgetLoad(
            name=name,
            data=outcome.value,
            served_from=outcome.served_from,
            age_s=outcome.age_s,
            revalidated=outcome.revalidated,
        )
        self.loads.append(load)
        return load

    def open_homepage(self, manifest: Dict[str, Any]) -> List[WidgetLoad]:
        """Load every widget listed in the homepage manifest (the real
        frontend fires these fetches concurrently on page load)."""
        return [
            self.load(w["name"], w["path"], max_age_s=w["max_age_s"])
            for w in manifest["widgets"]
        ]

    @property
    def instant_fraction(self) -> float:
        """Fraction of loads served instantly from the client cache —
        the §2.4 'almost always instantly sees the full component' claim."""
        if not self.loads:
            return 0.0
        instant = sum(1 for l in self.loads if l.served_from == "client-cache")
        return instant / len(self.loads)
