"""Federated pages and cross-cluster rollups.

Every function here follows the same partial-result contract (the
tentpole's quorum semantics): per-member work fans out over the
federation worker pool, a member that fails or serves stale degrades
*its own* column/slot, and the merged response is

* ``200`` with a ``clusters_degraded`` list naming the losers when at
  least one member answered, and
* ``503`` only when **no** member answered — never a whole-page 5xx
  because one cluster died.

The federated homepage streams exactly like the single-cluster one
(:mod:`repro.core.pages.homepage`): the shell is rendered once with a
sentinel per cluster column and split, then each column's HTML is
interleaved back as its member's fan-out worker completes — so the
batch and streamed renders are byte-identical by construction, and a
cluster dying mid-stream degrades its column *in place* without
aborting the chunked connection.
"""

from __future__ import annotations

import time
from functools import partial
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.auth import Viewer
from repro.core.pages.homepage import HOMEPAGE_WIDGETS, _render_slot
from repro.core.rendering import RawHTML, el, page_shell, render_document
from repro.core.routes import RouteResponse, response_etag
from repro.faults import Deadline

from .context import FederatedContext
from .metrics import namespace_key
from .registry import ClusterMember

#: path prefix every federated JSON route lives under
FEDERATION_PREFIX = "/api/v1/federation/"

#: federated route name -> the member route it rolls up
FEDERATED_ROUTES = {
    "federation_cluster_status": "cluster_status",
    "federation_my_jobs": "my_jobs",
    "federation_accounts": "accounts",
}


# -- fan-out -----------------------------------------------------------------


def _call_member(
    member: ClusterMember,
    route: str,
    viewer: Viewer,
    params: Dict[str, Any],
    deadline: Optional[Deadline],
) -> RouteResponse:
    # each member gets its own params copy (handlers may mutate) and
    # opens its own fetch scope/deadline inside its own dashboard
    return member.dashboard.call(route, viewer, dict(params), deadline=deadline)


def gather_members(
    ctx: FederatedContext,
    route: str,
    viewer: Viewer,
    params: Dict[str, Any],
    deadline: Optional[Deadline] = None,
) -> "List[Tuple[ClusterMember, RouteResponse]]":
    """One :class:`RouteResponse` per member, in registration order.

    Failure isolation is two-layered: ``registry.call`` inside each
    member already catches handler errors, and an escape from the
    fan-out machinery itself is synthesized into that member's 500
    envelope rather than touching its siblings.
    """
    members = ctx.registry.members()
    outcomes = ctx.scatter(
        [
            partial(_call_member, member, route, viewer, params, deadline)
            for member in members
        ]
    )
    results: List[Tuple[ClusterMember, RouteResponse]] = []
    for member, outcome in zip(members, outcomes):
        if outcome.error is not None:
            results.append(
                (
                    member,
                    RouteResponse(
                        ok=False,
                        error=f"{type(outcome.error).__name__}: {outcome.error}",
                        status=500,
                        route=route,
                    ),
                )
            )
        else:
            results.append((member, outcome.value))
    return results


def degraded_clusters(
    results: "List[Tuple[ClusterMember, RouteResponse]]",
) -> List[str]:
    """Members that failed outright or served stale, in registration
    order — the ``clusters_degraded`` field of the merged envelope."""
    return [
        member.name
        for member, resp in results
        if not resp.ok or resp.degraded
    ]


def _merged_validator(
    route: str,
    viewer: Viewer,
    params: Dict[str, Any],
    results: "List[Tuple[ClusterMember, RouteResponse]]",
) -> Tuple[Optional[str], Optional[Tuple[Tuple[str, int], ...]]]:
    """Federated ETag over every member's validator deps, namespaced.

    Only derivable when *every* member answered fresh with a validator
    of its own — a partial or stale merge has no sound validator.  The
    member prefix on each dep key keeps revalidation per-member: two
    clusters caching the same ``source:key`` can never satisfy each
    other's generations.
    """
    deps: List[Tuple[str, int]] = []
    for member, resp in results:
        if not (resp.ok and not resp.degraded and resp.etag and resp.cache_deps):
            return None, None
        deps.extend(
            (namespace_key(member.name, key), gen) for key, gen in resp.cache_deps
        )
    cache_deps = tuple(sorted(deps))
    return response_etag(route, viewer, params, cache_deps), cache_deps


def _all_failed_response(
    route: str,
    results: "List[Tuple[ClusterMember, RouteResponse]]",
    elapsed_ms: float,
) -> RouteResponse:
    """The quorum-lost envelope: every member failed, so the federation
    answers 503 (with the largest member retry hint) — the only case a
    federated route surfaces a 5xx."""
    hints = [
        resp.retry_after_s
        for _, resp in results
        if resp.retry_after_s is not None
    ]
    return RouteResponse(
        ok=False,
        error="no cluster answered: "
        + "; ".join(f"{m.name}: {r.error}" for m, r in results),
        status=503,
        route=route,
        elapsed_ms=elapsed_ms,
        degraded=True,
        retry_after_s=max(hints) if hints else None,
        clusters_degraded=[m.name for m, _ in results],
    )


def _member_slot(member: ClusterMember, resp: RouteResponse) -> Dict[str, Any]:
    """One per-cluster slot of a merged JSON payload."""
    if not resp.ok:
        return {
            "cluster": member.name,
            "unreachable": True,
            "error": resp.error,
            "status": resp.status,
        }
    slot: Dict[str, Any] = {
        "cluster": member.name,
        "degraded": resp.degraded,
        "data": resp.data,
    }
    if resp.stale_age_s is not None:
        slot["stale_age_s"] = round(resp.stale_age_s, 3)
    return slot


# -- JSON rollups ------------------------------------------------------------


def federated_cluster_status(
    ctx: FederatedContext,
    viewer: Viewer,
    params: Dict[str, Any],
    deadline: Optional[Deadline] = None,
) -> RouteResponse:
    """The cluster-status page's data: one slot per member cluster."""
    route = "federation_cluster_status"
    t0 = time.perf_counter()
    results = gather_members(ctx, "cluster_status", viewer, params, deadline)
    elapsed_ms = (time.perf_counter() - t0) * 1000
    degraded = degraded_clusters(results)
    if all(not r.ok for _, r in results):
        response = _all_failed_response(route, results, elapsed_ms)
    else:
        etag, cache_deps = _merged_validator(route, viewer, params, results)
        response = RouteResponse(
            ok=True,
            data={
                "clusters": [_member_slot(m, r) for m, r in results],
                "clusters_total": len(results),
                "clusters_ok": sum(1 for _, r in results if r.ok),
            },
            route=route,
            elapsed_ms=elapsed_ms,
            degraded=bool(degraded),
            stale_age_s=_max_stale(results),
            clusters_degraded=degraded,
            etag=etag,
            cache_deps=cache_deps,
        )
    ctx.obs.record_route(route, response.status, elapsed_ms, ok=response.ok)
    return response


def federated_my_jobs(
    ctx: FederatedContext,
    viewer: Viewer,
    params: Dict[str, Any],
    deadline: Optional[Deadline] = None,
) -> RouteResponse:
    """Cross-cluster My Jobs: every member's rows merged, each labeled
    with its cluster of origin; partial results keep the page up."""
    route = "federation_my_jobs"
    t0 = time.perf_counter()
    results = gather_members(ctx, "my_jobs", viewer, params, deadline)
    elapsed_ms = (time.perf_counter() - t0) * 1000
    degraded = degraded_clusters(results)
    if all(not r.ok for _, r in results):
        response = _all_failed_response(route, results, elapsed_ms)
    else:
        jobs: List[Dict[str, Any]] = []
        contributing: List[str] = []
        for member, resp in results:
            if not resp.ok:
                continue
            contributing.append(member.name)
            for row in resp.data.get("jobs", []):
                jobs.append({**row, "cluster": member.name})
        etag, cache_deps = _merged_validator(route, viewer, params, results)
        response = RouteResponse(
            ok=True,
            data={
                "jobs": jobs,
                "total": len(jobs),
                "clusters": [_member_summary(m, r) for m, r in results],
                "clusters_contributing": contributing,
            },
            route=route,
            elapsed_ms=elapsed_ms,
            degraded=bool(degraded),
            stale_age_s=_max_stale(results),
            clusters_degraded=degraded,
            etag=etag,
            cache_deps=cache_deps,
        )
    ctx.obs.record_route(route, response.status, elapsed_ms, ok=response.ok)
    return response


def federated_accounts(
    ctx: FederatedContext,
    viewer: Viewer,
    params: Dict[str, Any],
    deadline: Optional[Deadline] = None,
) -> RouteResponse:
    """Cross-cluster accounting rollup: each member's allocations merged
    and labeled with the cluster they bill against."""
    route = "federation_accounts"
    t0 = time.perf_counter()
    results = gather_members(ctx, "accounts", viewer, params, deadline)
    elapsed_ms = (time.perf_counter() - t0) * 1000
    degraded = degraded_clusters(results)
    if all(not r.ok for _, r in results):
        response = _all_failed_response(route, results, elapsed_ms)
    else:
        accounts: List[Dict[str, Any]] = []
        contributing: List[str] = []
        for member, resp in results:
            if not resp.ok:
                continue
            contributing.append(member.name)
            for acct in resp.data.get("accounts", []):
                accounts.append({**acct, "cluster": member.name})
        etag, cache_deps = _merged_validator(route, viewer, params, results)
        response = RouteResponse(
            ok=True,
            data={
                "accounts": accounts,
                "total": len(accounts),
                "clusters": [_member_summary(m, r) for m, r in results],
                "clusters_contributing": contributing,
            },
            route=route,
            elapsed_ms=elapsed_ms,
            degraded=bool(degraded),
            stale_age_s=_max_stale(results),
            clusters_degraded=degraded,
            etag=etag,
            cache_deps=cache_deps,
        )
    ctx.obs.record_route(route, response.status, elapsed_ms, ok=response.ok)
    return response


def _member_summary(member: ClusterMember, resp: RouteResponse) -> Dict[str, Any]:
    """Compact contribution record for merged list payloads."""
    out: Dict[str, Any] = {"cluster": member.name, "ok": resp.ok}
    if not resp.ok:
        out["error"] = resp.error
        out["status"] = resp.status
    elif resp.degraded:
        out["degraded"] = True
        if resp.stale_age_s is not None:
            out["stale_age_s"] = round(resp.stale_age_s, 3)
    return out


def _max_stale(
    results: "List[Tuple[ClusterMember, RouteResponse]]",
) -> Optional[float]:
    ages = [r.stale_age_s for _, r in results if r.stale_age_s is not None]
    return max(ages) if ages else None


FEDERATED_HANDLERS = {
    "federation_cluster_status": federated_cluster_status,
    "federation_my_jobs": federated_my_jobs,
    "federation_accounts": federated_accounts,
}


# -- the federated homepage ---------------------------------------------------

#: sentinel marking where one cluster column lands in the streamed
#: document; NUL can never appear in rendered (escaped) HTML
_COLUMN_TOKEN = "\x00cluster-column:{name}\x00"


def render_cluster_column(
    member: ClusterMember, viewer: Viewer
) -> Tuple[Any, List[str], Dict[str, float]]:
    """One member's homepage column: its five widget slots under a
    cluster header, rendered through the *same*
    :func:`~repro.core.pages.homepage._render_slot` path as the
    single-cluster page — so slot envelopes can never drift between the
    two.  Returns ``(element, failed_widgets, degraded_widgets)``."""
    failures: List[str] = []
    degraded: Dict[str, float] = {}
    slots = []
    for name in HOMEPAGE_WIDGETS:
        response = member.dashboard.call(name, viewer)
        slot, failure, stale_age = _render_slot(name, response)
        if failure is not None:
            failures.append(name)
        if stale_age is not None:
            degraded[name] = stale_age
        slots.append(slot)
    banner = None
    if failures or degraded:
        banner = el(
            "div",
            f"Some {member.name} data is unavailable or stale; "
            f"other clusters are unaffected.",
            cls="cluster-banner alert alert-warning",
            role="status",
        )
    classes = "cluster-column"
    if failures or degraded:
        classes += " cluster-degraded"
    column = el(
        "section",
        el("h2", member.name, cls="cluster-name"),
        banner,
        *slots,
        cls=classes,
        data_cluster=member.name,
    )
    return column, failures, degraded


def unreachable_column(name: str, detail: str) -> Any:
    """The explicit "cluster unreachable" slot: rendered when a member's
    column thunk itself dies (beyond per-widget isolation)."""
    return el(
        "section",
        el("h2", name, cls="cluster-name"),
        el(
            "div",
            f"Cluster {name} is unreachable. ({detail})",
            cls="cluster-error alert alert-danger",
            role="alert",
        ),
        cls="cluster-column cluster-unreachable",
        data_cluster=name,
    )


def _federation_segments(username: str, names: List[str]) -> List[str]:
    """The federated homepage document split around its cluster columns
    (same technique as the single-cluster streamed homepage: render the
    full document once with sentinels, split on them)."""
    placeholders = [RawHTML(_COLUMN_TOKEN.format(name=name)) for name in names]
    page = page_shell(
        "federation",
        username,
        el("div", *placeholders, cls="federation-grid"),
    )
    document = render_document("HPC Dashboard", page)
    segments: List[str] = []
    rest = document
    for name in names:
        head, rest = rest.split(_COLUMN_TOKEN.format(name=name), 1)
        segments.append(head)
    segments.append(rest)
    return segments


class FederatedHomepageRender:
    """Rendered federated homepage plus per-cluster degradation detail."""

    def __init__(
        self,
        document: str,
        failures: Dict[str, List[str]],
        degraded: Dict[str, Dict[str, float]],
        clusters_degraded: List[str],
    ):
        self.document = document
        #: cluster -> widget names that failed outright
        self.failures = failures
        #: cluster -> widget name -> stale age (s)
        self.degraded = degraded
        #: clusters that failed or served stale, in registration order
        self.clusters_degraded = clusters_degraded

    @property
    def ok(self) -> bool:
        return not self.failures


def _column_chunks(
    ctx: FederatedContext, viewer: Viewer
) -> Iterator[Tuple[str, str, List[str], Dict[str, float]]]:
    """Per-cluster ``(name, column_html, failures, degraded)`` in
    registration order, each yielded as its fan-out worker completes."""
    members = ctx.registry.members()
    outcomes = ctx.scatter_stream(
        [partial(render_cluster_column, member, viewer) for member in members]
    )
    for member, outcome in zip(members, outcomes):
        if outcome.error is not None:
            detail = f"{type(outcome.error).__name__}: {outcome.error}"
            column = unreachable_column(member.name, detail)
            yield member.name, column.render(), list(HOMEPAGE_WIDGETS), {}
        else:
            column, failures, degraded = outcome.value
            yield member.name, column.render(), failures, degraded


def stream_federated_homepage(
    ctx: FederatedContext, viewer: Viewer
) -> Iterator[str]:
    """Stream the federated homepage: shell first, one column per member
    cluster as each completes.  A member that dies mid-stream degrades
    its own column in place; the chunked connection always terminates
    normally."""
    with ctx.obs.tracer.span(
        "page:federation", kind="page",
        attrs={"viewer": viewer.username, "streamed": True},
    ):
        names = ctx.registry.names
        segments = _federation_segments(viewer.username, names)
        chunks = _column_chunks(ctx, viewer)
        yield segments[0]
        for i, (_, column_html, _, _) in enumerate(chunks):
            yield column_html + segments[i + 1]


def render_federated_homepage(
    ctx: FederatedContext, viewer: Viewer
) -> FederatedHomepageRender:
    """Batch render: same bytes as the streamed page, plus the
    per-cluster failure/degradation report the tests assert on."""
    with ctx.obs.tracer.span(
        "page:federation", kind="page", attrs={"viewer": viewer.username},
    ):
        names = ctx.registry.names
        segments = _federation_segments(viewer.username, names)
        failures: Dict[str, List[str]] = {}
        degraded: Dict[str, Dict[str, float]] = {}
        parts = [segments[0]]
        for i, (name, column_html, col_failures, col_degraded) in enumerate(
            _column_chunks(ctx, viewer)
        ):
            if col_failures:
                failures[name] = col_failures
            if col_degraded:
                degraded[name] = col_degraded
            parts.append(column_html + segments[i + 1])
    clusters_degraded = [
        name for name in names if name in failures or name in degraded
    ]
    return FederatedHomepageRender(
        document="".join(parts),
        failures=failures,
        degraded=degraded,
        clusters_degraded=clusters_degraded,
    )
