"""Merging per-cluster Prometheus scrapes under one ``/metrics``.

Every member dashboard owns its own
:class:`~repro.obs.metrics.MetricsRegistry` — that is what makes the
isolation shared-nothing — but operators want one scrape endpoint for
the whole federation.  :func:`merge_scrapes` combines the members'
text expositions, injecting a ``cluster`` label as the first label of
every sample so same-named families from different members never
collide (an unlabeled gauge like ``repro_cache_entries`` would
otherwise clobber across clusters).

The merge works at the text-line level: each family's ``# HELP`` /
``# TYPE`` header is emitted once (first writer wins — members run the
same code, so headers agree), families come out sorted by name, and
within a family the federation-level samples (no ``cluster`` label)
precede members' samples in registration order.  The output round-trips
through :func:`~repro.obs.metrics.parse_prometheus_text`, which the CI
smoke test uses as a format validator.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def label_sample_line(line: str, cluster: str, label: str = "cluster") -> str:
    """Inject ``<label>="<name>"`` as the first label of one sample line."""
    escaped = _escape_label_value(cluster)
    if "{" in line:
        head, rest = line.split("{", 1)
        if rest.startswith("}"):  # degenerate "name{} value"
            return f'{head}{{{label}="{escaped}"}}{rest[1:]}'
        return f'{head}{{{label}="{escaped}",{rest}'
    name, _, value = line.partition(" ")
    return f'{name}{{{label}="{escaped}"}} {value}'


def _family_of(line: str) -> str:
    """Metric family a sample line belongs to (bucket/sum/count collapse
    onto their histogram's family so headers group correctly)."""
    name = line.split("{", 1)[0].split(" ", 1)[0]
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def merge_scrapes(
    sections: Mapping[str, str], base: Optional[str] = None,
    label: str = "cluster",
) -> str:
    """One merged exposition from per-member scrape texts.

    ``sections`` maps member name -> that member's registry render;
    ``base`` is an optional ensemble-level render whose samples pass
    through without a member label (HTTP counters live there — a
    request is served by the ensemble, not by one member).  ``label``
    names the injected label: the federation merges members under
    ``cluster``; the multi-process balancer merges worker scrapes under
    ``worker`` with exactly the same semantics.
    """
    helps: Dict[str, str] = {}
    types: Dict[str, str] = {}
    samples: Dict[str, List[str]] = {}
    order: List[str] = []

    def _absorb(text: str, cluster: Optional[str]) -> None:
        for line in text.splitlines():
            line = line.rstrip()
            if not line:
                continue
            if line.startswith("# HELP "):
                family = line.split(" ", 3)[2]
                helps.setdefault(family, line)
                continue
            if line.startswith("# TYPE "):
                family = line.split(" ", 3)[2]
                types.setdefault(family, line)
                continue
            if line.startswith("#"):
                continue
            family = _family_of(line)
            if family not in samples:
                samples[family] = []
                order.append(family)
            if cluster is not None:
                line = label_sample_line(line, cluster, label=label)
            samples[family].append(line)

    if base:
        _absorb(base, None)
    for cluster, text in sections.items():
        _absorb(text, cluster)

    lines: List[str] = []
    for family in sorted(order):
        if family in helps:
            lines.append(helps[family])
        if family in types:
            lines.append(types[family])
        lines.extend(samples[family])
    return "\n".join(lines) + "\n" if lines else ""


def split_namespaced_key(full_key: str) -> Tuple[Optional[str], str]:
    """Split a federated cache key ``"<cluster>/<source>:<key>"`` into
    ``(cluster, member_key)``; a key without a namespace returns
    ``(None, full_key)``."""
    head, sep, rest = full_key.partition("/")
    if not sep:
        return None, full_key
    return head, rest


def namespace_key(cluster: str, member_key: str) -> str:
    """The federated spelling of one member cache key."""
    return f"{cluster}/{member_key}"
