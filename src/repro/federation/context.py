"""The federation-level serving context.

:class:`FederatedContext` plays the role :class:`~repro.core.routes.DashboardContext`
plays for one cluster, scoped to what the HTTP layer and federated pages
actually need: observability for federation-level requests, a worker
pool for the member fan-out, and a *namespaced cache view* so the ETag
validator index can revalidate federated responses against member cache
entries without the members sharing anything.

No member state lives here.  Each member keeps its own registry, cache,
breakers, bulkheads and admission tier; this context only *reads* them
(nested ``/healthz`` reports, merged ``/metrics`` scrapes).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Sequence

from repro.core.workers import TaskOutcome, WorkerPool
from repro.obs import Observability

from .metrics import merge_scrapes, split_namespaced_key
from .registry import ClusterRegistry


class FederatedCacheView:
    """Read-only cache facade over every member, keyed by namespaced
    ``"<cluster>/<source>:<key>"`` strings.

    This is what makes federated ETags sound: a federated response's
    validator deps carry the member prefix, so revalidation reaches into
    exactly the member cache that produced each entry — and two members
    holding the same ``source:key`` can never satisfy each other's
    validators.
    """

    def __init__(self, registry: ClusterRegistry):
        self._registry = registry

    def entry(self, full_key: str):
        cluster, member_key = split_namespaced_key(full_key)
        if cluster is None:
            return None
        member = self._registry.get(cluster)
        if member is None:
            return None
        return member.ctx.cache.entry(member_key)

    def __len__(self) -> int:
        return sum(len(m.ctx.cache) for m in self._registry)


class FederatedContext:
    """Everything the HTTP layer needs from a federated dashboard."""

    def __init__(
        self,
        registry: ClusterRegistry,
        worker_pool_size: int = 8,
        worker_queue_max: int = 64,
        max_traces: int = 100,
        slow_request_ms: float = 250.0,
    ):
        if len(registry) == 0:
            raise ValueError("federation needs at least one cluster")
        self.registry = registry
        self.clock = registry.clock
        # federation-level requests record here; member-level work keeps
        # recording into each member's own registry
        self.obs = Observability(
            self.clock, max_traces=max_traces, slow_request_ms=slow_request_ms
        )
        self.cache = FederatedCacheView(registry)
        # deadline clamping policy is uniform across members (they run
        # the same code); borrow the default member's
        self.cache_policy = registry.default.ctx.cache_policy
        self.workers = WorkerPool(
            max_workers=worker_pool_size,
            max_queue=worker_queue_max,
            registry=self.obs.registry,
        )

    # -- member fan-out ------------------------------------------------------

    def scatter(self, thunks: Sequence[Callable[[], Any]]) -> List[TaskOutcome]:
        """Run per-member thunks concurrently; outcomes in input order,
        failures isolated per slot.  No cross-member context propagates:
        each member call opens its own scope/deadline inside its own
        dashboard."""
        return self.workers.scatter_gather(list(thunks))

    def scatter_stream(
        self, thunks: Sequence[Callable[[], Any]]
    ) -> Iterator[TaskOutcome]:
        """:meth:`scatter`, streaming each outcome in input order as soon
        as it (and its predecessors) complete."""
        return self.workers.scatter_stream(list(thunks))

    # -- observability -------------------------------------------------------

    def breaker_report(self) -> Dict[str, Dict[str, str]]:
        """Breaker states nested per member cluster (each member's call
        also mirrors its states into that member's one-hot gauge)."""
        return {
            member.name: member.ctx.breaker_report()
            for member in self.registry
        }

    def admission_report(self) -> Dict[str, Any]:
        """Admission tier + signals nested per member cluster."""
        return {
            member.name: member.ctx.admission_report()
            for member in self.registry
        }

    def scrape_metrics(self) -> str:
        """One merged Prometheus exposition: every member's registry with
        a ``cluster`` label injected, plus the federation-level families
        (HTTP counters, fan-out pool) unlabeled."""
        sections = {
            member.name: member.ctx.scrape_metrics()
            for member in self.registry
        }
        return merge_scrapes(sections, base=self.obs.registry.render())

    def now(self) -> float:
        return self.clock.now()
