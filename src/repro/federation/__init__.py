"""Multi-cluster federation with per-cluster failure isolation.

One dashboard over N independent simulated clusters (ROADMAP item 1,
motivated by HPCClusterScape's shared multi-cluster fleets).  Each
member is a complete, shared-nothing dashboard stack — its own
``SlurmCluster``, ``DaemonBus``, ``FaultPlan`` hooks, circuit breakers,
bulkheads, admission controller and cache namespace — behind one shared
simulated clock.  The federated serving path scatter-gathers per-member
fetches over the worker-pool substrate with explicit quorum semantics:
a federated response is 200-with-``clusters_degraded`` detail when at
least one cluster answers, and 503 only when none do.  A dead or
browning-out cluster degrades its *own* column/slot (stale-served with
a per-cluster banner, or an explicit unreachable slot) while healthy
clusters render fresh.
"""

from .context import FederatedCacheView, FederatedContext
from .dashboard import (
    FederatedDashboard,
    build_demo_federation,
    namespace_response,
)
from .metrics import (
    label_sample_line,
    merge_scrapes,
    namespace_key,
    split_namespaced_key,
)
from .pages import (
    FEDERATED_HANDLERS,
    FEDERATION_PREFIX,
    FederatedHomepageRender,
    federated_accounts,
    federated_cluster_status,
    federated_my_jobs,
    gather_members,
    render_cluster_column,
    render_federated_homepage,
    stream_federated_homepage,
    unreachable_column,
)
from .registry import ClusterMember, ClusterRegistry

__all__ = [
    "ClusterMember",
    "ClusterRegistry",
    "FEDERATED_HANDLERS",
    "FEDERATION_PREFIX",
    "FederatedCacheView",
    "FederatedContext",
    "FederatedDashboard",
    "FederatedHomepageRender",
    "build_demo_federation",
    "federated_accounts",
    "federated_cluster_status",
    "federated_my_jobs",
    "gather_members",
    "label_sample_line",
    "merge_scrapes",
    "namespace_key",
    "namespace_response",
    "render_cluster_column",
    "render_federated_homepage",
    "split_namespaced_key",
    "stream_federated_homepage",
    "unreachable_column",
]
