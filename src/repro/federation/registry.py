"""Standing up N independent simulated clusters behind one timeline.

:class:`ClusterRegistry` is the federation's substrate: each member is a
*complete* dashboard stack — its own :class:`~repro.slurm.cluster.SlurmCluster`,
:class:`~repro.slurm.daemon.DaemonBus`, :class:`~repro.faults.FaultPlan`
hooks, circuit breakers, bulkheads, admission controller, worker pool,
and TTL cache — so nothing is shared *except* the
:class:`~repro.sim.clock.SimClock`.  Shared-nothing members make the
isolation claims structural: one cluster's invalidation epochs, ETag
write generations, breaker trips and brownout tiers physically cannot
touch another's, because they live in different objects.

The shared clock is what lets the federation serve one coherent page:
cache freshness, fault windows and ETag revalidation across members all
answer against the same ``now``.  Each member still owns its *event
queue* (an :class:`~repro.sim.events.EventLoop` over the shared clock);
:meth:`ClusterRegistry.advance` interleaves the queues deterministically
by (timestamp, member index), so a federated run replays exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional

from repro.auth import Directory
from repro.core.caching import CachePolicy
from repro.core.dashboard import Dashboard
from repro.faults import AdmissionConfig, FaultPlan
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.slurm.cluster import small_test_cluster
from repro.slurm.workload import WorkloadConfig, WorkloadResult, populated_cluster


class ClusterMember:
    """One federated cluster: a fully wired dashboard plus its identity."""

    def __init__(
        self,
        name: str,
        dashboard: Dashboard,
        directory: Directory,
        workload: Optional[WorkloadResult] = None,
    ):
        self.name = name
        self.dashboard = dashboard
        self.directory = directory
        self.workload = workload
        self.fault_plan: Optional[FaultPlan] = None

    @property
    def ctx(self):
        return self.dashboard.ctx

    @property
    def loop(self) -> EventLoop:
        return self.dashboard.ctx.cluster.loop

    def inject_faults(self, plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
        """Install a chaos schedule on *this member only* — the other
        members' daemons never see it."""
        self.fault_plan = plan
        return self.dashboard.inject_faults(plan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterMember({self.name!r})"


class ClusterRegistry:
    """N independent simulated clusters sharing one simulated timeline.

    Members register in a stable order; the first member added is the
    federation's *default* (plain single-cluster API paths without a
    ``?cluster=`` selector route to it).
    """

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._members: "OrderedDict[str, ClusterMember]" = OrderedDict()

    # -- membership ----------------------------------------------------------

    def add_cluster(
        self,
        name: str,
        seed: int = 2025,
        duration_hours: float = 6.0,
        workload: Optional[WorkloadConfig] = None,
        cache_policy: Optional[CachePolicy] = None,
        admission: Optional[AdmissionConfig] = None,
        cache_shards: int = 1,
        cpu_nodes: int = 8,
        gpu_nodes: int = 2,
    ) -> ClusterMember:
        """Stand up one populated member cluster and its dashboard.

        Population replays ``duration_hours`` of simulated workload on
        the *shared* clock, so members added sequentially occupy
        staggered (but mutually consistent) windows of the one timeline.
        """
        if name in self._members:
            raise ValueError(f"duplicate cluster name {name!r}")
        cluster = small_test_cluster(
            name=name,
            cpu_nodes=cpu_nodes,
            gpu_nodes=gpu_nodes,
            loop=EventLoop(self.clock),
        )
        cluster, directory, result = populated_cluster(
            seed=seed,
            duration_hours=duration_hours,
            config=workload or WorkloadConfig(seed=seed),
            cluster=cluster,
        )
        dashboard = Dashboard(
            cluster,
            directory,
            cache_policy=cache_policy,
            admission=admission,
            cache_shards=cache_shards,
        )
        member = ClusterMember(name, dashboard, directory, workload=result)
        self._members[name] = member
        return member

    def add_member(self, member: ClusterMember) -> ClusterMember:
        """Register an externally built member (its cluster must share
        :attr:`clock`, or federated freshness checks would disagree)."""
        if member.name in self._members:
            raise ValueError(f"duplicate cluster name {member.name!r}")
        if member.ctx.clock is not self.clock:
            raise ValueError(
                f"member {member.name!r} runs on a different clock; "
                f"build its cluster with EventLoop(registry.clock)"
            )
        self._members[member.name] = member
        return member

    def get(self, name: str) -> Optional[ClusterMember]:
        return self._members.get(name)

    def members(self) -> List[ClusterMember]:
        """Every member, in registration order."""
        return list(self._members.values())

    @property
    def names(self) -> List[str]:
        return list(self._members.keys())

    @property
    def default(self) -> ClusterMember:
        """The first member added (target of un-selected API paths)."""
        if not self._members:
            raise ValueError("registry has no clusters")
        return next(iter(self._members.values()))

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[ClusterMember]:
        return iter(self._members.values())

    def __contains__(self, name: str) -> bool:
        return name in self._members

    # -- time ---------------------------------------------------------------

    def advance(self, seconds: float) -> int:
        """Run every member's event queue forward ``seconds`` of shared
        simulated time, interleaving deterministically.

        At each step the member with the earliest pending event fires
        (ties broken by registration order); when no member has an event
        left inside the window, the clock jumps to the target.  Returns
        the number of events processed across all members.
        """
        target = self.clock.now() + seconds
        members = self.members()
        processed = 0
        while True:
            best_idx = -1
            best_time = target
            for idx, member in enumerate(members):
                t = member.loop.peek_time()
                if t is not None and t <= best_time:
                    # strict < keeps registration order as the tie-break:
                    # an equal timestamp never displaces an earlier member
                    if best_idx == -1 or t < best_time:
                        best_idx = idx
                        best_time = t
            if best_idx == -1:
                break
            members[best_idx].loop.step()
            processed += 1
        self.clock.advance_to(max(target, self.clock.now()))
        return processed

    def now(self) -> float:
        return self.clock.now()

    # -- fault injection ------------------------------------------------------

    def inject_faults(self, name: str, plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
        """Install a chaos schedule on one member (``None`` removes it)."""
        member = self._members.get(name)
        if member is None:
            raise KeyError(f"no cluster named {name!r}")
        return member.inject_faults(plan)

    def fault_report(self) -> Dict[str, Dict[str, int]]:
        """Per-member fault-window counts by kind (instrumentation)."""
        return {
            name: (m.fault_plan.snapshot() if m.fault_plan is not None else {})
            for name, m in self._members.items()
        }
