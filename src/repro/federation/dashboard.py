"""The federated dashboard facade.

:class:`FederatedDashboard` duck-types :class:`~repro.core.dashboard.Dashboard`
for the HTTP layer — same ``ctx``/``get``/``call``/``stream_homepage``/
``healthz_payload`` surface — so :class:`~repro.web.server.DashboardServer`
serves a federation with zero server changes.  Routing rules:

* Federated paths (``/api/v1/federation/*`` and ``/``) fan out across
  every member with per-cluster failure isolation and the quorum
  semantics of :mod:`repro.federation.pages`.
* Any other API path routes to one member: the ``?cluster=<name>``
  query parameter selects it (structured 404 for an unknown name), and
  a plain path without a selector goes to the *default* member (the
  first one registered) — so a federation of one behaves like the
  single-cluster dashboard.
* Member responses come back with their validators *namespaced*
  (``anvil/squeue:alice``) and their ETags re-derived with the cluster
  name mixed in, so the server's validator index can never confuse two
  members' entries.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, List, Optional

from repro.auth import Viewer
from repro.core.routes import RouteResponse
from repro.faults import Deadline, FaultPlan

from .context import FederatedContext
from .metrics import namespace_key
from .pages import (
    FEDERATED_HANDLERS,
    FEDERATION_PREFIX,
    FederatedHomepageRender,
    render_federated_homepage,
    stream_federated_homepage,
)
from .registry import ClusterRegistry


def _namespaced_etag(cluster: str, etag: str) -> str:
    """A member ETag re-derived under its cluster namespace — two
    members producing byte-identical responses still get distinct
    federated validators."""
    h = hashlib.blake2b(digest_size=16)
    h.update(cluster.encode())
    h.update(b"|")
    h.update(etag.encode())
    return h.hexdigest()


def namespace_response(cluster: str, response: RouteResponse) -> RouteResponse:
    """Rewrite a member response's validator onto the federated keyspace
    (body untouched)."""
    if response.cache_deps:
        response.cache_deps = tuple(
            (namespace_key(cluster, key), gen) for key, gen in response.cache_deps
        )
    if response.etag:
        response.etag = _namespaced_etag(cluster, response.etag)
    return response


class FederatedDashboard:
    """N member dashboards behind one serving surface."""

    def __init__(
        self,
        registry: ClusterRegistry,
        worker_pool_size: int = 8,
        worker_queue_max: int = 64,
    ):
        self.registry = registry
        self.ctx = FederatedContext(
            registry,
            worker_pool_size=worker_pool_size,
            worker_queue_max=worker_queue_max,
        )

    # -- request API ---------------------------------------------------------

    def call(
        self,
        name: str,
        viewer: Viewer,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[Deadline] = None,
    ) -> RouteResponse:
        """Invoke a route by name: federated rollups by their own names,
        member routes by the usual names (``cluster`` param selects the
        member; default member otherwise)."""
        params = dict(params or {})
        handler = FEDERATED_HANDLERS.get(name)
        if handler is not None:
            params.pop("cluster", None)
            return handler(self.ctx, viewer, params, deadline=deadline)
        member, error = self._select_member(params)
        if error is not None:
            self.ctx.obs.record_route(name, error.status, 0.0, ok=False)
            return error
        response = member.dashboard.call(name, viewer, params, deadline=deadline)
        return namespace_response(member.name, response)

    def get(
        self,
        path: str,
        viewer: Viewer,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[Deadline] = None,
    ) -> RouteResponse:
        """Invoke by URL path (what the HTTP layer does)."""
        params = dict(params or {})
        if path.startswith(FEDERATION_PREFIX):
            name = "federation_" + path[len(FEDERATION_PREFIX):].strip("/")
            handler = FEDERATED_HANDLERS.get(name)
            if handler is None:
                return RouteResponse(
                    ok=False, error=f"no route at {path!r}", status=404
                )
            params.pop("cluster", None)
            return handler(self.ctx, viewer, params, deadline=deadline)
        member, error = self._select_member(params)
        if error is not None:
            self.ctx.obs.record_route(path, error.status, 0.0, ok=False)
            return error
        response = member.dashboard.get(path, viewer, params, deadline=deadline)
        return namespace_response(member.name, response)

    def _select_member(self, params: Dict[str, Any]):
        """Resolve the ``cluster`` selector out of the query params."""
        selector = params.pop("cluster", None)
        if selector is None:
            return self.registry.default, None
        member = self.registry.get(str(selector))
        if member is None:
            return None, RouteResponse(
                ok=False,
                error=(
                    f"unknown cluster {selector!r}; "
                    f"federation members: {', '.join(self.registry.names)}"
                ),
                status=404,
            )
        return member, None

    # -- page rendering ------------------------------------------------------

    def render_homepage(self, viewer: Viewer) -> FederatedHomepageRender:
        """Batch-render the federated homepage (one column per member)."""
        return render_federated_homepage(self.ctx, viewer)

    def stream_homepage(self, viewer: Viewer) -> Iterator[str]:
        """Stream the federated homepage: shell first, one column per
        member cluster as each fan-out worker completes."""
        return stream_federated_homepage(self.ctx, viewer)

    # -- fault injection ------------------------------------------------------

    def inject_faults(
        self, cluster: str, plan: Optional[FaultPlan]
    ) -> Optional[FaultPlan]:
        """Install a chaos schedule on one member (``None`` removes it)."""
        return self.registry.inject_faults(cluster, plan)

    # -- introspection -------------------------------------------------------

    def healthz_payload(self) -> Dict[str, Any]:
        """Per-cluster health: each member's breaker states and admission
        tier under its own key, plus federation quorum at the top."""
        clusters: Dict[str, Any] = {}
        for member in self.registry:
            clusters[member.name] = {
                "breakers": member.ctx.breaker_report(),
                "admission": member.ctx.admission_report(),
            }
        return {
            "ok": True,
            "service": "repro-dashboard",
            "federation": {
                "clusters_total": len(self.registry),
                "default": self.registry.default.name,
            },
            "clusters": clusters,
        }

    @property
    def clock(self):
        return self.ctx.clock

    def advance(self, seconds: float) -> int:
        """Run every member's simulation forward together."""
        return self.registry.advance(seconds)


def build_demo_federation(
    names: "List[str]" = ("anvil", "bell", "negishi"),
    seed: int = 2025,
    duration_hours: float = 2.0,
    cache_policy=None,
    admission=None,
    cache_shards: int = 1,
):
    """One-call demo federation: N populated member clusters behind one
    :class:`FederatedDashboard`.  Member seeds derive from ``seed`` so
    the clusters carry distinct (but deterministic) workloads.

    Returns ``(federated_dashboard, registry)``.
    """
    registry = ClusterRegistry()
    for i, name in enumerate(names):
        registry.add_cluster(
            name,
            seed=seed + i,
            duration_hours=duration_hours,
            cache_policy=cache_policy,
            admission=admission,
            cache_shards=cache_shards,
        )
    return FederatedDashboard(registry), registry
