"""Thin shim so `pip install -e .` works in offline environments that lack
the `wheel` package (legacy editable install path). All metadata lives in
pyproject.toml."""
from setuptools import setup

setup()
