"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.auth import Directory, PermissionPolicy, Viewer
from repro.slurm import (
    Association,
    JobSpec,
    TRES,
    small_test_cluster,
)
from repro.slurm.workload import WorkloadConfig, populated_cluster


@pytest.fixture
def cluster():
    """A small empty cluster: 8 CPU nodes + 2 GPU nodes, no limits."""
    return small_test_cluster()

@pytest.fixture
def limited_cluster():
    """Cluster with a 64-CPU / 4-GPU group limit on account 'lab'."""
    assoc = Association(account="lab", grp_tres=TRES(cpus=64, gpus=4))
    return small_test_cluster(associations=[assoc])


@pytest.fixture
def directory():
    d = Directory()
    for name in ("alice", "bob", "carol", "dave", "eve"):
        d.add_user(name)
    d.add_account("physics-lab", members=["alice", "bob", "carol"], managers=["alice"])
    d.add_account("chem-lab", members=["carol", "dave"], managers=["carol"])
    return d


@pytest.fixture
def policy(directory):
    return PermissionPolicy(directory)


@pytest.fixture
def alice():
    return Viewer(username="alice")


@pytest.fixture
def dave():
    return Viewer(username="dave")


@pytest.fixture(scope="session")
def busy_world():
    """A populated cluster shared (read-only!) across integration tests.

    6 hours of simulated traffic: running, pending and finished jobs of
    every flavour.  Tests must not mutate it; mutating tests build their
    own cluster.
    """
    cluster, directory, result = populated_cluster(
        seed=42, duration_hours=6.0, config=WorkloadConfig(seed=42)
    )
    return cluster, directory, result


def simple_spec(
    user="alice",
    account="lab",
    partition="cpu",
    cpus=4,
    mem_mb=8000,
    gpus=0,
    nodes=1,
    time_limit=3600.0,
    actual_runtime=600.0,
    utilization=0.9,
    **kw,
):
    """Terse JobSpec builder used across test modules."""
    return JobSpec(
        name=kw.pop("name", "job"),
        user=user,
        account=account,
        partition=partition,
        req=TRES(cpus=cpus, mem_mb=mem_mb, gpus=gpus, nodes=nodes),
        time_limit=time_limit,
        actual_runtime=actual_runtime,
        actual_cpu_utilization=utilization,
        **kw,
    )
