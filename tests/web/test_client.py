"""Tests for the browser-style client: transports + widget loads."""

import pytest

from repro.auth import Viewer
from repro.web import (
    BrowserClient,
    HttpTransport,
    InProcessTransport,
    TransportError,
)
from repro.web.server import DashboardServer


@pytest.fixture
def client_world(dash, alice_v):
    transport = InProcessTransport(dash, alice_v)
    client = BrowserClient(transport, dash.clock)
    return dash, client, transport


class TestInProcessTransport:
    def test_get(self, dash, alice_v):
        t = InProcessTransport(dash, alice_v)
        data = t.get("/api/v1/widgets/system_status", {})
        assert data["partitions"]
        assert t.requests == 1

    def test_error_raises(self, dash, alice_v):
        t = InProcessTransport(dash, alice_v)
        with pytest.raises(TransportError) as exc:
            t.get("/api/v1/node_overview", {"node": "ghost"})
        assert exc.value.status == 404


class TestBrowserClient:
    def test_first_visit_all_network(self, client_world, dash, alice_v):
        _, client, transport = client_world
        manifest = dash.call("homepage", alice_v).data
        loads = client.open_homepage(manifest)
        assert len(loads) == 5
        assert all(l.served_from == "network" for l in loads)
        assert transport.requests == 5

    def test_revisit_within_freshness_no_requests(self, client_world, dash, alice_v):
        _, client, transport = client_world
        manifest = dash.call("homepage", alice_v).data
        client.open_homepage(manifest)
        n = transport.requests
        dash.clock.advance(5)  # everything still fresh
        loads = client.open_homepage(manifest)
        assert all(l.served_from == "client-cache" for l in loads)
        assert transport.requests == n

    def test_stale_revisit_renders_instantly_and_refreshes(
        self, client_world, dash, alice_v
    ):
        _, client, transport = client_world
        manifest = dash.call("homepage", alice_v).data
        client.open_homepage(manifest)
        n = transport.requests
        dash.clock.advance(3600)  # all widgets stale now
        loads = client.open_homepage(manifest)
        # still instant (client cache), but refreshed in the background
        assert all(l.served_from == "client-cache" for l in loads)
        assert all(l.revalidated for l in loads)
        assert transport.requests == n + 5

    def test_instant_fraction(self, client_world, dash, alice_v):
        _, client, _ = client_world
        manifest = dash.call("homepage", alice_v).data
        client.open_homepage(manifest)
        client.open_homepage(manifest)
        assert client.instant_fraction == pytest.approx(0.5)

    def test_per_widget_freshness_windows(self, client_world, dash, alice_v):
        """recent_jobs (30 s window) refetches while announcements
        (300 s window) still serves from cache."""
        _, client, transport = client_world
        manifest = dash.call("homepage", alice_v).data
        client.open_homepage(manifest)
        dash.clock.advance(60)
        by_name = {w["name"]: w for w in manifest["widgets"]}
        rj = client.load("recent_jobs", by_name["recent_jobs"]["path"],
                         max_age_s=by_name["recent_jobs"]["max_age_s"])
        ann = client.load("announcements", by_name["announcements"]["path"],
                          max_age_s=by_name["announcements"]["max_age_s"])
        assert rj.revalidated  # stale at 60 s > 30 s window
        assert not ann.revalidated  # fresh at 60 s < 300 s window


class TestHttpTransport:
    def test_roundtrip_over_http(self, dash, alice_v):
        with DashboardServer(dash) as server:
            transport = HttpTransport(server.url, username="alice")
            client = BrowserClient(transport, dash.clock)
            load = client.load(
                "system_status", "/api/v1/widgets/system_status", max_age_s=60
            )
            assert load.served_from == "network"
            assert load.data["partitions"]
            load2 = client.load(
                "system_status", "/api/v1/widgets/system_status", max_age_s=60
            )
            assert load2.served_from == "client-cache"

    def test_http_error_surfaces(self, dash):
        with DashboardServer(dash) as server:
            transport = HttpTransport(server.url, username="alice")
            with pytest.raises(TransportError) as exc:
                transport.get("/api/v1/node_overview", {"node": "ghost"})
            assert exc.value.status == 404

    def test_admin_header(self, dash, jobs):
        with DashboardServer(dash) as server:
            transport = HttpTransport(server.url, username="root", is_admin=True)
            data = transport.get(
                "/api/v1/job_overview", {"job_id": jobs["private"].job_id}
            )
            assert data["header"]["name"] == "secret"


class TestLoadDelta:
    """The delta views over the browser client: stale revisits carry
    only the records changed past the stored cursor."""

    def test_first_load_stores_full_snapshot(self, client_world):
        _, client, transport = client_world
        load = client.load_delta("jobs", "/api/v1/views/jobs")
        assert load.served_from == "network"
        # the client keeps the merged {cursor, records} state
        assert load.data["cursor"] >= 1
        assert load.data["records"]  # the world has live jobs
        assert transport.requests == 1

    def test_fresh_revisit_is_instant(self, client_world, dash):
        _, client, transport = client_world
        client.load_delta("jobs", "/api/v1/views/jobs", max_age_s=30.0)
        dash.clock.advance(5)
        load = client.load_delta("jobs", "/api/v1/views/jobs", max_age_s=30.0)
        assert load.served_from == "client-cache"
        assert transport.requests == 1

    def test_stale_revisit_fetches_only_the_delta(self, client_world, dash):
        cluster = dash.ctx.cluster
        _, client, transport = client_world
        first = client.load_delta("jobs", "/api/v1/views/jobs", max_age_s=30.0)
        baseline = set(first.data["records"])
        dash.clock.advance(60)  # client entry and server TTL both lapse
        from tests.conftest import simple_spec

        [new_job] = cluster.submit(
            simple_spec(name="delta_probe", user="alice",
                        account="physics-lab", cpus=1, mem_mb=100,
                        actual_runtime=60)
        )
        load = client.load_delta("jobs", "/api/v1/views/jobs", max_age_s=30.0)
        assert load.served_from == "client-cache"  # stale-while-revalidate
        assert load.revalidated
        assert client.cache.delta_refreshes == 1
        # the merged record map now includes the new job
        merged = client.cache.db.get(
            "api-responses", "/api/v1/views/jobs?{}"
        ).value
        assert str(new_job.job_id) in merged["records"]
        assert baseline <= set(merged["records"])

    def test_over_http(self, dash):
        from repro.web.server import DashboardServer

        with DashboardServer(dash) as server:
            transport = HttpTransport(server.url, username="alice")
            client = BrowserClient(transport, dash.clock)
            load = client.load_delta("nodes", "/api/v1/views/nodes")
            assert load.served_from == "network"
            assert load.data["records"]
