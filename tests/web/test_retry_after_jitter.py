"""Deterministic jitter on the ``Retry-After`` header.

Un-jittered rejection hints synchronize every rejected client onto the
same retry instant (a thundering herd against a service that just came
back).  :class:`RetryJitter` decorrelates them: each rejection draws
from one seeded ``repro.sim.rng`` stream, spreading the hinted header
into ``[hint, hint * 1.5)`` — reproducibly, because the stream is
seeded.  The JSON body keeps the exact un-jittered ``retry_after_s``
(machine-readable budget); only the header is spread.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.caching import CachePolicy
from repro.core.dashboard import build_demo_dashboard
from repro.faults import FaultPlan
from repro.web.delivery import RetryJitter
from repro.web.server import DashboardServer


class TestRetryJitterUnit:
    def test_same_seed_same_sequence(self):
        a = RetryJitter(seed=3)
        b = RetryJitter(seed=3)
        assert [a.jitter(30.0) for _ in range(5)] == [
            b.jitter(30.0) for _ in range(5)
        ]

    def test_consecutive_draws_differ(self):
        j = RetryJitter(seed=0)
        first, second = j.jitter(60.0), j.jitter(60.0)
        assert first != second

    def test_spread_bounds(self):
        j = RetryJitter(seed=1, spread=0.5)
        for _ in range(50):
            hint = j.jitter(10.0)
            assert 10.0 <= hint < 15.0

    def test_zero_spread_is_identity(self):
        j = RetryJitter(seed=0, spread=0.0)
        assert j.jitter(42.0) == 42.0

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            RetryJitter(spread=-0.1)


@pytest.fixture
def served():
    dash, directory, _ = build_demo_dashboard(
        duration_hours=0.5,
        seed=11,
        cache_policy=CachePolicy(timeouts_s={"squeue": 1.0}),
    )
    server = DashboardServer(dash).start()
    yield server, dash, directory
    server.stop()


def request(server, path, username):
    import urllib.error
    import urllib.request

    req = urllib.request.Request(
        server.url + path, headers={"X-Remote-User": username}
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.headers, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers, err.read()


class TestRetryAfterHeaderJitter:
    def test_successive_rejections_get_different_hints(self, served):
        """Regression: two rejections sharing one un-jittered budget used
        to get byte-identical ``Retry-After`` headers.  Drive the breaker
        open (its cooldown hint is identical across back-to-back
        rejections on a frozen sim clock) and require the headers to
        spread while the JSON bodies stay on the exact budget."""
        server, dash, directory = served
        user = directory.users()[0].username
        plan = FaultPlan()
        plan.schedule_outage("slurmctld", start=dash.clock.now(), end=math.inf)
        dash.inject_faults(plan)

        rejections = []
        for _ in range(30):
            status, headers, body = request(
                server, "/api/v1/widgets/recent_jobs", user
            )
            if status in (503, 504) and headers.get("Retry-After"):
                payload = json.loads(body)
                # breaker-open rejections: cooldown-sized hints, same
                # un-jittered budget on a frozen clock
                if payload.get("retry_after_s", 0) >= 10:
                    rejections.append(
                        (int(headers["Retry-After"]), payload["retry_after_s"])
                    )
            if len(rejections) == 2:
                break
        assert len(rejections) == 2, "breaker never opened"

        (header_a, body_a), (header_b, body_b) = rejections
        # body keeps the exact shared budget; header is spread
        assert body_a == body_b
        assert header_a != header_b
        for header, body in rejections:
            assert math.ceil(body) <= header <= math.ceil(body * 1.5)

    def test_header_jitter_is_reproducible_across_servers(self, served):
        """Same seed, same fault, same request sequence -> same headers
        (the jitter is deterministic, not random per process)."""
        server, dash, directory = served
        user = directory.users()[0].username
        plan = FaultPlan()
        plan.schedule_outage("slurmctld", start=dash.clock.now(), end=math.inf)
        dash.inject_faults(plan)

        def header_sequence(srv):
            out = []
            for _ in range(10):
                status, headers, _ = request(
                    srv, "/api/v1/widgets/recent_jobs", user
                )
                if headers.get("Retry-After"):
                    out.append(headers["Retry-After"])
            return out

        first = header_sequence(server)
        assert first, "no rejection carried Retry-After"

        dash2, directory2, _ = build_demo_dashboard(
            duration_hours=0.5,
            seed=11,
            cache_policy=CachePolicy(timeouts_s={"squeue": 1.0}),
        )
        plan2 = FaultPlan()
        plan2.schedule_outage(
            "slurmctld", start=dash2.clock.now(), end=math.inf
        )
        dash2.inject_faults(plan2)
        server2 = DashboardServer(dash2).start()
        try:
            assert header_sequence(server2) == first
        finally:
            server2.stop()
