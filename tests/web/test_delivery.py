"""HTTP delivery layer: conditional GET, gzip, streamed homepage.

End to end over a real socket where possible: an unchanged widget costs
a 304 with zero render work and zero body bytes, gzip negotiates and
never changes the decoded HTML, the streamed homepage is byte-identical
to the batch render, and the wire-layer bugfix sweep (export deadlines,
Content-Disposition hygiene, blank/duplicate query params) stays fixed.
"""

from __future__ import annotations

import gzip
import json
import urllib.error
import urllib.request

import pytest

from repro.core.caching import CachePolicy, TTLCache
from repro.core.clientcache import ClientCache
from repro.core.dashboard import build_demo_dashboard
from repro.core.params import ParamError, coerce_params
from repro.core.sharding import ShardedCache
from repro.faults import FaultPlan
from repro.sim.clock import SimClock
from repro.web.client import BrowserClient, HttpTransport, InProcessTransport
from repro.web.delivery import (
    ValidatorIndex,
    content_disposition,
    gzip_accepted,
    if_none_match_values,
    is_compressible,
)
from repro.web.server import DashboardServer

WIDGET = "/api/v1/widgets/system_status"


@pytest.fixture
def served():
    """Function-scoped server over a tiny world (tests install faults
    and advance the clock, so nothing is shared)."""
    dash, directory, _ = build_demo_dashboard(
        duration_hours=0.5,
        seed=11,
        cache_policy=CachePolicy(timeouts_s={"squeue": 1.0, "sacct": 1.0}),
    )
    server = DashboardServer(dash).start()
    yield server, dash, directory
    server.stop()


def request(server, path, username=None, headers=None, method="GET"):
    """Issue one request; returns (status, headers, body) even on 4xx/5xx."""
    all_headers = dict(headers or {})
    if username:
        all_headers["X-Remote-User"] = username
    req = urllib.request.Request(
        server.url + path, headers=all_headers, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.headers, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers, err.read()


def route_calls(dash, route):
    """Total dispatches of one route (any status) — the render-work meter."""
    return dash.ctx.obs.route_requests.total(route=route)


# ---------------------------------------------------------------------------
# generation tags (the validator substrate)


class TestGenerationTags:
    def test_every_write_bumps_the_generation(self):
        cache = TTLCache(SimClock())
        assert cache.generation_of("k") is None
        cache.write("k", 1)
        first = cache.generation_of("k")
        cache.write("k", 1)  # same value: still a new validator
        assert cache.generation_of("k") > first

    def test_generations_are_cache_wide_monotonic(self):
        cache = TTLCache(SimClock())
        cache.write("a", 1)
        cache.write("b", 2)
        assert cache.generation_of("b") > cache.generation_of("a")

    def test_sharded_cache_delegates_to_the_owning_shard(self):
        cache = ShardedCache(SimClock(), shards=4)
        cache.write("k", 1)
        assert cache.generation_of("k") == cache.shard_of("k").generation_of("k")
        assert cache.generation_of("missing") is None


# ---------------------------------------------------------------------------
# conditional GET over the wire


class TestConditionalGet:
    def test_repeat_fetch_is_a_304_with_zero_render_and_zero_body(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        status, headers, body = request(server, WIDGET, username=user)
        assert status == 200
        etag = headers["ETag"]
        assert etag.startswith('"') and etag.endswith('"')
        before = route_calls(dash, "system_status")
        nm_before = dash.ctx.obs.http_not_modified.value(kind="api")
        status, headers, body = request(
            server, WIDGET, username=user, headers={"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag
        assert headers.get("Content-Length") is None
        # zero render work: the route was never dispatched
        assert route_calls(dash, "system_status") == before
        assert dash.ctx.obs.http_not_modified.value(kind="api") == nm_before + 1
        assert dash.ctx.obs.http_bytes_saved.value(reason="not_modified") > 0

    def test_etag_is_stable_across_cache_hits(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        _, h1, _ = request(server, WIDGET, username=user)
        _, h2, _ = request(server, WIDGET, username=user)
        assert h1["ETag"] == h2["ETag"]

    def test_expired_cache_entry_falls_through_to_a_full_200(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        _, headers, _ = request(server, WIDGET, username=user)
        dash.clock.advance(3600)  # far past the sinfo TTL
        status, h2, body = request(
            server, WIDGET, username=user,
            headers={"If-None-Match": headers["ETag"]},
        )
        assert status == 200 and body
        assert h2["ETag"] != headers["ETag"]  # recompute → new generation

    def test_rewritten_cache_entry_invalidates_the_validator(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        _, headers, _ = request(server, WIDGET, username=user)
        # rewrite the backing entry in place — even an equal value must
        # invalidate outstanding validators (the generation bumps)
        entry = dash.ctx.cache.entry("sinfo:all")
        dash.ctx.cache.write("sinfo:all", entry.value)
        status, _, body = request(
            server, WIDGET, username=user,
            headers={"If-None-Match": headers["ETag"]},
        )
        assert status == 200 and body

    def test_etags_differ_per_viewer(self, served):
        server, dash, directory = served
        users = [u.username for u in directory.users()[:2]]
        _, h1, _ = request(server, WIDGET, username=users[0])
        _, h2, _ = request(server, WIDGET, username=users[1])
        assert h1["ETag"] != h2["ETag"]

    def test_mismatched_validator_is_a_full_200(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        request(server, WIDGET, username=user)
        status, _, body = request(
            server, WIDGET, username=user,
            headers={"If-None-Match": '"stale-validator"'},
        )
        assert status == 200 and body


class TestValidatorIndexUnit:
    def test_lru_eviction_bounds_the_index(self):
        index = ValidatorIndex(max_entries=2)
        cache = TTLCache(SimClock())
        cache.write("k", 1)
        deps = (("k", cache.generation_of("k")),)
        for key in ("a", "b", "c"):
            index.record(key, f"etag-{key}", deps, 10)
        assert len(index) == 2
        assert index.validate("a", '"etag-a"', cache, 0.0) is None
        assert index.validate("c", '"etag-c"', cache, 0.0) is not None

    def test_if_none_match_parsing(self):
        assert if_none_match_values('"a", W/"b" , *') == ("a", "b", "*")
        assert if_none_match_values(None) == ()


# ---------------------------------------------------------------------------
# gzip negotiation


class TestGzip:
    def test_negotiated_gzip_decodes_to_identical_bytes(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        _, _, plain = request(server, WIDGET, username=user)
        status, headers, body = request(
            server, WIDGET, username=user,
            headers={"Accept-Encoding": "gzip"},
        )
        assert status == 200
        assert headers["Content-Encoding"] == "gzip"
        assert headers["Vary"] == "Accept-Encoding"
        assert len(body) < len(plain)
        assert gzip.decompress(body) == plain
        assert dash.ctx.obs.http_bytes_saved.value(reason="gzip") > 0

    def test_no_accept_encoding_gets_identity_with_vary(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        status, headers, body = request(server, WIDGET, username=user)
        assert status == 200
        assert headers.get("Content-Encoding") is None
        assert headers["Vary"] == "Accept-Encoding"
        json.loads(body)  # plain JSON

    def test_gzip_q0_is_a_refusal(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        _, headers, body = request(
            server, WIDGET, username=user,
            headers={"Accept-Encoding": "gzip;q=0"},
        )
        assert headers.get("Content-Encoding") is None
        json.loads(body)

    def test_small_bodies_skip_compression(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        # a 404 error envelope is well under the size threshold
        status, headers, _ = request(
            server, "/api/v1/nope", username=user,
            headers={"Accept-Encoding": "gzip"},
        )
        assert status == 404
        assert headers.get("Content-Encoding") is None
        assert headers.get("Vary") is None

    def test_negotiation_parser(self):
        assert gzip_accepted("gzip")
        assert gzip_accepted("br, gzip;q=0.5")
        assert gzip_accepted("*")
        assert not gzip_accepted(None)
        assert not gzip_accepted("identity")
        assert not gzip_accepted("gzip;q=0")
        assert not gzip_accepted("*;q=0")
        assert gzip_accepted("*;q=0, gzip;q=1")

    def test_compressibility_policy(self):
        assert is_compressible("text/html; charset=utf-8")
        assert is_compressible("application/json")
        assert not is_compressible("application/vnd.ms-excel")


# ---------------------------------------------------------------------------
# streamed homepage


class TestStreamedHomepage:
    def test_streamed_document_is_byte_identical_to_batch(self, served):
        server, dash, directory = served
        from repro.auth import Viewer

        user = directory.users()[0].username
        status, headers, body = request(server, "/", username=user)
        assert status == 200
        assert headers["Transfer-Encoding"] == "chunked"
        assert headers.get("Content-Length") is None
        batch = dash.render_homepage(
            Viewer(username=user), parallel=False
        ).document
        assert body.decode() == batch

    def test_streamed_gzip_decodes_to_the_same_document(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        _, _, plain = request(server, "/", username=user)
        status, headers, body = request(
            server, "/", username=user, headers={"Accept-Encoding": "gzip"}
        )
        assert status == 200
        assert headers["Content-Encoding"] == "gzip"
        assert headers["Transfer-Encoding"] == "chunked"
        assert gzip.decompress(body) == plain

    def test_widget_failure_degrades_one_slot_not_the_stream(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        plan = FaultPlan()
        plan.schedule_outage("news", start=0.0, end=float("inf"))
        dash.inject_faults(plan)
        status, _, body = request(server, "/", username=user)
        html = body.decode()
        assert status == 200
        assert html.rstrip().endswith("</html>")
        assert "temporarily unavailable" in html


# ---------------------------------------------------------------------------
# HEAD parity


class TestHeadParity:
    def test_head_mirrors_get_headers_without_a_body(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        _, get_headers, body = request(server, WIDGET, username=user)
        status, head_headers, head_body = request(
            server, WIDGET, username=user, method="HEAD"
        )
        assert status == 200 and head_body == b""
        assert head_headers["Content-Length"] == str(len(body))
        for name in ("Content-Type", "ETag", "Vary"):
            assert head_headers[name] == get_headers[name]

    def test_head_mirrors_gzip_negotiation(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        _, get_headers, body = request(
            server, WIDGET, username=user, headers={"Accept-Encoding": "gzip"}
        )
        _, head_headers, head_body = request(
            server, WIDGET, username=user,
            headers={"Accept-Encoding": "gzip"}, method="HEAD",
        )
        assert head_body == b""
        assert head_headers["Content-Encoding"] == "gzip"
        assert head_headers["Content-Length"] == str(len(body))

    def test_head_conditional_is_a_304(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        _, headers, _ = request(server, WIDGET, username=user)
        status, h304, body = request(
            server, WIDGET, username=user,
            headers={"If-None-Match": headers["ETag"]}, method="HEAD",
        )
        assert status == 304 and body == b""
        assert h304["ETag"] == headers["ETag"]

    def test_head_homepage_streams_no_body_and_renders_nothing(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        before = route_calls(dash, "system_status")
        status, headers, body = request(server, "/", username=user, method="HEAD")
        assert status == 200 and body == b""
        assert headers["Transfer-Encoding"] == "chunked"
        # the widget generator was never advanced: zero render work
        assert route_calls(dash, "system_status") == before


# ---------------------------------------------------------------------------
# bugfix sweep: export deadlines


class TestExportDeadline:
    def _manager_and_account(self, directory):
        manager = next(
            a.managers[0] for a in directory.accounts() if a.managers
        )
        account = next(
            a.name for a in directory.accounts() if manager in a.managers
        )
        return manager, account

    @pytest.mark.parametrize("raw", ["soon", "", "-5", "0", "nan", "inf"])
    def test_malformed_deadline_is_a_400_on_export_urls(self, served, raw):
        server, _, directory = served
        manager, account = self._manager_and_account(directory)
        status, _, body = request(
            server, f"/api/v1/export/account_usage/{account}.csv",
            username=manager, headers={"X-Request-Deadline-Ms": raw},
        )
        assert status == 400
        payload = json.loads(body)
        assert payload["ok"] is False
        assert "X-Request-Deadline-Ms" in payload["error"]

    def test_exhausted_deadline_is_a_504_with_retry_after(self, served):
        server, dash, directory = served
        manager, account = self._manager_and_account(directory)
        plan = FaultPlan()
        plan.schedule_slowdown("slurmdbd", extra_latency_s=5.0)
        dash.inject_faults(plan)
        status, headers, body = request(
            server, f"/api/v1/export/account_usage/{account}.csv",
            username=manager, headers={"X-Request-Deadline-Ms": "2000"},
        )
        assert status == 504
        payload = json.loads(body)
        assert payload["ok"] is False and "deadline" in payload["error"]
        assert int(headers["Retry-After"]) >= 1

    def test_generous_deadline_still_downloads(self, served):
        server, _, directory = served
        manager, account = self._manager_and_account(directory)
        status, headers, body = request(
            server, f"/api/v1/export/account_usage/{account}.csv",
            username=manager, headers={"X-Request-Deadline-Ms": "30000"},
        )
        assert status == 200
        assert "attachment" in headers["Content-Disposition"]
        assert body.decode().splitlines()[0].startswith("account,user,")


# ---------------------------------------------------------------------------
# bugfix sweep: Content-Disposition hygiene


class TestContentDisposition:
    def test_plain_filename_round_trips(self):
        assert (
            content_disposition("chem_usage.csv")
            == 'attachment; filename="chem_usage.csv"'
        )

    def test_quotes_are_escaped(self):
        header = content_disposition('a"b.csv')
        assert header == 'attachment; filename="a\\"b.csv"'

    def test_backslashes_are_escaped_before_quotes(self):
        header = content_disposition('a\\"b.csv')
        assert header == 'attachment; filename="a\\\\\\"b.csv"'

    def test_control_characters_are_stripped(self):
        header = content_disposition("evil\r\nX-Injected: 1\x7f.csv")
        assert "\r" not in header and "\n" not in header and "\x7f" not in header
        assert header == 'attachment; filename="evilX-Injected: 1.csv"'


# ---------------------------------------------------------------------------
# bugfix sweep: query-param hygiene


class TestParamHygiene:
    def test_blank_value_is_a_structured_400(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        status, _, body = request(server, WIDGET + "?limit=", username=user)
        assert status == 400
        payload = json.loads(body)
        assert payload["ok"] is False and "blank" in payload["error"]

    def test_duplicate_key_is_a_structured_400(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        status, _, body = request(
            server, "/api/v1/my_jobs?limit=1&limit=999", username=user
        )
        assert status == 400
        payload = json.loads(body)
        assert payload["ok"] is False and "duplicate" in payload["error"]

    def test_coerce_params_rejects_blank_and_duplicate(self):
        with pytest.raises(ParamError):
            coerce_params([("limit", "")])
        with pytest.raises(ParamError):
            coerce_params([("limit", "1"), ("limit", "2")])
        assert coerce_params([("limit", "5")]) == {"limit": 5}


# ---------------------------------------------------------------------------
# client-side: the browser honors ETags end to end


class TestClientConditional:
    def test_http_transport_revalidates_with_304(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        transport = HttpTransport(server.url, user)
        browser = BrowserClient(transport, dash.clock)
        first = browser.load("system_status", WIDGET, max_age_s=5.0)
        assert first.served_from == "network"
        # stale client-side, still fresh server-side (sinfo TTL is 60 s)
        dash.clock.advance(10)
        second = browser.load("system_status", WIDGET, max_age_s=5.0)
        assert second.served_from == "client-cache" and second.revalidated
        assert transport.not_modified == 1
        assert browser.cache.not_modified == 1
        assert second.data == first.data

    def test_in_process_transport_models_the_same_contract(self, served):
        _, dash, directory = served
        from repro.auth import Viewer

        user = directory.users()[0].username
        transport = InProcessTransport(dash, Viewer(username=user))
        browser = BrowserClient(transport, dash.clock)
        browser.load("system_status", WIDGET, max_age_s=5.0)
        dash.clock.advance(10)
        outcome = browser.load("system_status", WIDGET, max_age_s=5.0)
        assert outcome.revalidated
        assert transport.not_modified == 1
        assert browser.cache.not_modified == 1

    def test_changed_payload_replaces_the_cached_record(self):
        clock = SimClock()
        cache = ClientCache(clock)
        payloads = iter([({"v": 1}, "e1", False), ({"v": 2}, "e2", False)])

        def fetch(etag):
            return next(payloads)

        first = cache.fetch_conditional("k", fetch, max_age_s=5.0)
        assert first.value == {"v": 1}
        clock.advance(10)
        stale = cache.fetch_conditional("k", fetch, max_age_s=5.0)
        # stale-while-revalidate renders the old copy, stores the new one
        assert stale.value == {"v": 1} and stale.revalidated
        fresh = cache.fetch_conditional("k", fetch, max_age_s=5.0)
        assert fresh.value == {"v": 2}
        assert cache.db.get(cache.STORE, "k").etag == "e2"
