"""Server lifecycle: port-0 binding, graceful stop, rebindability.

The worker fleet spawns and tears down many DashboardServers per run,
so the lifecycle guarantees — an ephemeral port is bound and reported
before ``start()`` returns, ``stop()`` is graceful and idempotent, and
a stopped address is immediately rebindable — are load-bearing, not
niceties.
"""

import urllib.error
import urllib.request

import pytest

from repro.web.server import DashboardServer, _LoadableHTTPServer


@pytest.fixture(scope="module")
def small_dash():
    from repro.core.dashboard import build_demo_dashboard

    dash, _directory, _ = build_demo_dashboard(duration_hours=1.0, seed=11)
    return dash


def _get(url, path="/healthz", timeout=10):
    with urllib.request.urlopen(url + path, timeout=timeout) as resp:
        return resp.status


class TestLifecycle:
    def test_port_zero_binds_ephemeral_and_reports_it(self, small_dash):
        with DashboardServer(small_dash, port=0) as server:
            assert server.port != 0
            assert str(server.port) in server.url
            assert _get(server.url) == 200

    def test_port_known_before_start(self, small_dash):
        """Binding happens at construction: the fleet handshake reports
        a worker's port without racing its accept loop."""
        server = DashboardServer(small_dash, port=0)
        try:
            assert server.port != 0
        finally:
            server.stop()

    def test_stopped_server_refuses_restart(self, small_dash):
        server = DashboardServer(small_dash, port=0).start()
        server.stop()
        with pytest.raises(RuntimeError):
            server.start()

    def test_running_tracks_lifecycle(self, small_dash):
        server = DashboardServer(small_dash, port=0)
        assert not server.running
        server.start()
        try:
            assert server.running
        finally:
            server.stop()
        assert not server.running

    def test_stop_is_idempotent(self, small_dash):
        server = DashboardServer(small_dash, port=0).start()
        server.stop()
        server.stop()  # second stop must be a no-op, not an error
        assert not server.running

    def test_stop_refuses_new_connections(self, small_dash):
        server = DashboardServer(small_dash, port=0).start()
        url = server.url
        assert _get(url) == 200
        server.stop()
        with pytest.raises((urllib.error.URLError, OSError)):
            _get(url, timeout=2)

    def test_stopped_port_immediately_rebindable(self, small_dash):
        """SO_REUSEADDR in practice: a fleet replacement worker can
        take over a just-vacated port without waiting out TIME_WAIT."""
        first = DashboardServer(small_dash, port=0).start()
        port = first.port
        first.stop()
        second = DashboardServer(small_dash, port=port).start()
        try:
            assert second.port == port
            assert _get(second.url) == 200
        finally:
            second.stop()

    def test_double_start_rejected(self, small_dash):
        server = DashboardServer(small_dash, port=0).start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_context_manager_round_trip(self, small_dash):
        with DashboardServer(small_dash, port=0) as server:
            assert server.running
        assert not server.running


class TestListenerTuning:
    def test_listener_hardening_flags(self):
        """The fleet's balancer fans many concurrent sockets into each
        worker; the stdlib defaults (backlog 5, no reuse) would drop
        connections under exactly that load."""
        assert _LoadableHTTPServer.request_queue_size >= 64
        assert _LoadableHTTPServer.allow_reuse_address is True
        assert _LoadableHTTPServer.daemon_threads is True
