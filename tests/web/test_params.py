"""Regression tests for query-string coercion and integer-param validation.

``coerce_params`` used to convert ``nan``/``inf``/``1e309`` into float
NaN/Infinity, which ``json.dumps`` then emitted as bare ``NaN`` —
invalid JSON that breaks every spec-compliant client.

A second leak: ``coerce_params`` maps ``"true"`` to Python ``True``, and
``isinstance(True, int)`` holds — so ``?limit=true`` silently reached
``Tracer.recent`` as ``limit=1`` (and ``?limit=0`` as a slice over the
whole buffer).  Integer query params now reject booleans and non-positive
values with a structured 400.
"""

from __future__ import annotations

import json

import pytest

from repro.web.server import ParamError, coerce_params, positive_int_param


class TestCoerceParams:
    def test_basic_types(self):
        out = coerce_params(
            [("a", "1"), ("b", "2.5"), ("c", "true"), ("d", "False"), ("e", "text")]
        )
        assert out == {"a": 1, "b": 2.5, "c": True, "d": False, "e": "text"}
        assert isinstance(out["a"], int)

    @pytest.mark.parametrize(
        "raw",
        ["nan", "NaN", "inf", "-inf", "Infinity", "-Infinity", "1e309", "-1e309"],
    )
    def test_non_finite_floats_stay_strings(self, raw):
        out = coerce_params([("limit", raw)])
        assert out["limit"] == raw
        assert isinstance(out["limit"], str)

    def test_payload_with_rejected_values_is_valid_json(self):
        out = coerce_params([("a", "nan"), ("b", "inf"), ("c", "3.5")])
        text = json.dumps(out)
        assert json.loads(text) == {"a": "nan", "b": "inf", "c": 3.5}
        assert "NaN" not in text and "Infinity" not in text

    def test_finite_scientific_notation_still_floats(self):
        out = coerce_params([("x", "1e3"), ("y", "-2.5e-4")])
        assert out == {"x": 1000.0, "y": -0.00025}

    @pytest.mark.parametrize(
        "raw",
        [
            # regression: int()/float() accept PEP 515 underscores, so
            # "1_000" silently became the number 1000
            "1_000", "1_0", "_1", "1_", "1_000.5", "1_0e2",
            # regression: int()/float() strip surrounding whitespace, so
            # " 42 " silently became the number 42
            " 42", "42 ", " 42 ", "\t7", "3.5\n", " 1e3 ",
        ],
    )
    def test_underscore_and_whitespace_stay_strings(self, raw):
        out = coerce_params([("limit", raw)])
        assert out["limit"] == raw
        assert isinstance(out["limit"], str)

    def test_padded_booleans_stay_strings(self):
        # only the exact spellings are booleans; padding keeps them raw
        out = coerce_params([("flag", " true "), ("other", "TRUE")])
        assert out["flag"] == " true "
        assert out["other"] is True

    def test_plain_numbers_still_coerce(self):
        out = coerce_params([("a", "1000"), ("b", "42"), ("c", "1e3")])
        assert out == {"a": 1000, "b": 42, "c": 1000.0}

    def test_huge_int_is_fine(self):
        # int() has no overflow; only the float path can go non-finite
        out = coerce_params([("n", "9" * 400)])
        assert out["n"] == int("9" * 400)
        json.dumps(out)

class TestPositiveIntParam:
    def test_absent_is_none(self):
        assert positive_int_param({}, "limit") is None

    def test_plain_int_passes(self):
        assert positive_int_param({"limit": 5}, "limit") == 5

    @pytest.mark.parametrize("value", [True, False])
    def test_booleans_rejected(self, value):
        # isinstance(True, int) is True in Python; ?limit=true must NOT
        # silently mean limit=1
        with pytest.raises(ParamError):
            positive_int_param({"limit": value}, "limit")

    @pytest.mark.parametrize("value", [0, -1, -100])
    def test_zero_and_negative_rejected(self, value):
        # limit=0 would slice as traces[-0:] == everything; negatives
        # slice from the wrong end
        with pytest.raises(ParamError):
            positive_int_param({"limit": value}, "limit")

    @pytest.mark.parametrize("value", [2.5, "ten", None.__class__])
    def test_non_integers_rejected(self, value):
        with pytest.raises(ParamError):
            positive_int_param({"limit": value}, "limit")

    def test_maximum_enforced_when_given(self):
        assert positive_int_param({"n": 10}, "n", maximum=10) == 10
        with pytest.raises(ParamError):
            positive_int_param({"n": 11}, "n", maximum=10)


class TestTracesLimitOverHttp:
    """End to end on /api/v1/traces/recent: bad limits are structured
    400s, good limits bound the response."""

    def _get(self, dash, query):
        import urllib.error
        import urllib.request

        from repro.web.server import DashboardServer

        with DashboardServer(dash) as server:
            try:
                with urllib.request.urlopen(
                    f"{server.url}/api/v1/traces/recent?{query}", timeout=10
                ) as resp:
                    return resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as err:
                return err.code, json.loads(err.read())

    @pytest.mark.parametrize("query", [
        "limit=true", "limit=false", "limit=-1", "limit=0", "limit=2.5",
    ])
    def test_bad_limit_is_structured_400(self, dash, query):
        status, payload = self._get(dash, query)
        assert status == 400
        assert payload["ok"] is False
        assert "limit" in payload["error"]

    def test_good_limit_bounds_traces(self, dash, alice_v):
        for _ in range(3):
            dash.call("recent_jobs", alice_v)
        status, payload = self._get(dash, "limit=2")
        assert status == 200
        assert payload["ok"] is True
        assert len(payload["traces"]) == 2

    def test_absent_limit_still_works(self, dash, alice_v):
        dash.call("recent_jobs", alice_v)
        status, payload = self._get(dash, "")
        assert status == 200 and payload["ok"] is True
        assert payload["traces"]


class TestHostileParamsOverHttp:
    @pytest.mark.parametrize("query", ["limit=nan", "limit=1e309", "start=inf"])
    def test_hostile_params_over_http_yield_valid_json(self, dash, query):
        """End to end: non-finite query values must never poison a
        response — whatever the status, the body is spec-valid JSON."""
        import urllib.error
        import urllib.request

        from repro.web.server import DashboardServer

        path = "/api/v1/widgets/recent_jobs" if "limit" in query else "/api/v1/my_jobs"
        with DashboardServer(dash) as server:
            req = urllib.request.Request(
                f"{server.url}{path}?{query}",
                headers={"X-Remote-User": "alice"},
            )
            try:
                with urllib.request.urlopen(req, timeout=10) as resp:
                    body = resp.read().decode()
            except urllib.error.HTTPError as err:  # error envelope, not a crash
                body = err.read().decode()
        # json.loads is lenient about NaN (Python extension), so assert on
        # the wire text itself
        assert "NaN" not in body and "Infinity" not in body
        json.loads(body)
