"""Regression tests for query-string coercion (non-finite float leak).

``coerce_params`` used to convert ``nan``/``inf``/``1e309`` into float
NaN/Infinity, which ``json.dumps`` then emitted as bare ``NaN`` —
invalid JSON that breaks every spec-compliant client.
"""

from __future__ import annotations

import json

import pytest

from repro.web.server import coerce_params


class TestCoerceParams:
    def test_basic_types(self):
        out = coerce_params(
            [("a", "1"), ("b", "2.5"), ("c", "true"), ("d", "False"), ("e", "text")]
        )
        assert out == {"a": 1, "b": 2.5, "c": True, "d": False, "e": "text"}
        assert isinstance(out["a"], int)

    @pytest.mark.parametrize(
        "raw",
        ["nan", "NaN", "inf", "-inf", "Infinity", "-Infinity", "1e309", "-1e309"],
    )
    def test_non_finite_floats_stay_strings(self, raw):
        out = coerce_params([("limit", raw)])
        assert out["limit"] == raw
        assert isinstance(out["limit"], str)

    def test_payload_with_rejected_values_is_valid_json(self):
        out = coerce_params([("a", "nan"), ("b", "inf"), ("c", "3.5")])
        text = json.dumps(out)
        assert json.loads(text) == {"a": "nan", "b": "inf", "c": 3.5}
        assert "NaN" not in text and "Infinity" not in text

    def test_finite_scientific_notation_still_floats(self):
        out = coerce_params([("x", "1e3"), ("y", "-2.5e-4")])
        assert out == {"x": 1000.0, "y": -0.00025}

    @pytest.mark.parametrize(
        "raw",
        [
            # regression: int()/float() accept PEP 515 underscores, so
            # "1_000" silently became the number 1000
            "1_000", "1_0", "_1", "1_", "1_000.5", "1_0e2",
            # regression: int()/float() strip surrounding whitespace, so
            # " 42 " silently became the number 42
            " 42", "42 ", " 42 ", "\t7", "3.5\n", " 1e3 ",
        ],
    )
    def test_underscore_and_whitespace_stay_strings(self, raw):
        out = coerce_params([("limit", raw)])
        assert out["limit"] == raw
        assert isinstance(out["limit"], str)

    def test_padded_booleans_stay_strings(self):
        # only the exact spellings are booleans; padding keeps them raw
        out = coerce_params([("flag", " true "), ("other", "TRUE")])
        assert out["flag"] == " true "
        assert out["other"] is True

    def test_plain_numbers_still_coerce(self):
        out = coerce_params([("a", "1000"), ("b", "42"), ("c", "1e3")])
        assert out == {"a": 1000, "b": 42, "c": 1000.0}

    def test_huge_int_is_fine(self):
        # int() has no overflow; only the float path can go non-finite
        out = coerce_params([("n", "9" * 400)])
        assert out["n"] == int("9" * 400)
        json.dumps(out)

    @pytest.mark.parametrize("query", ["limit=nan", "limit=1e309", "start=inf"])
    def test_hostile_params_over_http_yield_valid_json(self, dash, query):
        """End to end: non-finite query values must never poison a
        response — whatever the status, the body is spec-valid JSON."""
        import urllib.error
        import urllib.request

        from repro.web.server import DashboardServer

        path = "/api/v1/widgets/recent_jobs" if "limit" in query else "/api/v1/my_jobs"
        with DashboardServer(dash) as server:
            req = urllib.request.Request(
                f"{server.url}{path}?{query}",
                headers={"X-Remote-User": "alice"},
            )
            try:
                with urllib.request.urlopen(req, timeout=10) as resp:
                    body = resp.read().decode()
            except urllib.error.HTTPError as err:  # error envelope, not a crash
                body = err.read().decode()
        # json.loads is lenient about NaN (Python extension), so assert on
        # the wire text itself
        assert "NaN" not in body and "Infinity" not in body
        json.loads(body)
