"""Hammer the shared TTL cache from many threads.

``TTLCache`` is shared by every ``ThreadingHTTPServer`` handler thread;
before the cache grew a lock, concurrent fetch/write/evict interleavings
could corrupt the entry dict.  Two layers of test: a raw multithreaded
stress on one cache, and concurrent HTTP traffic through one dashboard.
"""

from __future__ import annotations

import json
import threading
import urllib.request

from repro.core.caching import TTLCache
from repro.sim.clock import SimClock
from repro.web.server import DashboardServer


class TestRawCacheHammer:
    def test_concurrent_fetch_write_evict(self):
        """16 threads × 300 ops against a 50-entry cache: no exceptions,
        bounded size, and coherent stats afterwards."""
        cache = TTLCache(SimClock(), default_ttl=60, max_entries=50)
        errors = []
        barrier = threading.Barrier(16)

        def worker(tid: int) -> None:
            try:
                barrier.wait()
                for i in range(300):
                    key = f"k{(tid * 7 + i) % 120}"
                    op = i % 4
                    if op == 0:
                        cache.fetch(key, lambda: tid)
                    elif op == 1:
                        cache.write(key, i, ttl=1 + (i % 90))
                    elif op == 2:
                        cache.read(key)
                    else:
                        cache.delete(key)
                    if i % 97 == 0:
                        cache.purge_expired()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        assert len(cache) <= 50
        stats = cache.stats
        # one-hot result label: the family sum is exactly the lookup count;
        # concurrent misses on one key may coalesce instead of both missing
        assert stats.requests == stats.hits + stats.misses + stats.coalesced
        # every key still readable without error
        for i in range(120):
            cache.read(f"k{i}")

    def test_fetch_or_stale_under_contention(self):
        """Concurrent serve-stale on one key: every thread gets the stale
        value, none crashes, and stats count every stale serve."""
        clock = SimClock()
        cache = TTLCache(clock, default_ttl=10)
        cache.write("key", "cached", ttl=10)
        clock.advance(11)  # stale now
        errors, values = [], []
        lock = threading.Lock()

        def boom() -> str:
            raise RuntimeError("backend down")

        def worker() -> None:
            try:
                value, age = cache.fetch_or_stale("key", boom)
                with lock:
                    values.append((value, age))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors, errors
        assert len(values) == 12
        assert all(v == "cached" and age > 0 for v, age in values)
        assert cache.stats.stale_served == 12


class TestHttpCacheHammer:
    def test_concurrent_requests_share_one_cache(self, dash):
        """40 threads × 3 users × 2 routes through one dashboard: every
        response parses, none is a 5xx, and the shared cache collapses
        the daemon traffic to a handful of RPCs."""
        results, errors = [], []
        lock = threading.Lock()
        paths = ("/api/v1/widgets/recent_jobs", "/api/v1/widgets/system_status")

        def fetch(user: str, idx: int) -> None:
            try:
                req = urllib.request.Request(
                    url + paths[idx % len(paths)],
                    headers={"X-Remote-User": user},
                )
                with urllib.request.urlopen(req, timeout=15) as resp:
                    payload = json.loads(resp.read())
                with lock:
                    results.append((resp.status, payload["ok"]))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        with DashboardServer(dash) as server:
            url = server.url
            threads = [
                threading.Thread(target=fetch, args=(user, i))
                for i in range(40)
                for user in ("alice", "bob", "dave")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)

        assert not errors, errors
        assert len(results) == 120
        assert all(status == 200 and ok for status, ok in results)
        stats = dash.ctx.cache.stats
        assert stats.requests == stats.hits + stats.misses + stats.coalesced
        # 120 requests over 4 distinct cache keys (3 users × squeue + sinfo):
        # the cache must have absorbed almost everything, either as fresh
        # hits or by coalescing onto an in-flight compute
        assert stats.hits + stats.coalesced >= 120 - 20
