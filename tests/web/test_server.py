"""Tests for the HTTP JSON API server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.web.server import DashboardServer, coerce_params


@pytest.fixture(scope="module")
def served():
    """A server over a small deterministic world (module-scoped: the
    HTTP tests are read-only)."""
    from repro.core.dashboard import build_demo_dashboard

    dash, directory, _ = build_demo_dashboard(duration_hours=1.0, seed=11)
    server = DashboardServer(dash).start()
    yield server, dash, directory
    server.stop()


def fetch(server, path, username=None, admin=False):
    headers = {}
    if username:
        headers["X-Remote-User"] = username
    if admin:
        headers["X-Admin"] = "1"
    req = urllib.request.Request(server.url + path, headers=headers)
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


class TestCoerceParams:
    def test_types(self):
        out = coerce_params(
            [("a", "1"), ("b", "1.5"), ("c", "true"), ("d", "False"), ("e", "text")]
        )
        assert out == {"a": 1, "b": 1.5, "c": True, "d": False, "e": "text"}

    def test_empty(self):
        assert coerce_params([]) == {}


class TestHttpApi:
    def test_healthz_unauthenticated(self, served):
        server, _, _ = served
        status, ctype, body = fetch(server, "/healthz")
        assert status == 200
        assert json.loads(body)["ok"]

    def test_missing_user_header_401(self, served):
        server, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(server, "/api/v1/widgets/recent_jobs")
        assert exc.value.code == 401

    def test_widget_route(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        status, ctype, body = fetch(server, "/api/v1/widgets/system_status",
                                    username=user)
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["ok"]
        assert payload["data"]["partitions"]

    def test_query_params_coerced(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        status, _, body = fetch(
            server, "/api/v1/widgets/recent_jobs?limit=2", username=user
        )
        payload = json.loads(body)
        assert len(payload["data"]["jobs"]) <= 2

    def test_unknown_path_404(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(server, "/api/v1/nothing", username=user)
        assert exc.value.code == 404

    def test_homepage_html(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        status, ctype, body = fetch(server, "/", username=user)
        assert status == 200
        assert ctype.startswith("text/html")
        assert b"widget-grid" in body
        assert f"Logged in as {user}".encode() in body

    def test_error_status_propagates(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(server, "/api/v1/node_overview?node=ghost", username=user)
        assert exc.value.code == 404

    def test_double_start_rejected(self, served):
        server, _, _ = served
        with pytest.raises(RuntimeError):
            server.start()


class TestExportDownloads:
    """The Accounts widget's export URLs serve real file downloads."""

    def test_csv_download(self, served):
        server, dash, directory = served
        manager = next(
            a.managers[0] for a in directory.accounts() if a.managers
        )
        account = next(
            a.name for a in directory.accounts() if manager in a.managers
        )
        status, ctype, body = fetch(
            server, f"/api/v1/export/account_usage/{account}.csv",
            username=manager,
        )
        assert status == 200
        assert ctype == "text/csv"
        assert body.decode().splitlines()[0].startswith("account,user,")

    def test_xls_download_disposition(self, served):
        server, dash, directory = served
        manager = next(
            a.managers[0] for a in directory.accounts() if a.managers
        )
        account = next(
            a.name for a in directory.accounts() if manager in a.managers
        )
        import urllib.request

        req = urllib.request.Request(
            server.url + f"/api/v1/export/account_usage/{account}.xls",
            headers={"X-Remote-User": manager},
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.headers["Content-Type"] == "application/vnd.ms-excel"
            assert "attachment" in resp.headers["Content-Disposition"]
            assert resp.read().startswith(b"<?xml")

    def test_non_manager_forbidden(self, served):
        server, dash, directory = served
        account = directory.accounts()[0]
        member = next(m for m in account.members if m not in account.managers)
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(server, f"/api/v1/export/account_usage/{account.name}.csv",
                  username=member)
        assert exc.value.code == 403
