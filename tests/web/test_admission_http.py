"""HTTP surface of the admission layer.

End to end over a real socket: deadline headers become structured 504s,
backpressure rejections carry ``Retry-After``, HEAD mirrors GET without
a body, and ``/healthz`` reports the admission tier.
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.core.caching import CachePolicy
from repro.core.dashboard import build_demo_dashboard
from repro.faults import FaultPlan
from repro.web.server import DashboardServer


@pytest.fixture
def served():
    """A function-scoped server over a tiny world with tight budgets
    (the tests install faults, so nothing is shared between them)."""
    dash, directory, _ = build_demo_dashboard(
        duration_hours=0.5,
        seed=11,
        cache_policy=CachePolicy(timeouts_s={"squeue": 1.0}),
    )
    server = DashboardServer(dash).start()
    yield server, dash, directory
    server.stop()


def request(server, path, username=None, headers=None, method="GET"):
    """Issue one request; returns (status, headers, body) even on 4xx/5xx."""
    all_headers = dict(headers or {})
    if username:
        all_headers["X-Remote-User"] = username
    req = urllib.request.Request(
        server.url + path, headers=all_headers, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.headers, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers, err.read()


def slow_ctld(dash, extra_latency_s=5.0):
    plan = FaultPlan()
    plan.schedule_slowdown("slurmctld", extra_latency_s=extra_latency_s)
    dash.inject_faults(plan)


def outage(dash, service="slurmctld"):
    plan = FaultPlan()
    plan.schedule_outage(service, start=dash.clock.now(), end=math.inf)
    dash.inject_faults(plan)


class TestDeadlineHeader:
    def test_tight_deadline_is_a_504_with_retry_after(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        slow_ctld(dash)
        status, headers, body = request(
            server,
            "/api/v1/widgets/recent_jobs",
            username=user,
            headers={"X-Request-Deadline-Ms": "2000"},
        )
        assert status == 504
        payload = json.loads(body)
        assert payload["ok"] is False and "deadline" in payload["error"]
        assert payload["status"] == 504
        assert int(headers["Retry-After"]) >= 1

    @pytest.mark.parametrize("raw", ["soon", "", "-5", "0", "nan", "inf"])
    def test_malformed_deadline_is_a_structured_400(self, served, raw):
        server, _, directory = served
        user = directory.users()[0].username
        status, _, body = request(
            server,
            "/api/v1/widgets/recent_jobs",
            username=user,
            headers={"X-Request-Deadline-Ms": raw},
        )
        assert status == 400
        payload = json.loads(body)
        assert payload["ok"] is False
        assert "X-Request-Deadline-Ms" in payload["error"]

    def test_generous_deadline_succeeds(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        status, _, body = request(
            server,
            "/api/v1/widgets/recent_jobs",
            username=user,
            headers={"X-Request-Deadline-Ms": "60000"},
        )
        assert status == 200 and json.loads(body)["ok"]


class TestMalformedQuery:
    @pytest.mark.parametrize("query", ["limit=1e999", "limit=nan", "limit=-3"])
    def test_widget_limit_is_a_400_not_a_500(self, served, query):
        server, _, directory = served
        user = directory.users()[0].username
        status, _, body = request(
            server, f"/api/v1/widgets/recent_jobs?{query}", username=user
        )
        assert status == 400
        payload = json.loads(body)
        assert payload["ok"] is False and "limit" in payload["error"]

    def test_announcements_limit_validated_too(self, served):
        server, _, directory = served
        user = directory.users()[0].username
        status, _, body = request(
            server, "/api/v1/widgets/announcements?limit=1e999", username=user
        )
        assert status == 400
        assert json.loads(body)["ok"] is False


class TestRetryAfterOnBreakerOpen:
    def test_open_breaker_503_carries_retry_after(self, served):
        server, dash, directory = served
        user = directory.users()[0].username
        outage(dash)
        # exhaust the breaker: 3 attempts per call, threshold 5
        for _ in range(3):
            request(server, "/api/v1/widgets/recent_jobs", username=user)
        assert dash.ctx.fetcher.breaker_for("slurmctld").state == "open"
        status, headers, body = request(
            server, "/api/v1/widgets/recent_jobs", username=user
        )
        assert status == 503
        payload = json.loads(body)
        assert payload["ok"] is False
        # the CircuitOpenError's remaining recovery time survived the
        # SourceUnavailableError wrapping and became a real header
        assert payload["retry_after_s"] > 0
        assert int(headers["Retry-After"]) >= 1


class TestHead:
    @pytest.mark.parametrize(
        "path", ["/healthz", "/api/v1/widgets/system_status"]
    )
    def test_head_mirrors_get_headers_without_body(self, served, path):
        server, _, directory = served
        user = directory.users()[0].username
        get_status, get_headers, get_body = request(server, path, username=user)
        head_status, head_headers, head_body = request(
            server, path, username=user, method="HEAD"
        )
        assert head_status == get_status == 200
        assert head_body == b""
        assert head_headers["Content-Type"] == get_headers["Content-Type"]
        assert int(head_headers["Content-Length"]) == len(get_body)

    def test_head_counts_http_metrics(self, served):
        server, dash, _ = served
        counter = dash.ctx.obs.http_requests
        before = counter.value(kind="health", status="200")
        request(server, "/healthz", method="HEAD")
        assert counter.value(kind="health", status="200") == before + 1


class TestHealthzAdmission:
    def test_reports_tier_and_signals(self, served):
        server, _, _ = served
        status, _, body = request(server, "/healthz")
        assert status == 200
        payload = json.loads(body)
        admission = payload["admission"]
        assert admission["tier"] == "normal"
        assert admission["tier_index"] == 0
        assert "signals" in admission
