"""Tests for the ``python -m repro`` demo-server CLI."""

import subprocess
import sys


class TestCli:
    def test_once_mode_smoke(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--once", "--hours", "0.5",
             "--port", "0"],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Serving at http://" in proc.stdout
        assert "homepage ok=True" in proc.stdout

    def test_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "--hours" in proc.stdout


class TestApiDocsGenerator:
    def test_generator_runs_and_covers_packages(self, tmp_path):
        import subprocess
        import sys
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, str(repo / "tools" / "gen_api_docs.py")],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        text = (repo / "docs" / "API.md").read_text()
        for section in ("repro.core.caching", "repro.slurm.scheduler",
                        "repro.web.server", "repro.ood.sessions"):
            assert f"### `{section}`" in text
