"""Concurrency tests: the threaded server under parallel clients."""

import json
import threading
import urllib.request

import pytest

from repro.web.server import DashboardServer


class TestParallelRequests:
    def test_many_concurrent_fetches(self, dash):
        """ThreadingHTTPServer + the shared TTL cache must serve parallel
        widget fetches without errors or cross-user leakage."""
        results = {}
        errors = []

        def fetch(user, idx):
            try:
                req = urllib.request.Request(
                    url + "/api/v1/widgets/recent_jobs",
                    headers={"X-Remote-User": user},
                )
                with urllib.request.urlopen(req, timeout=10) as resp:
                    payload = json.loads(resp.read())
                results[(user, idx)] = payload["data"]["jobs"]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        with DashboardServer(dash) as server:
            url = server.url
            threads = [
                threading.Thread(target=fetch, args=(user, i))
                for i in range(8)
                for user in ("alice", "bob", "dave")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=20)

        assert not errors, errors
        assert len(results) == 24
        # no cross-user leakage under concurrency: dave never sees
        # physics-lab jobs in his own recent-jobs widget
        for (user, _), jobs in results.items():
            if user == "dave":
                assert all("md_long" not in j["name"] for j in jobs)

    def test_admin_page_with_no_history(self):
        """Admin overview degrades gracefully at t=0 (no 24 h window yet)."""
        from repro.auth import Directory, Viewer
        from repro.core.dashboard import Dashboard
        from repro.core.pages.admin import render_admin_overview
        from repro.slurm import small_test_cluster

        directory = Directory()
        directory.add_user("alice")
        directory.add_account("lab", members=["alice"])
        dash = Dashboard(small_test_cluster(), directory)
        resp = dash.call("admin_overview", Viewer(username="root", is_admin=True))
        assert resp.ok
        # utilization may be None right at the epoch; render must cope
        html = render_admin_overview(resp.data).render()
        assert "Admin Overview" in html
