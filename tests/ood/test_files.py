"""Tests for files-app links and the simulated log store."""

import pytest

from repro.ood import LOG_TAIL_LINES, LogStore, files_app_url
from repro.slurm import JobState
from tests.conftest import simple_spec


def test_files_app_url():
    assert files_app_url("/home/alice") == "/pun/sys/dashboard/files/fs/home/alice"
    with pytest.raises(ValueError):
        files_app_url("relative/path")


@pytest.fixture
def store():
    return LogStore()


@pytest.fixture
def long_job(cluster):
    """A job that ran long enough to exceed the 1000-line tail cap."""
    job = cluster.submit(simple_spec(actual_runtime=3 * 3600, time_limit=4 * 3600))[0]
    cluster.advance(3 * 3600 + 10)
    assert job.state is JobState.COMPLETED
    return job, cluster.now()


class TestLineCounts:
    def test_pending_job_has_no_logs(self, cluster, store):
        job = cluster.submit(simple_spec(), held=True)[0]
        assert store.line_count(job, "out", cluster.now()) == 0

    def test_long_job_exceeds_tail_cap(self, long_job, store):
        job, now = long_job
        assert store.line_count(job, "out", now) > LOG_TAIL_LINES

    def test_stderr_sparser_than_stdout(self, long_job, store):
        job, now = long_job
        assert store.line_count(job, "err", now) < store.line_count(job, "out", now)

    def test_failed_job_has_traceback_lines(self, cluster, store):
        job = cluster.submit(simple_spec(exit_code=1, actual_runtime=120))[0]
        cluster.advance(121)
        now = cluster.now()
        lines = store.read_lines(job, "err", now)
        assert any("Traceback" in ln for ln in lines)

    def test_oom_job_mentions_oom_kill(self, cluster, store):
        job = cluster.submit(simple_spec(mem_mb=1000, actual_max_rss_mb=9000))[0]
        cluster.advance(601)
        lines = store.read_lines(job, "err", cluster.now())
        assert any("oom-kill" in ln for ln in lines)

    def test_unknown_stream_rejected(self, long_job, store):
        job, now = long_job
        with pytest.raises(ValueError):
            store.line_count(job, "debug", now)


class TestReads:
    def test_read_window(self, long_job, store):
        job, now = long_job
        lines = store.read_lines(job, "out", now, offset=10, limit=5)
        assert len(lines) == 5
        assert "step 000010" in lines[0]

    def test_negative_offset_rejected(self, long_job, store):
        job, now = long_job
        with pytest.raises(ValueError):
            store.read_lines(job, "out", now, offset=-1)

    def test_first_and_last_lines_are_markers(self, long_job, store):
        job, now = long_job
        total = store.line_count(job, "out", now)
        first = store.read_lines(job, "out", now, offset=0, limit=1)[0]
        last = store.read_lines(job, "out", now, offset=total - 1)[0]
        assert "starting" in first
        assert "finished: COMPLETED" in last

    def test_deterministic(self, long_job, store):
        job, now = long_job
        a = store.read_lines(job, "out", now, offset=100, limit=10)
        b = LogStore().read_lines(job, "out", now, offset=100, limit=10)
        assert a == b


class TestTail:
    def test_tail_returns_cap_for_long_logs(self, long_job, store):
        job, now = long_job
        lines, first_no, total = store.tail(job, "out", now)
        assert len(lines) == LOG_TAIL_LINES
        assert first_no == total - LOG_TAIL_LINES + 1
        assert total == store.line_count(job, "out", now)

    def test_tail_returns_all_for_short_logs(self, cluster, store):
        job = cluster.submit(simple_spec(actual_runtime=60))[0]
        cluster.advance(61)
        lines, first_no, total = store.tail(job, "out", cluster.now())
        assert len(lines) == total
        assert first_no == 1

    def test_tail_is_o_tail_not_o_file(self, long_job):
        """Reading the tail must not generate the whole file."""
        import time

        job, now = long_job
        store = LogStore()
        t0 = time.perf_counter()
        store.tail(job, "out", now, lines=100)
        tail_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        store.read_lines(job, "out", now)  # the whole file
        full_time = time.perf_counter() - t0
        assert tail_time < full_time

    def test_paths(self, cluster, store):
        job = cluster.submit(simple_spec(std_out="/x/o.log", std_err="/x/e.log"))[0]
        assert store.stdout_path(job) == "/x/o.log"
        assert store.stderr_path(job) == "/x/e.log"
        bare = cluster.submit(simple_spec())[0]
        assert store.stdout_path(bare).endswith(f"slurm-{bare.job_id}.out")
