"""Tests for interactive sessions backed by Slurm jobs."""

import pytest

from repro.ood import SessionManager
from repro.slurm import JobState
from tests.conftest import simple_spec


@pytest.fixture
def mgr(cluster):
    return SessionManager(cluster)


class TestLaunch:
    def test_launch_submits_job(self, mgr, cluster):
        s = mgr.launch("jupyter", user="alice", account="lab",
                       form_values={"cpus": 4, "hours": 2})
        job = cluster.scheduler.job(s.job_id)
        assert job.state is JobState.RUNNING
        assert job.name == "sys/dashboard/jupyter"
        assert job.req.cpus == 4
        assert job.time_limit == 2 * 3600
        assert job.spec.interactive.session_id == s.session_id

    def test_session_ids_unique(self, mgr):
        a = mgr.launch("jupyter", "alice", "lab")
        b = mgr.launch("jupyter", "alice", "lab")
        assert a.session_id != b.session_id

    def test_bad_form_rejected(self, mgr):
        with pytest.raises(ValueError):
            mgr.launch("jupyter", "alice", "lab", form_values={"cpus": -4})

    def test_unknown_app_rejected(self, mgr):
        with pytest.raises(KeyError):
            mgr.launch("doom", "alice", "lab")

    def test_low_utilization_ground_truth(self, mgr, cluster):
        """Sessions model the paper's inefficient-interactive-job premise."""
        s = mgr.launch("rstudio", "alice", "lab", form_values={"hours": 8})
        job = cluster.scheduler.job(s.job_id)
        assert job.spec.actual_cpu_utilization <= 0.2
        assert job.spec.actual_runtime < job.time_limit


class TestQueries:
    def test_sessions_for_user(self, mgr):
        mgr.launch("jupyter", "alice", "lab")
        mgr.launch("matlab", "bob", "lab")
        assert len(mgr.sessions_for("alice")) == 1
        assert mgr.sessions_for("carol") == []

    def test_get_unknown(self, mgr):
        with pytest.raises(KeyError):
            mgr.get("nope")

    def test_session_for_job_via_manager(self, mgr, cluster):
        s = mgr.launch("jupyter", "alice", "lab")
        job = cluster.scheduler.job(s.job_id)
        assert mgr.session_for_job(job).session_id == s.session_id

    def test_session_for_job_via_provenance(self, mgr, cluster):
        """Jobs tagged by the workload generator resolve without manager
        bookkeeping (the dashboard sees them identically)."""
        from repro.slurm.model import InteractiveSessionInfo

        spec = simple_spec(name="sys/dashboard/vscode")
        spec.interactive = InteractiveSessionInfo(
            app_name="vscode", session_id="vscode-99999", working_dir="/tmp/x"
        )
        job = cluster.submit(spec)[0]
        s = mgr.session_for_job(job)
        assert s.app_key == "vscode" and s.session_id == "vscode-99999"

    def test_session_for_plain_job_is_none(self, mgr, cluster):
        job = cluster.submit(simple_spec())[0]
        assert mgr.session_for_job(job) is None


class TestConnectAndState:
    def test_connect_url_only_when_running(self, mgr, cluster):
        s = mgr.launch("jupyter", "alice", "lab", form_values={"hours": 1})
        assert mgr.connect_url(s) is not None
        assert mgr.card_state(s) == "Running"
        cluster.advance(3700)  # session job ends
        assert mgr.connect_url(s) is None
        assert mgr.card_state(s) == "Completed"

    def test_queued_state(self, mgr, cluster):
        # saturate the cpu partition so the session queues
        for _ in range(8):
            cluster.submit(simple_spec(cpus=64, mem_mb=1000,
                                       actual_runtime=7200, time_limit=7200))
        s = mgr.launch("jupyter", "alice", "lab", form_values={"cpus": 64, "memory_gb": 1})
        assert mgr.card_state(s) == "Queued"
        assert mgr.connect_url(s) is None

    def test_connect_url_names_node(self, mgr, cluster):
        s = mgr.launch("jupyter", "alice", "lab")
        job = cluster.scheduler.job(s.job_id)
        assert job.nodes[0] in mgr.connect_url(s)
