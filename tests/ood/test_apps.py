"""Tests for the OOD interactive-app registry and forms."""

import pytest

from repro.ood import AppRegistry, FormField, InteractiveApp


class TestFormField:
    def test_number_validation(self):
        f = FormField(name="cpus", label="CPUs", kind="number")
        assert f.validate(4) == 4.0
        assert f.validate("8") == 8.0
        with pytest.raises(ValueError):
            f.validate("abc")
        with pytest.raises(ValueError):
            f.validate(-1)

    def test_select_validation(self):
        f = FormField(name="p", label="P", kind="select", choices=("cpu", "gpu"))
        assert f.validate("gpu") == "gpu"
        with pytest.raises(ValueError):
            f.validate("tpu")

    def test_text_passthrough(self):
        f = FormField(name="t", label="T", kind="text")
        assert f.validate(123) == "123"


class TestAppForm:
    def test_defaults_filled(self):
        reg = AppRegistry()
        app = reg.get("jupyter")
        values = app.validate_form({})
        assert values["cpus"] == 1
        assert values["partition"] == "cpu"

    def test_unknown_field_rejected(self):
        app = AppRegistry().get("jupyter")
        with pytest.raises(ValueError):
            app.validate_form({"gpus": 1})

    def test_missing_required_field(self):
        app = InteractiveApp(
            key="x",
            title="X",
            form=(FormField(name="req", label="R", kind="text"),),
        )
        with pytest.raises(ValueError):
            app.validate_form({})


class TestRegistry:
    def test_builtins_present(self):
        reg = AppRegistry()
        for key in ("jupyter", "rstudio", "matlab", "vscode"):
            assert key in reg
            assert reg.get(key).form_url

    def test_all_apps_sorted_by_title(self):
        titles = [a.title for a in AppRegistry().all_apps()]
        assert titles == sorted(titles)

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            AppRegistry().get("fortnite")

    def test_register_custom_and_duplicate(self):
        reg = AppRegistry()
        app = InteractiveApp(key="paraview", title="ParaView")
        reg.register(app)
        assert reg.get("paraview").title == "ParaView"
        with pytest.raises(ValueError):
            reg.register(app)
