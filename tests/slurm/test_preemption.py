"""Tests for QoS preemption and node-failure injection."""

import pytest

from repro.slurm import JobState, QoS, small_test_cluster
from repro.slurm import reasons as R
from tests.conftest import simple_spec


def preempt_cluster(mode="requeue", cpu_nodes=1):
    qos = [
        QoS(name="standby", priority=0, preempt_mode=mode),
        QoS(name="urgent", priority=10),
    ]
    return small_test_cluster(cpu_nodes=cpu_nodes, qos=qos)


class TestQoSValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            QoS(name="x", preempt_mode="maybe")


class TestRequeuePreemption:
    def test_urgent_job_preempts_standby(self):
        c = preempt_cluster("requeue")
        standby = c.submit(
            simple_spec(qos="standby", cpus=64, actual_runtime=7200,
                        time_limit=7200)
        )[0]
        urgent = c.submit(
            simple_spec(user="vip", qos="urgent", cpus=64,
                        actual_runtime=600, time_limit=3600)
        )[0]
        assert urgent.state is JobState.RUNNING
        assert standby.state is JobState.PENDING
        # requeued behind the urgent job; re-labeled by the follow-up pass
        assert standby.reason in (R.PRIORITY, R.RESOURCES)
        assert standby.start_time is None
        assert standby.nodes == []
        assert c.scheduler.stats["preempted"] == 1

    def test_requeued_job_runs_again_later(self):
        c = preempt_cluster("requeue")
        standby = c.submit(
            simple_spec(qos="standby", cpus=64, actual_runtime=1200,
                        time_limit=7200)
        )[0]
        c.submit(simple_spec(user="vip", qos="urgent", cpus=64,
                             actual_runtime=600, time_limit=3600))
        c.advance(700)  # urgent done; standby restarts from scratch
        assert standby.state is JobState.RUNNING
        c.advance(1300)
        assert standby.state is JobState.COMPLETED

    def test_usage_accounting_after_preemption(self):
        c = preempt_cluster("requeue")
        c.submit(simple_spec(qos="standby", cpus=64, actual_runtime=7200,
                             time_limit=7200))
        c.advance(1800)  # standby consumed 32 cpu-hours so far
        c.submit(simple_spec(user="vip", qos="urgent", cpus=64,
                             actual_runtime=600, time_limit=3600))
        usage = c.scheduler.association_usage("lab")
        # the preempted run's cpu-hours were charged; alloc equals urgent's
        assert usage.cpu_hours_used == pytest.approx(32.0, abs=0.5)
        assert usage.alloc.cpus == 64
        assert usage.running_jobs == 1

    def test_normal_qos_not_preemptible(self):
        c = preempt_cluster("requeue")
        normal = c.submit(simple_spec(cpus=64, actual_runtime=7200,
                                      time_limit=7200))[0]
        urgent = c.submit(simple_spec(user="vip", qos="urgent", cpus=64,
                                      time_limit=3600))[0]
        assert normal.state is JobState.RUNNING
        assert urgent.state is JobState.PENDING

    def test_equal_priority_does_not_preempt(self):
        c = preempt_cluster("requeue")
        standby1 = c.submit(simple_spec(qos="standby", cpus=64,
                                        actual_runtime=7200, time_limit=7200))[0]
        standby2 = c.submit(simple_spec(qos="standby", cpus=64,
                                        time_limit=3600))[0]
        assert standby1.state is JobState.RUNNING
        assert standby2.state is JobState.PENDING

    def test_preempts_minimum_victims(self):
        c = preempt_cluster("requeue", cpu_nodes=2)
        a = c.submit(simple_spec(qos="standby", cpus=64, actual_runtime=7200,
                                 time_limit=7200))[0]
        b = c.submit(simple_spec(qos="standby", cpus=64, actual_runtime=7200,
                                 time_limit=7200))[0]
        c.submit(simple_spec(user="vip", qos="urgent", cpus=32,
                             actual_runtime=600, time_limit=3600))
        # only one standby job needed to make room
        states = sorted([a.state, b.state], key=lambda s: s.value)
        assert states.count(JobState.RUNNING) == 1
        assert states.count(JobState.PENDING) == 1


class TestCancelPreemption:
    def test_victim_ends_preempted(self):
        c = preempt_cluster("cancel")
        standby = c.submit(simple_spec(qos="standby", cpus=64,
                                       actual_runtime=7200, time_limit=7200))[0]
        c.submit(simple_spec(user="vip", qos="urgent", cpus=64,
                             actual_runtime=600, time_limit=3600))
        assert standby.state is JobState.PREEMPTED
        assert standby.end_time is not None
        # archived with the PREEMPTED state
        rec = c.accounting.get(standby.job_id)
        assert rec is not None and rec.state is JobState.PREEMPTED

    def test_preempted_visible_in_sacct(self):
        from repro.slurm.commands import Sacct, parse_sacct

        c = preempt_cluster("cancel")
        c.submit(simple_spec(qos="standby", cpus=64, actual_runtime=7200,
                             time_limit=7200))
        c.submit(simple_spec(user="vip", qos="urgent", cpus=64,
                             actual_runtime=600, time_limit=3600))
        rows = parse_sacct(Sacct(c).run().stdout)
        assert any(r["base_state"] == "PREEMPTED" for r in rows)


class TestNodeFailure:
    def test_jobs_on_failed_node_end_node_fail(self, cluster):
        job = cluster.submit(simple_spec(cpus=8, actual_runtime=7200,
                                         time_limit=7200))[0]
        victims = cluster.scheduler.fail_node(job.nodes[0], "kernel panic")
        assert job in victims
        assert job.state is JobState.NODE_FAIL
        assert job.exit_code == 1
        node = cluster.nodes[victims[0].nodes[0] if victims[0].nodes else "a001"]

    def test_failed_node_is_down_with_reason(self, cluster):
        job = cluster.submit(simple_spec(cpus=8, actual_runtime=7200,
                                         time_limit=7200))[0]
        name = job.nodes[0]
        cluster.scheduler.fail_node(name, "kernel panic")
        node = cluster.nodes[name]
        assert node.state.value == "DOWN"
        assert node.state_reason == "kernel panic"
        assert node.alloc.cpus == 0

    def test_other_jobs_unaffected(self, cluster):
        a = cluster.submit(simple_spec(cpus=40, actual_runtime=7200,
                                       time_limit=7200))[0]
        b = cluster.submit(simple_spec(cpus=40, actual_runtime=7200,
                                       time_limit=7200))[0]
        assert a.nodes != b.nodes
        cluster.scheduler.fail_node(a.nodes[0])
        assert a.state is JobState.NODE_FAIL
        assert b.state is JobState.RUNNING

    def test_pending_work_moves_to_surviving_nodes(self, cluster):
        job = cluster.submit(simple_spec(cpus=8, actual_runtime=7200,
                                         time_limit=7200))[0]
        cluster.scheduler.fail_node(job.nodes[0])
        replacement = cluster.submit(simple_spec(cpus=8, actual_runtime=60))[0]
        assert replacement.state is JobState.RUNNING
        assert replacement.nodes[0] != job.nodes[0]

    def test_idle_node_failure_kills_nothing(self, cluster):
        victims = cluster.scheduler.fail_node("a005", "psu")
        assert victims == []
