"""Robustness tests for the command text layer with hostile inputs."""

import pytest
from hypothesis import given, strategies as st

from repro.slurm.commands import parse_squeue, Squeue
from repro.slurm.commands.base import pipe_join, sanitize_field, parse_pipe_table
from tests.conftest import simple_spec

#: printable text including the separators we must survive
hostile_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), min_codepoint=32),
    min_size=1,
    max_size=40,
).map(lambda s: s.strip() or "x")


class TestSanitization:
    def test_pipe_in_job_name_does_not_corrupt_table(self, cluster):
        cluster.submit(simple_spec(name="evil|name|here"))
        rows = parse_squeue(Squeue(cluster).run().stdout)
        assert len(rows) == 1
        assert rows[0]["NAME"] == "evil/name/here"

    def test_newline_in_job_name(self, cluster):
        cluster.submit(simple_spec(name="two\nlines"))
        rows = parse_squeue(Squeue(cluster).run().stdout)
        assert len(rows) == 1
        assert "\n" not in rows[0]["NAME"]

    def test_sanitize_field(self):
        assert sanitize_field("a|b") == "a/b"
        assert sanitize_field("a\nb\rc") == "a b c"
        assert sanitize_field("clean") == "clean"

    @given(st.lists(hostile_text, min_size=1, max_size=8))
    def test_pipe_table_roundtrip_property(self, fields):
        """Any sanitized row parses back with the same column count."""
        header = [f"C{i}" for i in range(len(fields))]
        text = pipe_join(header) + "\n" + pipe_join(fields) + "\n"
        rows = parse_pipe_table(text)
        assert len(rows) == 1
        assert list(rows[0]) == header

    @given(hostile_text)
    def test_job_name_survives_full_squeue_path(self, name):
        """Arbitrary printable job names never break squeue parsing."""
        from repro.slurm import small_test_cluster

        cluster = small_test_cluster(cpu_nodes=1)
        cluster.submit(simple_spec(name=name))
        rows = parse_squeue(Squeue(cluster).run().stdout)
        assert len(rows) == 1


class TestHtmlSafetyOfJobNames:
    def test_script_in_job_name_escaped_in_my_jobs(self, cluster):
        """A malicious job name cannot inject markup into the dashboard."""
        from repro.auth import Directory, Viewer
        from repro.core.dashboard import Dashboard
        from repro.core.pages.my_jobs import render_my_jobs

        directory = Directory()
        directory.add_user("alice")
        directory.add_account("lab", members=["alice"])
        dash = Dashboard(cluster, directory)
        cluster.submit(simple_spec(name="<script>alert(1)</script>"))
        data = dash.call("my_jobs", Viewer(username="alice")).data
        html = render_my_jobs(data).render()
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html
