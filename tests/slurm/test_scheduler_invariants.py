"""Property-based invariant tests for the scheduler.

A Hypothesis state machine drives the cluster with random submissions,
cancellations, holds/releases and time jumps, checking after every step
the invariants slurmctld must never violate:

* no node is ever over-allocated (alloc <= capacity, per resource);
* node running_job_ids matches the set of RUNNING jobs placed on it;
* association usage equals the sum over its running jobs;
* every pending job carries a reason; every running job has nodes;
* terminal jobs never hold node resources.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.slurm import Association, JobSpec, JobState, TRES, small_test_cluster
from repro.slurm import reasons as R


class SchedulerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = small_test_cluster(
            cpu_nodes=3,
            gpu_nodes=1,
            cpus_per_node=16,
            mem_per_node_mb=32_000,
            associations=[Association(account="lab", grp_tres=TRES(cpus=40))],
        )
        self.submitted: list[int] = []

    # -- actions -----------------------------------------------------------

    @rule(
        cpus=st.integers(1, 24),
        mem=st.integers(100, 40_000),
        gpus=st.integers(0, 2),
        nodes=st.integers(1, 3),
        runtime=st.floats(10, 5000),
        limit_factor=st.floats(0.5, 3.0),
        util=st.floats(0, 1),
        exit_code=st.sampled_from([0, 0, 0, 1]),
        held=st.booleans(),
        account=st.sampled_from(["lab", "other"]),
    )
    def submit(self, cpus, mem, gpus, nodes, runtime, limit_factor, util,
               exit_code, held, account):
        cpus = max(cpus, nodes)  # at least one cpu per node
        spec = JobSpec(
            name="fuzz",
            user="u",
            account=account,
            partition="gpu" if gpus else "cpu",
            req=TRES(cpus=cpus, mem_mb=mem, gpus=gpus, nodes=nodes),
            time_limit=max(1.0, runtime * limit_factor),
            actual_runtime=runtime,
            actual_cpu_utilization=util,
            exit_code=exit_code,
        )
        jobs = self.cluster.submit(spec, held=held)
        self.submitted.extend(j.job_id for j in jobs)

    @rule(seconds=st.floats(1, 4000))
    def advance(self, seconds):
        self.cluster.advance(seconds)

    @rule(idx=st.integers(0, 10_000))
    def cancel_something(self, idx):
        live = [
            j for j in self.cluster.scheduler.visible_jobs() if j.state.is_active
        ]
        if live:
            self.cluster.scheduler.cancel(live[idx % len(live)].job_id)

    @rule(idx=st.integers(0, 10_000))
    def release_something(self, idx):
        held = [
            j
            for j in self.cluster.scheduler.pending_jobs()
            if j.reason == R.JOB_HELD_USER
        ]
        if held:
            self.cluster.scheduler.release(held[idx % len(held)].job_id)

    @rule(idx=st.integers(0, 10_000))
    def suspend_something(self, idx):
        running = [
            j for j in self.cluster.scheduler.running_jobs()
            if j.state is JobState.RUNNING
        ]
        if running:
            self.cluster.scheduler.suspend(running[idx % len(running)].job_id)

    @rule(idx=st.integers(0, 10_000))
    def resume_something(self, idx):
        suspended = [
            j for j in self.cluster.scheduler.running_jobs()
            if j.state is JobState.SUSPENDED
        ]
        if suspended:
            self.cluster.scheduler.resume_job(
                suspended[idx % len(suspended)].job_id
            )

    @rule(idx=st.integers(0, 10_000))
    def fail_and_recover_node(self, idx):
        names = list(self.cluster.nodes)
        name = names[idx % len(names)]
        node = self.cluster.nodes[name]
        if node.state.is_online:
            self.cluster.scheduler.fail_node(name, "fuzz failure")
        else:
            node.resume()
            self.cluster.scheduler.schedule_pass()

    # -- invariants ------------------------------------------------------------

    @invariant()
    def nodes_never_overallocated(self):
        for node in self.cluster.nodes.values():
            assert node.alloc.cpus <= node.cpus, node.name
            assert node.alloc.mem_mb <= node.real_memory_mb, node.name
            assert node.alloc.gpus <= node.gpus, node.name
            assert node.alloc.cpus >= 0 and node.alloc.mem_mb >= 0

    @invariant()
    def node_job_lists_consistent(self):
        sched = self.cluster.scheduler
        placed: dict[str, set[int]] = {name: set() for name in self.cluster.nodes}
        for job in sched.running_jobs():
            assert job.state in (JobState.RUNNING, JobState.SUSPENDED)
            assert job.nodes, f"running job {job.job_id} has no nodes"
            for n in job.nodes:
                placed[n].add(job.job_id)
        for name, node in self.cluster.nodes.items():
            assert set(node.running_job_ids) == placed[name], name

    @invariant()
    def association_usage_matches_running(self):
        sched = self.cluster.scheduler
        for account in ("lab", "other"):
            usage = sched.association_usage(account)
            expected = TRES()
            count = 0
            for job in sched.running_jobs():
                if job.account == account:
                    expected = expected + job.req
                    count += 1
            assert usage.alloc == expected, account
            assert usage.running_jobs == count, account

    @invariant()
    def grp_limit_respected(self):
        usage = self.cluster.scheduler.association_usage("lab")
        assert usage.alloc.cpus <= 40

    @invariant()
    def pending_jobs_have_reasons(self):
        for job in self.cluster.scheduler.pending_jobs():
            assert job.state is JobState.PENDING
            assert job.reason, f"pending job {job.job_id} without reason"

    @invariant()
    def terminal_jobs_hold_nothing(self):
        sched = self.cluster.scheduler
        running_ids = {j.job_id for j in sched.running_jobs()}
        for node in self.cluster.nodes.values():
            for jid in node.running_job_ids:
                assert jid in running_ids


TestSchedulerInvariants = SchedulerMachine.TestCase
TestSchedulerInvariants.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
