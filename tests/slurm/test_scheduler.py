"""Tests for the slurmctld scheduler: lifecycle, limits, backfill."""

import pytest

from repro.slurm import (
    Association,
    JobState,
    NodeState,
    QoS,
    SchedulerConfig,
    TRES,
    small_test_cluster,
)
from repro.slurm import reasons as R
from tests.conftest import simple_spec


class TestLifecycle:
    def test_job_starts_immediately_when_space(self, cluster):
        job = cluster.submit(simple_spec())[0]
        assert job.state is JobState.RUNNING
        assert job.start_time == cluster.now()
        assert len(job.nodes) == 1

    def test_job_completes_after_actual_runtime(self, cluster):
        job = cluster.submit(simple_spec(actual_runtime=600))[0]
        cluster.advance(599)
        assert job.state is JobState.RUNNING
        cluster.advance(2)
        assert job.state is JobState.COMPLETED
        assert job.end_time == pytest.approx(600)
        assert job.exit_code == 0

    def test_node_released_on_completion(self, cluster):
        job = cluster.submit(simple_spec(cpus=4))[0]
        node = cluster.nodes[job.nodes[0]]
        assert node.alloc.cpus == 4
        cluster.advance(601)
        assert node.alloc.cpus == 0
        assert node.state is NodeState.IDLE

    def test_timeout_when_runtime_exceeds_limit(self, cluster):
        job = cluster.submit(
            simple_spec(time_limit=300, actual_runtime=10_000)
        )[0]
        cluster.advance(301)
        assert job.state is JobState.TIMEOUT
        assert job.elapsed(cluster.now()) == pytest.approx(300)

    def test_failed_on_nonzero_exit(self, cluster):
        job = cluster.submit(simple_spec(exit_code=2))[0]
        cluster.advance(601)
        assert job.state is JobState.FAILED
        assert job.exit_code == 2

    def test_oom_when_rss_exceeds_request(self, cluster):
        job = cluster.submit(
            simple_spec(mem_mb=1000, actual_max_rss_mb=5000)
        )[0]
        cluster.advance(601)
        assert job.state is JobState.OUT_OF_MEMORY
        assert job.exit_code == 137
        assert job.max_rss_mb == 5000

    def test_forced_fail_state(self, cluster):
        job = cluster.submit(simple_spec(fail_state=JobState.NODE_FAIL))[0]
        cluster.advance(601)
        assert job.state is JobState.NODE_FAIL
        assert job.exit_code != 0

    def test_accounting_record_written(self, cluster):
        job = cluster.submit(simple_spec())[0]
        cluster.advance(601)
        rec = cluster.accounting.get(job.job_id)
        assert rec is not None
        assert rec.state is JobState.COMPLETED

    def test_total_cpu_seconds_respects_utilization(self, cluster):
        job = cluster.submit(
            simple_spec(cpus=8, actual_runtime=100, utilization=0.5)
        )[0]
        cluster.advance(101)
        assert job.total_cpu_seconds == pytest.approx(8 * 100 * 0.5)

    def test_purged_after_min_job_age(self, cluster):
        job = cluster.submit(simple_spec(actual_runtime=10))[0]
        cluster.advance(11)
        assert job.job_id in {j.job_id for j in cluster.scheduler.visible_jobs()}
        cluster.advance(cluster.scheduler.config.min_job_age + 60)
        assert job.job_id not in {j.job_id for j in cluster.scheduler.visible_jobs()}
        # but the accounting archive remembers forever
        assert cluster.accounting.get(job.job_id) is not None


class TestQueueingAndReasons:
    def test_resources_reason_when_cluster_full(self, cluster):
        # fill all 8 cpu nodes (64 cpus each)
        for _ in range(8):
            cluster.submit(simple_spec(cpus=64, actual_runtime=7200, time_limit=7200))
        waiting = cluster.submit(simple_spec(cpus=64, time_limit=3600))[0]
        assert waiting.state is JobState.PENDING
        assert waiting.reason == R.RESOURCES

    def test_priority_reason_behind_blocked_job(self, cluster):
        for _ in range(8):
            cluster.submit(simple_spec(cpus=64, actual_runtime=7200, time_limit=7200))
        cluster.submit(simple_spec(cpus=64, time_limit=7200))
        second = cluster.submit(simple_spec(cpus=64, time_limit=7200))[0]
        assert second.reason in (R.PRIORITY, R.RESOURCES)

    def test_assoc_grp_cpu_limit(self, limited_cluster):
        c = limited_cluster
        c.submit(simple_spec(cpus=64, actual_runtime=7200, time_limit=7200))
        blocked = c.submit(simple_spec(cpus=1))[0]
        assert blocked.state is JobState.PENDING
        assert blocked.reason == R.ASSOC_GRP_CPU_LIMIT

    def test_assoc_grp_gres_limit(self, limited_cluster):
        c = limited_cluster
        c.submit(
            simple_spec(partition="gpu", cpus=8, gpus=4, actual_runtime=7200, time_limit=7200)
        )
        blocked = c.submit(simple_spec(partition="gpu", cpus=1, gpus=1))[0]
        assert blocked.reason == R.ASSOC_GRP_GRES_LIMIT

    def test_other_account_not_blocked_by_assoc_limit(self, limited_cluster):
        c = limited_cluster
        c.submit(simple_spec(cpus=64, actual_runtime=7200, time_limit=7200))
        other = c.submit(simple_spec(account="otherlab", cpus=4))[0]
        assert other.state is JobState.RUNNING

    def test_partition_time_limit_reason(self, cluster):
        job = cluster.submit(simple_spec(time_limit=10 * 86400.0))[0]
        assert job.state is JobState.PENDING
        assert job.reason == R.PARTITION_TIME_LIMIT

    def test_partition_node_limit_reason(self, cluster):
        job = cluster.submit(simple_spec(cpus=64 * 9, nodes=9, time_limit=3600))[0]
        assert job.reason == R.PARTITION_NODE_LIMIT

    def test_bad_constraints_reason(self, cluster):
        job = cluster.submit(simple_spec(features=["h100"]))[0]
        assert job.reason == R.BAD_CONSTRAINTS

    def test_feature_constraint_satisfied(self, cluster):
        job = cluster.submit(simple_spec(partition="gpu", features=["gpu"]))[0]
        assert job.state is JobState.RUNNING

    def test_unknown_partition_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.submit(simple_spec(partition="nope"))

    def test_unknown_qos_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.submit(simple_spec(qos="gold"))

    def test_blocked_job_starts_when_resources_free(self, limited_cluster):
        c = limited_cluster
        c.submit(simple_spec(cpus=64, actual_runtime=600, time_limit=3600))
        blocked = c.submit(simple_spec(cpus=32))[0]
        assert blocked.reason == R.ASSOC_GRP_CPU_LIMIT
        c.advance(700)
        assert blocked.state in (JobState.RUNNING, JobState.COMPLETED)


class TestQoSLimits:
    def make_cluster(self):
        qos = [
            QoS(name="standby", priority=0, max_jobs_per_user=2),
            QoS(
                name="wide",
                priority=0,
                max_tres_per_user=TRES(cpus=8),
            ),
        ]
        return small_test_cluster(qos=qos)

    def test_max_jobs_per_user(self):
        c = self.make_cluster()
        c.submit(simple_spec(qos="standby", actual_runtime=7200, time_limit=7200))
        c.submit(simple_spec(qos="standby", actual_runtime=7200, time_limit=7200))
        third = c.submit(simple_spec(qos="standby"))[0]
        assert third.reason == R.QOS_MAX_JOBS_PER_USER

    def test_max_tres_per_user(self):
        c = self.make_cluster()
        c.submit(simple_spec(qos="wide", cpus=6, actual_runtime=7200, time_limit=7200))
        blocked = c.submit(simple_spec(qos="wide", cpus=4))[0]
        assert blocked.reason == R.QOS_MAX_TRES_PER_USER

    def test_limits_are_per_user(self):
        c = self.make_cluster()
        c.submit(simple_spec(qos="standby", actual_runtime=7200, time_limit=7200))
        c.submit(simple_spec(qos="standby", actual_runtime=7200, time_limit=7200))
        other = c.submit(simple_spec(user="bob", qos="standby"))[0]
        assert other.state is JobState.RUNNING


class TestHoldCancel:
    def test_hold_then_release(self, cluster):
        job = cluster.submit(simple_spec(), held=True)[0]
        assert job.state is JobState.PENDING
        assert job.reason == R.JOB_HELD_USER
        cluster.advance(120)
        assert job.state is JobState.PENDING
        cluster.scheduler.release(job.job_id)
        assert job.state is JobState.RUNNING

    def test_hold_running_job_rejected(self, cluster):
        job = cluster.submit(simple_spec())[0]
        with pytest.raises(ValueError):
            cluster.scheduler.hold(job.job_id)

    def test_cancel_pending(self, cluster):
        job = cluster.submit(simple_spec(), held=True)[0]
        cluster.scheduler.cancel(job.job_id)
        assert job.state is JobState.CANCELLED

    def test_cancel_running_releases_nodes(self, cluster):
        job = cluster.submit(simple_spec(cpus=8))[0]
        node = cluster.nodes[job.nodes[0]]
        cluster.scheduler.cancel(job.job_id)
        assert job.state is JobState.CANCELLED
        assert node.alloc.cpus == 0

    def test_cancel_finished_rejected(self, cluster):
        job = cluster.submit(simple_spec(actual_runtime=10))[0]
        cluster.advance(11)
        with pytest.raises(ValueError):
            cluster.scheduler.cancel(job.job_id)

    def test_release_unheld_rejected(self, cluster):
        job = cluster.submit(simple_spec(), held=True)[0]
        cluster.scheduler.release(job.job_id)
        with pytest.raises(ValueError):
            cluster.scheduler.release(job.job_id)


class TestArrays:
    def test_array_creates_tasks(self, cluster):
        tasks = cluster.submit(simple_spec(array_size=5))
        assert len(tasks) == 5
        assert all(t.array_job_id == tasks[0].job_id for t in tasks)
        assert [t.array_task_id for t in tasks] == [0, 1, 2, 3, 4]
        assert tasks[1].display_id == f"{tasks[0].job_id}_1"

    def test_array_tasks_archived_individually(self, cluster):
        tasks = cluster.submit(simple_spec(array_size=3, actual_runtime=10))
        cluster.advance(20)
        arr = cluster.accounting.jobs_of_array(tasks[0].job_id)
        assert len(arr) == 3
        assert all(t.state is JobState.COMPLETED for t in arr)


class TestMultiNode:
    def test_multi_node_allocation(self, cluster):
        job = cluster.submit(
            simple_spec(cpus=128, mem_mb=200_000, nodes=2, actual_runtime=60)
        )[0]
        assert job.state is JobState.RUNNING
        assert len(job.nodes) == 2
        for name in job.nodes:
            assert cluster.nodes[name].alloc.cpus == 64

    def test_multi_node_release(self, cluster):
        job = cluster.submit(simple_spec(cpus=128, nodes=2, actual_runtime=60))[0]
        cluster.advance(61)
        assert all(cluster.nodes[n].alloc.cpus == 0 for n in job.nodes)


class TestBackfill:
    def test_small_job_backfills_around_blocked_wide_job(self):
        c = small_test_cluster(cpu_nodes=2)
        # Occupy both nodes for 2h.
        c.submit(simple_spec(cpus=64, actual_runtime=7200, time_limit=7200))
        c.submit(simple_spec(cpus=64, actual_runtime=7200, time_limit=7200))
        # Wide job needs both nodes -> blocked with Resources.
        wide = c.submit(simple_spec(cpus=128, nodes=2, time_limit=3600))[0]
        assert wide.reason == R.RESOURCES
        # A short job cannot fit *now* (nodes full) so backfill does not
        # apply; but once one node frees, a short job should start even
        # though the wide job is still first in line.
        c.advance(7201)  # both initial jobs end; wide starts
        assert wide.state is JobState.RUNNING

    def test_backfill_starts_short_job_on_free_node(self):
        c = small_test_cluster(cpu_nodes=2, scheduler=SchedulerConfig(backfill=True))
        # One node busy 2h, one node free.
        c.submit(simple_spec(cpus=64, actual_runtime=7200, time_limit=7200))
        # Wide job wants both nodes -> blocked (Resources), shadow = 2h.
        wide = c.submit(simple_spec(cpus=128, nodes=2, time_limit=3600))[0]
        assert wide.state is JobState.PENDING
        # Short job fits on the free node and ends before the shadow time.
        short = c.submit(simple_spec(cpus=4, time_limit=1800, actual_runtime=900))[0]
        assert short.state is JobState.RUNNING
        assert c.scheduler.stats["backfilled"] >= 1

    def test_backfill_respects_shadow_time(self):
        c = small_test_cluster(cpu_nodes=2, scheduler=SchedulerConfig(backfill=True))
        c.submit(simple_spec(cpus=64, actual_runtime=7200, time_limit=7200))
        wide = c.submit(simple_spec(cpus=128, nodes=2, time_limit=3600))[0]
        # This job would outlive the shadow window -> must NOT backfill.
        long_job = c.submit(simple_spec(cpus=4, time_limit=4 * 7200))[0]
        assert long_job.state is JobState.PENDING
        assert long_job.reason == R.PRIORITY

    def test_backfill_disabled(self):
        c = small_test_cluster(
            cpu_nodes=2, scheduler=SchedulerConfig(backfill=False)
        )
        c.submit(simple_spec(cpus=64, actual_runtime=7200, time_limit=7200))
        wide = c.submit(simple_spec(cpus=128, nodes=2, time_limit=3600))[0]
        short = c.submit(simple_spec(cpus=4, time_limit=1800))[0]
        assert short.state is JobState.PENDING


class TestPriority:
    def test_qos_priority_orders_queue(self):
        qos = [QoS(name="high", priority=10)]
        c = small_test_cluster(cpu_nodes=1, qos=qos)
        c.submit(simple_spec(cpus=64, actual_runtime=600, time_limit=3600))
        normal = c.submit(simple_spec(cpus=64, time_limit=3600, actual_runtime=60))[0]
        vip = c.submit(
            simple_spec(cpus=64, qos="high", time_limit=3600, actual_runtime=60)
        )[0]
        c.advance(610)  # first job done at t=600; the high-QOS job starts
        assert vip.state is JobState.RUNNING
        assert normal.state is JobState.PENDING

    def test_age_increases_priority(self, cluster):
        job = cluster.submit(simple_spec(time_limit=10 * 86400))[0]  # stuck pending
        p0 = job.priority
        cluster.advance(3600)
        assert job.priority > p0


class TestAssociationUsage:
    def test_usage_tracks_alloc_and_hours(self, limited_cluster):
        c = limited_cluster
        job = c.submit(simple_spec(cpus=32, actual_runtime=3600, time_limit=7200))[0]
        usage = c.scheduler.association_usage("lab")
        assert usage.alloc.cpus == 32
        assert usage.running_jobs == 1
        c.advance(3601)
        assert usage.alloc.cpus == 0
        assert usage.running_jobs == 0
        assert usage.cpu_hours_used == pytest.approx(32.0)

    def test_gpu_hours_accumulate(self, limited_cluster):
        c = limited_cluster
        c.submit(
            simple_spec(partition="gpu", cpus=8, gpus=2, actual_runtime=1800, time_limit=3600)
        )
        c.advance(1801)
        usage = c.scheduler.association_usage("lab")
        assert usage.gpu_hours_used == pytest.approx(1.0)
